"""High-level co-design simulator API.

:class:`DQCSimulator` is the one-stop entry point of the library: it takes a
circuit (or a benchmark name), partitions it over the nodes of a
:class:`~repro.core.config.SystemConfig`, and simulates its execution under
any of the paper's designs, returning depth / fidelity metrics.

Since the compile-once / execute-many refactor the simulator is a thin
wrapper over :class:`~repro.engine.compiler.CellCompiler`: every
``simulate`` call first compiles (or fetches from the artifact cache) the
deterministic :class:`~repro.engine.compiler.CompiledCell` of its
(benchmark, design) pair, then replays it under the requested seed.  The
schedule lookup table of an adaptive design is therefore built once per
cell no matter how many seeds are simulated.

Example
-------
>>> from repro import DQCSimulator
>>> simulator = DQCSimulator()                      # paper's 32-qubit system
>>> result = simulator.simulate("QAOA-r4-32", design="adapt_buf", seed=3)
>>> result.depth > 0
True
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

from repro.circuits.circuit import QuantumCircuit
from repro.core.config import SystemConfig
from repro.engine.compiler import CellCompiler
from repro.hardware.architecture import DQCArchitecture
from repro.partitioning.assigner import DistributedProgram
from repro.runtime.designs import list_designs
from repro.runtime.executor import DesignExecutor
from repro.runtime.metrics import ExecutionResult
from repro.scheduling.policies import AdaptivePolicy

__all__ = ["DQCSimulator"]

CircuitLike = Union[str, QuantumCircuit, DistributedProgram]


class DQCSimulator:
    """Partition + schedule + execute + estimate, behind one interface.

    Parameters
    ----------
    system:
        Hardware configuration; defaults to the paper's 2-node, 32-data-qubit
        system with 10 communication and 10 buffer qubits per node.
    partition_method:
        Optional override of ``system.partition_method``: any name from the
        partitioner registry (``"multilevel"`` is the METIS-baseline
        substitute) or a :class:`~repro.partitioning.registry.Partitioner`
        instance.
    partition_seed:
        Seed of the partitioner (partitioning is deterministic per seed).
    compiler:
        Optional pre-configured :class:`CellCompiler`; pass one to share
        compiled artifacts (partitioned programs, lookup tables) with an
        :class:`~repro.engine.pipeline.ExperimentEngine`.  When given, the
        ``system`` / ``partition_*`` arguments are taken from the compiler.

    Attributes
    ----------
    last_executor:
        The :class:`DesignExecutor` of the most recent ``simulate`` call
        (``None`` until the first call) — exposes the execution trace when
        ``collect_trace=True``.
    """

    def __init__(self, system: Optional[SystemConfig] = None,
                 partition_method=None,
                 partition_seed: int = 0,
                 compiler: Optional[CellCompiler] = None) -> None:
        self._compiler = compiler or CellCompiler(
            system=system,
            partition_method=partition_method,
            partition_seed=partition_seed,
        )
        self.system = self._compiler.system
        self.partition_method = self._compiler.partition_method
        self.partition_seed = self._compiler.partition_seed
        self.last_executor: Optional[DesignExecutor] = None

    # ------------------------------------------------------------------
    @property
    def compiler(self) -> CellCompiler:
        """The compile stage backing this simulator."""
        return self._compiler

    @property
    def architecture(self) -> DQCArchitecture:
        """The materialised hardware architecture (built lazily)."""
        return self._compiler.architecture

    # ------------------------------------------------------------------
    def prepare(self, circuit: CircuitLike) -> DistributedProgram:
        """Resolve a benchmark name / circuit into a distributed program.

        Benchmark names are cached: the same partition is reused across
        designs and repetitions, matching the paper's methodology where the
        METIS partition is computed once per benchmark.
        """
        return self._compiler.resolve_program(circuit)

    # ------------------------------------------------------------------
    def simulate(
        self,
        circuit: CircuitLike,
        design: str = "adapt_buf",
        seed: int = 0,
        segment_length: Optional[int] = None,
        adaptive_policy: Optional[AdaptivePolicy] = None,
        collect_trace: bool = False,
    ) -> ExecutionResult:
        """Simulate one execution of ``circuit`` under ``design``.

        Parameters
        ----------
        circuit:
            Benchmark name, circuit, or pre-partitioned program.
        design:
            One of ``original``, ``sync_buf``, ``async_buf``, ``adapt_buf``,
            ``init_buf``, ``ideal``.
        seed:
            Seed of the stochastic entanglement generation.
        segment_length:
            Optional override of the adaptive segment length ``m``.
        adaptive_policy:
            Optional override of the adaptive thresholds.
        collect_trace:
            Record a per-gate execution trace (available on the executor).
        """
        cell = self._compiler.compile(
            circuit, design,
            segment_length=segment_length,
            adaptive_policy=adaptive_policy,
        )
        executor = cell.executor(seed=seed, collect_trace=collect_trace)
        result = executor.run(cell.program, benchmark_name=cell.benchmark)
        self.last_executor = executor
        return result

    def simulate_all_designs(
        self,
        circuit: CircuitLike,
        designs: Optional[Sequence[str]] = None,
        seed: int = 0,
        **kwargs,
    ) -> Dict[str, ExecutionResult]:
        """Simulate one run of every design on the same circuit and seed."""
        designs = list(designs) if designs is not None else list_designs()
        return {
            name: self.simulate(circuit, design=name, seed=seed, **kwargs)
            for name in designs
        }

    # ------------------------------------------------------------------
    def ideal_reference(self, circuit: CircuitLike) -> ExecutionResult:
        """Depth / fidelity of the monolithic (ideal) execution."""
        return self.simulate(circuit, design="ideal", seed=0)

    def describe(self) -> Dict[str, object]:
        """Configuration summary (used by reports and examples)."""
        return {
            "system": {
                "nodes": self.system.num_nodes,
                "data_per_node": self.system.data_qubits_per_node,
                "comm_per_node": self.system.comm_qubits_per_node,
                "buffer_per_node": self.system.buffer_qubits_per_node,
                "psucc": self.system.epr_success_probability,
            },
            "partition_method": self.partition_method,
            "topology": self.system.topology,
            "designs": list_designs(),
        }
