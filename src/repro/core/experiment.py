"""Experiment runner: designs × benchmarks × repetitions.

:class:`ExperimentRunner` drives the full evaluation loops of the paper:
Fig. 5 / 6 (all designs on the 32-qubit benchmarks), Fig. 7 (communication /
buffer qubit sweep), and Fig. 8 (64-qubit benchmarks).  Results are averaged
over repetitions and returned as :class:`~repro.core.results.BenchmarkComparison`
objects that the report module renders as text tables.

The runner is a thin wrapper over the staged
:class:`~repro.engine.pipeline.ExperimentEngine`: each (benchmark, design)
cell is compiled exactly once and the seed × cell grid is replayed through a
pluggable execution backend (``"serial"`` by default; ``"process"`` fans the
grid out across cores with identical results).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.codesign import DQCSimulator
from repro.core.config import ExperimentConfig, SystemConfig
from repro.core.results import BenchmarkComparison
from repro.engine.backends import BackendLike, get_backend
from repro.engine.cache import ArtifactCache
from repro.engine.pipeline import ExperimentEngine
from repro.runtime.metrics import ExecutionResult
from repro.exceptions import ConfigurationError

__all__ = ["ExperimentRunner", "run_design_comparison", "run_comm_qubit_sweep"]


class ExperimentRunner:
    """Runs one :class:`ExperimentConfig` and aggregates the results.

    Parameters
    ----------
    config:
        The experiment grid.
    backend:
        Execute-stage strategy (backend instance, registered name, or
        ``None`` for serial).
    cache:
        Optional shared :class:`ArtifactCache` so several runners (e.g. the
        steps of a sweep) reuse each other's compile artifacts.
    """

    def __init__(self, config: ExperimentConfig,
                 backend: BackendLike = None,
                 cache: Optional[ArtifactCache] = None) -> None:
        self.config = config
        self.engine = ExperimentEngine(config, backend=backend, cache=cache)
        # Shares the engine's compiler, so ad-hoc simulate() calls and the
        # grid run draw from the same artifact cache.
        self.simulator = DQCSimulator(compiler=self.engine.compiler)

    # ------------------------------------------------------------------
    def run_cell(self, benchmark: str, design: str) -> List[ExecutionResult]:
        """All repetitions of one (benchmark, design) cell."""
        return self.engine.run_cell(benchmark, design)

    def run_benchmark(self, benchmark: str) -> BenchmarkComparison:
        """All designs on one benchmark."""
        return self.engine.run_benchmark(benchmark)

    def run(self) -> Dict[str, BenchmarkComparison]:
        """The full experiment, keyed by benchmark name."""
        return self.engine.run()

    def close(self) -> None:
        """Release the engine's backend resources (worker processes)."""
        self.engine.close()

    def __enter__(self) -> "ExperimentRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def run_design_comparison(
    benchmarks: Sequence[str],
    designs: Optional[Sequence[str]] = None,
    num_runs: int = 5,
    system: Optional[SystemConfig] = None,
    base_seed: int = 1,
    backend: BackendLike = None,
    cache: Optional[ArtifactCache] = None,
) -> Dict[str, BenchmarkComparison]:
    """Convenience wrapper reproducing one Fig. 5 / Fig. 6 / Fig. 8 sweep.

    Parameters
    ----------
    benchmarks:
        Benchmark names to evaluate.
    designs:
        Design names (defaults to all six).
    num_runs:
        Stochastic repetitions per cell (the paper uses 50; the benchmark
        harness uses fewer by default to keep wall-clock time reasonable and
        exposes the full count behind an option).
    system:
        Hardware configuration (defaults to the paper's 32-qubit system).
    base_seed:
        Seed of the first repetition.
    backend:
        Execution backend (instance, name, or ``None`` for serial).
    cache:
        Optional shared compile-artifact cache.
    """
    from repro.runtime.designs import list_designs

    config = ExperimentConfig(
        benchmarks=tuple(benchmarks),
        designs=tuple(designs) if designs is not None else tuple(list_designs()),
        num_runs=num_runs,
        base_seed=base_seed,
        system=system or SystemConfig(),
    )
    resolved = get_backend(backend)
    try:
        return ExperimentRunner(config, backend=resolved, cache=cache).run()
    finally:
        if resolved is not backend:
            # The backend was created here (from a name or None), so its
            # worker processes are released here; caller-provided instances
            # stay open for reuse.
            resolved.close()


def run_comm_qubit_sweep(
    benchmark: str,
    comm_buffer_counts: Sequence[int],
    designs: Optional[Sequence[str]] = None,
    num_runs: int = 5,
    base_system: Optional[SystemConfig] = None,
    base_seed: int = 1,
    backend: BackendLike = None,
    cache: Optional[ArtifactCache] = None,
) -> Dict[int, BenchmarkComparison]:
    """Fig. 7 sweep: vary the number of communication / buffer qubits.

    For every entry ``n`` of ``comm_buffer_counts`` the system is configured
    with ``n`` communication and ``n`` buffer qubits per node and the chosen
    designs are evaluated on ``benchmark``.

    All sweep steps share one compile-artifact cache and one execution
    backend: the partitioned program of ``benchmark`` is compiled once for
    the whole sweep (partitioning does not depend on communication-qubit
    counts), while the schedule lookup tables — whose segment length does —
    are recompiled per step.
    """
    if not comm_buffer_counts:
        raise ConfigurationError("sweep needs at least one qubit count")
    base_system = base_system or SystemConfig()
    cache = cache if cache is not None else ArtifactCache()
    resolved = get_backend(backend)
    sweep_results: Dict[int, BenchmarkComparison] = {}
    try:
        for count in comm_buffer_counts:
            system = base_system.with_comm_and_buffer(count, count)
            comparisons = run_design_comparison(
                [benchmark], designs=designs, num_runs=num_runs, system=system,
                base_seed=base_seed, backend=resolved, cache=cache,
            )
            sweep_results[count] = comparisons[benchmark]
    finally:
        if resolved is not backend:
            resolved.close()
    return sweep_results
