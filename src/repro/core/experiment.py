"""Experiment runner: designs × benchmarks × repetitions.

:class:`ExperimentRunner` drives the full evaluation loops of the paper:
Fig. 5 / 6 (all designs on the 32-qubit benchmarks), Fig. 7 (communication /
buffer qubit sweep), and Fig. 8 (64-qubit benchmarks).  Results are averaged
over repetitions and returned as :class:`~repro.core.results.BenchmarkComparison`
objects that the report module renders as text tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.codesign import DQCSimulator
from repro.core.config import ExperimentConfig, SystemConfig
from repro.core.results import BenchmarkComparison, DesignSummary
from repro.runtime.metrics import ExecutionResult
from repro.exceptions import ConfigurationError

__all__ = ["ExperimentRunner", "run_design_comparison", "run_comm_qubit_sweep"]


class ExperimentRunner:
    """Runs one :class:`ExperimentConfig` and aggregates the results."""

    def __init__(self, config: ExperimentConfig) -> None:
        self.config = config
        self.simulator = DQCSimulator(
            system=config.system, partition_seed=config.partition_seed
        )

    # ------------------------------------------------------------------
    def run_cell(self, benchmark: str, design: str) -> List[ExecutionResult]:
        """All repetitions of one (benchmark, design) cell."""
        results = []
        for seed in self.config.seeds():
            results.append(
                self.simulator.simulate(benchmark, design=design, seed=seed)
            )
        return results

    def run_benchmark(self, benchmark: str) -> BenchmarkComparison:
        """All designs on one benchmark."""
        comparison = BenchmarkComparison(benchmark=benchmark)
        for design in self.config.designs:
            results = self.run_cell(benchmark, design)
            comparison.add(DesignSummary.from_results(results))
        return comparison

    def run(self) -> Dict[str, BenchmarkComparison]:
        """The full experiment, keyed by benchmark name."""
        return {
            benchmark: self.run_benchmark(benchmark)
            for benchmark in self.config.benchmarks
        }


def run_design_comparison(
    benchmarks: Sequence[str],
    designs: Optional[Sequence[str]] = None,
    num_runs: int = 5,
    system: Optional[SystemConfig] = None,
    base_seed: int = 1,
) -> Dict[str, BenchmarkComparison]:
    """Convenience wrapper reproducing one Fig. 5 / Fig. 6 / Fig. 8 sweep.

    Parameters
    ----------
    benchmarks:
        Benchmark names to evaluate.
    designs:
        Design names (defaults to all six).
    num_runs:
        Stochastic repetitions per cell (the paper uses 50; the benchmark
        harness uses fewer by default to keep wall-clock time reasonable and
        exposes the full count behind an option).
    system:
        Hardware configuration (defaults to the paper's 32-qubit system).
    base_seed:
        Seed of the first repetition.
    """
    from repro.runtime.designs import list_designs

    config = ExperimentConfig(
        benchmarks=tuple(benchmarks),
        designs=tuple(designs) if designs is not None else tuple(list_designs()),
        num_runs=num_runs,
        base_seed=base_seed,
        system=system or SystemConfig(),
    )
    return ExperimentRunner(config).run()


def run_comm_qubit_sweep(
    benchmark: str,
    comm_buffer_counts: Sequence[int],
    designs: Optional[Sequence[str]] = None,
    num_runs: int = 5,
    base_system: Optional[SystemConfig] = None,
    base_seed: int = 1,
) -> Dict[int, BenchmarkComparison]:
    """Fig. 7 sweep: vary the number of communication / buffer qubits.

    For every entry ``n`` of ``comm_buffer_counts`` the system is configured
    with ``n`` communication and ``n`` buffer qubits per node and the chosen
    designs are evaluated on ``benchmark``.
    """
    if not comm_buffer_counts:
        raise ConfigurationError("sweep needs at least one qubit count")
    base_system = base_system or SystemConfig()
    sweep_results: Dict[int, BenchmarkComparison] = {}
    for count in comm_buffer_counts:
        system = base_system.with_comm_and_buffer(count, count)
        comparisons = run_design_comparison(
            [benchmark], designs=designs, num_runs=num_runs, system=system,
            base_seed=base_seed,
        )
        sweep_results[count] = comparisons[benchmark]
    return sweep_results
