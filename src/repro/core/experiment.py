"""Legacy experiment entry points, as thin shims over the Study API.

:class:`ExperimentRunner`, :func:`run_design_comparison`, and
:func:`run_comm_qubit_sweep` predate the declarative
:class:`~repro.study.study.Study` layer.  They are kept (with their exact
historical signatures and return shapes) as compatibility wrappers: each
builds the equivalent ``Study``, runs it, and converts the flat
:class:`~repro.study.results.ResultSet` back to the nested
``BenchmarkComparison`` dictionaries via
:meth:`~repro.study.results.ResultSet.to_comparisons`.  Results are
bit-identical to the pre-Study implementations — the study compiles and
executes the same (cell, seed) grid through the same engine.

New code should use :class:`~repro.study.study.Study` directly; it covers
these two shapes and every other axis combination (seeds, scheduling knobs,
any ``SystemConfig`` field) without hand-written loops.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.codesign import DQCSimulator
from repro.core.config import ExperimentConfig, SystemConfig
from repro.core.results import BenchmarkComparison
from repro.engine.backends import BackendLike
from repro.engine.cache import ArtifactCache
from repro.engine.pipeline import ExperimentEngine
from repro.runtime.metrics import ExecutionResult
from repro.study.grid import Axis
from repro.study.study import Study
from repro.exceptions import ConfigurationError

__all__ = ["ExperimentRunner", "run_design_comparison", "run_comm_qubit_sweep"]


class ExperimentRunner:
    """Runs one :class:`ExperimentConfig` and aggregates the results.

    A compatibility shim over :class:`~repro.study.study.Study`: the grid
    run (:meth:`run`) goes through the study layer, while the cell-level
    helpers keep delegating to the staged
    :class:`~repro.engine.pipeline.ExperimentEngine`, which shares the
    study's compiler, artifact cache, and backend.

    Parameters
    ----------
    config:
        The experiment grid.
    backend:
        Execute-stage strategy (backend instance, registered name, or
        ``None`` for serial).
    cache:
        Optional shared :class:`ArtifactCache` so several runners (e.g. the
        steps of a sweep) reuse each other's compile artifacts.
    """

    def __init__(self, config: ExperimentConfig,
                 backend: BackendLike = None,
                 cache: Optional[ArtifactCache] = None) -> None:
        self.config = config
        self.study = Study.from_experiment_config(config, backend=backend,
                                                  cache=cache)
        self.engine = ExperimentEngine(
            config,
            backend=self.study.backend,
            compiler=self.study.compiler_for(config.system),
        )
        # Shares the study's compiler, so ad-hoc simulate() calls and the
        # grid run draw from the same artifact cache.
        self.simulator = DQCSimulator(compiler=self.engine.compiler)

    # ------------------------------------------------------------------
    def run_cell(self, benchmark: str, design: str) -> List[ExecutionResult]:
        """All repetitions of one (benchmark, design) cell."""
        return self.engine.run_cell(benchmark, design)

    def run_benchmark(self, benchmark: str) -> BenchmarkComparison:
        """All designs on one benchmark."""
        return self.engine.run_benchmark(benchmark)

    def run(self) -> Dict[str, BenchmarkComparison]:
        """The full experiment, keyed by benchmark name."""
        return self.study.run().to_comparisons()

    def close(self) -> None:
        """Release backend resources the runner created.

        Caller-provided backend instances stay open (the same ownership
        contract as :class:`~repro.study.study.Study` and the module-level
        helpers); backends resolved from a name / ``None`` are closed.
        """
        self.study.close()

    def __enter__(self) -> "ExperimentRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def run_design_comparison(
    benchmarks: Sequence[str],
    designs: Optional[Sequence[str]] = None,
    num_runs: int = 5,
    system: Optional[SystemConfig] = None,
    base_seed: int = 1,
    backend: BackendLike = None,
    cache: Optional[ArtifactCache] = None,
) -> Dict[str, BenchmarkComparison]:
    """Convenience wrapper reproducing one Fig. 5 / Fig. 6 / Fig. 8 sweep.

    Equivalent to ``Study(benchmarks, designs, ...).run().to_comparisons()``.

    Parameters
    ----------
    benchmarks:
        Benchmark names to evaluate.
    designs:
        Design names (defaults to all registered designs).
    num_runs:
        Stochastic repetitions per cell (the paper uses 50; the benchmark
        harness uses fewer by default to keep wall-clock time reasonable and
        exposes the full count behind an option).
    system:
        Hardware configuration (defaults to the paper's 32-qubit system).
    base_seed:
        Seed of the first repetition.
    backend:
        Execution backend (instance, name, or ``None`` for serial).  The
        helper closes backends it creates from a name / ``None``;
        caller-provided instances stay open for reuse.
    cache:
        Optional shared compile-artifact cache.
    """
    study = Study(
        benchmarks=list(benchmarks),
        designs=list(designs) if designs is not None else None,
        num_runs=num_runs,
        base_seed=base_seed,
        system=system or SystemConfig(),
        backend=backend,
        cache=cache,
    )
    try:
        return study.run().to_comparisons()
    finally:
        study.close()


def run_comm_qubit_sweep(
    benchmark: str,
    comm_buffer_counts: Sequence[int],
    designs: Optional[Sequence[str]] = None,
    num_runs: int = 5,
    base_system: Optional[SystemConfig] = None,
    base_seed: int = 1,
    backend: BackendLike = None,
    cache: Optional[ArtifactCache] = None,
) -> Dict[int, BenchmarkComparison]:
    """Fig. 7 sweep: vary the number of communication / buffer qubits.

    For every entry ``n`` of ``comm_buffer_counts`` the system is configured
    with ``n`` communication and ``n`` buffer qubits per node and the chosen
    designs are evaluated on ``benchmark``.  Equivalent to a ``Study`` with
    one zipped communication/buffer axis, keyed by count via
    ``to_comparisons(by="comm_qubits_per_node")``.

    All sweep steps share one compile-artifact cache and one execution
    backend: the partitioned program of ``benchmark`` is compiled once for
    the whole sweep (partitioning does not depend on communication-qubit
    counts), while the schedule lookup tables — whose segment length does —
    are recompiled per step.
    """
    if not comm_buffer_counts:
        raise ConfigurationError("sweep needs at least one qubit count")
    study = Study(
        benchmarks=benchmark,
        designs=list(designs) if designs is not None else None,
        axes=[Axis(("comm_qubits_per_node", "buffer_qubits_per_node"),
                   [(count, count) for count in comm_buffer_counts])],
        num_runs=num_runs,
        base_seed=base_seed,
        system=base_system or SystemConfig(),
        backend=backend,
        cache=cache,
    )
    try:
        return study.run().to_comparisons(by="comm_qubits_per_node")
    finally:
        study.close()
