"""Public co-design API: simulator, configuration, experiments, results."""

from repro.core.codesign import DQCSimulator
from repro.core.config import (
    PAPER_32Q_SYSTEM,
    PAPER_64Q_SYSTEM,
    ExperimentConfig,
    SystemConfig,
)
from repro.core.experiment import (
    ExperimentRunner,
    run_comm_qubit_sweep,
    run_design_comparison,
)
from repro.core.results import BenchmarkComparison, DesignSummary

__all__ = [
    "DQCSimulator",
    "SystemConfig",
    "ExperimentConfig",
    "PAPER_32Q_SYSTEM",
    "PAPER_64Q_SYSTEM",
    "ExperimentRunner",
    "run_design_comparison",
    "run_comm_qubit_sweep",
    "BenchmarkComparison",
    "DesignSummary",
]
