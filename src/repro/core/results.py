"""Aggregated experiment results.

The paper reports, for every benchmark, the circuit depth and fidelity of
each design averaged over 50 stochastic runs, normalised by the ideal
(monolithic) execution.  :class:`DesignSummary` holds the per-design
aggregate and :class:`BenchmarkComparison` the whole row of a figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.statistics import SampleStatistics, summarize
from repro.runtime.metrics import ExecutionResult

__all__ = ["DesignSummary", "BenchmarkComparison"]


@dataclass
class DesignSummary:
    """Aggregate of repeated runs of one design on one benchmark."""

    design: str
    benchmark: str
    depth: SampleStatistics
    fidelity: SampleStatistics
    mean_remote_wait: float
    mean_link_fidelity: float
    epr_generated: float
    epr_wasted: float
    num_runs: int

    @classmethod
    def from_results(cls, results: Sequence[ExecutionResult]) -> "DesignSummary":
        """Aggregate a list of runs of the same (design, benchmark) cell."""
        if not results:
            raise ValueError("cannot summarise an empty result list")
        first = results[0]
        return cls(
            design=first.design,
            benchmark=first.benchmark,
            depth=summarize([r.makespan for r in results]),
            fidelity=summarize([r.fidelity for r in results]),
            mean_remote_wait=sum(r.mean_remote_wait() for r in results) / len(results),
            mean_link_fidelity=sum(r.mean_link_fidelity() for r in results)
            / len(results),
            epr_generated=sum(r.epr_statistics.get("generated", 0) for r in results)
            / len(results),
            epr_wasted=sum(r.epr_statistics.get("wasted", 0) for r in results)
            / len(results),
            num_runs=len(results),
        )

    def depth_relative_to(self, ideal_depth: float) -> float:
        """Mean depth normalised by the ideal depth."""
        if ideal_depth <= 0:
            return float("inf")
        return self.depth.mean / ideal_depth

    def fidelity_relative_to(self, ideal_fidelity: float) -> float:
        """Mean fidelity normalised by the ideal fidelity."""
        if ideal_fidelity <= 0:
            return 0.0
        return self.fidelity.mean / ideal_fidelity


@dataclass
class BenchmarkComparison:
    """All design summaries of one benchmark (one panel of Fig. 5 / 6)."""

    benchmark: str
    summaries: Dict[str, DesignSummary] = field(default_factory=dict)

    def add(self, summary: DesignSummary) -> None:
        """Insert one design summary."""
        self.summaries[summary.design] = summary

    def design(self, name: str) -> DesignSummary:
        """Summary of a design by name."""
        return self.summaries[name]

    @property
    def designs(self) -> List[str]:
        """Design names present in this comparison."""
        return list(self.summaries)

    def ideal_depth(self) -> Optional[float]:
        """Mean depth of the ideal design (if simulated)."""
        ideal = self.summaries.get("ideal")
        return ideal.depth.mean if ideal else None

    def ideal_fidelity(self) -> Optional[float]:
        """Mean fidelity of the ideal design (if simulated)."""
        ideal = self.summaries.get("ideal")
        return ideal.fidelity.mean if ideal else None

    def depth_table(self) -> Dict[str, float]:
        """Mean absolute depth per design."""
        return {name: summary.depth.mean for name, summary in self.summaries.items()}

    def relative_depth_table(self) -> Dict[str, float]:
        """Depth per design relative to the ideal depth (Fig. 5 y-axis)."""
        ideal = self.ideal_depth()
        if not ideal:
            return {}
        return {
            name: summary.depth.mean / ideal
            for name, summary in self.summaries.items()
        }

    def fidelity_table(self) -> Dict[str, float]:
        """Mean absolute fidelity per design (Fig. 6 bar labels)."""
        return {
            name: summary.fidelity.mean for name, summary in self.summaries.items()
        }

    def depth_reduction_vs(self, baseline: str, design: str) -> float:
        """Relative depth reduction of ``design`` compared to ``baseline``."""
        base = self.summaries[baseline].depth.mean
        new = self.summaries[design].depth.mean
        if base <= 0:
            return 0.0
        return 1.0 - new / base
