"""Experiment and system configuration objects.

:class:`SystemConfig` captures one evaluated hardware configuration (number
of nodes, data / communication / buffer qubits per node, Table II
parameters) and :class:`ExperimentConfig` one full experiment (benchmarks ×
designs × repetitions), mirroring Sec. IV-A and Sec. V of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.hardware.architecture import DQCArchitecture, two_node_architecture
from repro.hardware.parameters import GateFidelities, GateTimes, PhysicalConstants
from repro.hardware.topology import get_topology
from repro.partitioning.registry import get_partitioner
from repro.runtime.designs import list_designs
from repro.exceptions import ConfigurationError, PartitionError, TopologyError

__all__ = ["SystemConfig", "ExperimentConfig", "PAPER_32Q_SYSTEM", "PAPER_64Q_SYSTEM"]


@dataclass(frozen=True)
class SystemConfig:
    """One DQC hardware configuration of the evaluation.

    Attributes
    ----------
    num_nodes:
        Number of QPU nodes (2 in the paper's evaluation; the architecture
        model supports more — :meth:`build_architecture` materialises a
        generic node ring for ``num_nodes > 2``).
    data_qubits_per_node:
        Data-qubit capacity per node (16 for the 32-qubit experiments,
        32 for the 64-qubit experiments).
    comm_qubits_per_node / buffer_qubits_per_node:
        Communication and buffer qubit counts per node.
    epr_success_probability:
        Per-attempt entanglement generation success probability ``psucc``.
    decoherence_time_us / local_cnot_time_ns:
        Physical constants defining the decoherence rate.
    partition_method:
        Name of the registered partitioning strategy used to distribute
        circuits over the nodes (see :mod:`repro.partitioning.registry`;
        ``"multilevel"`` is the paper's METIS baseline).
    topology:
        Name of the registered interconnect topology (see
        :mod:`repro.hardware.topology`; ``"all_to_all"`` reproduces the
        paper's fully connected setting).  Both names are validated at
        construction so sweeps fail fast on typos.
    """

    num_nodes: int = 2
    data_qubits_per_node: int = 16
    comm_qubits_per_node: int = 10
    buffer_qubits_per_node: int = 10
    epr_success_probability: float = 0.4
    decoherence_time_us: float = 150.0
    local_cnot_time_ns: float = 300.0
    gate_times: GateTimes = field(default_factory=GateTimes)
    fidelities: GateFidelities = field(default_factory=GateFidelities)
    partition_method: str = "multilevel"
    topology: str = "all_to_all"

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ConfigurationError("a DQC system needs at least 2 nodes")
        if self.data_qubits_per_node < 1:
            raise ConfigurationError("each node needs at least one data qubit")
        if self.comm_qubits_per_node < 1:
            raise ConfigurationError("each node needs at least one communication qubit")
        if self.buffer_qubits_per_node < 0:
            raise ConfigurationError("buffer qubit count must be non-negative")
        try:
            partitioner = get_partitioner(self.partition_method)
        except PartitionError as error:
            raise ConfigurationError(str(error)) from None
        if self.num_nodes > 2 and not partitioner.supports_k_way:
            raise ConfigurationError(
                f"partitioner {partitioner.name!r} only supports bisection "
                f"but the system has {self.num_nodes} nodes; use a k-way "
                f"strategy such as 'multilevel'"
            )
        try:
            # links() also validates the node count (e.g. grid-2x3 needs 6).
            get_topology(self.topology).links(self.num_nodes)
        except TopologyError as error:
            raise ConfigurationError(str(error)) from None

    @property
    def total_data_qubits(self) -> int:
        """Total data qubits across the system."""
        return self.num_nodes * self.data_qubits_per_node

    def build_architecture(self) -> DQCArchitecture:
        """Materialise the :class:`DQCArchitecture` for this configuration.

        The interconnect ``links`` come from the registered :attr:`topology`
        (``None`` for ``all_to_all``, reproducing the paper's setting).
        """
        physics = PhysicalConstants(
            local_cnot_time_ns=self.local_cnot_time_ns,
            decoherence_time_us=self.decoherence_time_us,
            epr_success_probability=self.epr_success_probability,
        )
        links = get_topology(self.topology).links(self.num_nodes)
        if self.num_nodes == 2:
            return two_node_architecture(
                data_qubits_per_node=self.data_qubits_per_node,
                comm_qubits_per_node=self.comm_qubits_per_node,
                buffer_qubits_per_node=self.buffer_qubits_per_node,
                gate_times=self.gate_times,
                fidelities=self.fidelities,
                physics=physics,
                links=links,
            )
        from repro.hardware.node import QPUNode

        nodes = [
            QPUNode(i, self.data_qubits_per_node, self.comm_qubits_per_node,
                    self.buffer_qubits_per_node)
            for i in range(self.num_nodes)
        ]
        return DQCArchitecture(nodes=nodes, gate_times=self.gate_times,
                               fidelities=self.fidelities, physics=physics,
                               links=links)

    def with_comm_and_buffer(self, comm: int, buffer: int) -> "SystemConfig":
        """Copy with different communication / buffer qubit counts (Fig. 7)."""
        return replace(self, comm_qubits_per_node=comm, buffer_qubits_per_node=buffer)


#: The paper's 2-node, 32-data-qubit configuration (Sec. V-A).
PAPER_32Q_SYSTEM = SystemConfig()

#: The paper's 2-node, 64-data-qubit configuration (Sec. V-C).
PAPER_64Q_SYSTEM = SystemConfig(
    data_qubits_per_node=32,
    comm_qubits_per_node=20,
    buffer_qubits_per_node=20,
)


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment: benchmarks × designs × repetitions on one system.

    Attributes
    ----------
    benchmarks:
        Benchmark names from the registry.
    designs:
        Design names.  ``None`` (the default) means *every design
        registered at construction time* — including designs registered
        after this module was imported — and is resolved to a concrete
        tuple in ``__post_init__``.
    num_runs:
        Number of stochastic repetitions per (benchmark, design) cell
        (the paper averages 50 runs).
    base_seed:
        Seed of the first repetition; runs use ``base_seed + run_index``.
    system:
        Hardware configuration.
    partition_seed:
        Seed of the (deterministic) graph partitioner.
    """

    benchmarks: Tuple[str, ...]
    designs: Optional[Tuple[str, ...]] = None
    num_runs: int = 50
    base_seed: int = 1
    system: SystemConfig = field(default_factory=SystemConfig)
    partition_seed: int = 0

    def __post_init__(self) -> None:
        if not self.benchmarks:
            raise ConfigurationError("experiment needs at least one benchmark")
        if self.designs is None:
            # Resolved per instance, not at class definition, so designs
            # registered after import still appear in default grids.
            object.__setattr__(self, "designs", tuple(list_designs()))
        if not self.designs:
            raise ConfigurationError("experiment needs at least one design")
        if self.num_runs < 1:
            raise ConfigurationError("experiment needs at least one run")

    def seeds(self) -> List[int]:
        """Seeds of the individual repetitions."""
        return [self.base_seed + index for index in range(self.num_runs)]
