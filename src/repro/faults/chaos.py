"""Chaos soak: seeded random fault schedules over the full stack.

The tier above single-site failpoint tests: generate N random (but fully
seeded — same ``--seed`` → same schedules) fault plans from the site
catalogue, run each one against a small reference study through **both**
production paths, and require every surviving run to be **byte-identical**
to a clean serial baseline:

* **fleet phase** — an in-process coordinator plus real
  ``python -m repro worker`` subprocesses that inherit worker-side faults
  (frame drops/truncation, crash-before-execute, crash-before-report)
  through ``REPRO_FAULTS``; a supervisor respawns crashed workers.
  Coordinator stalls and store faults (``ENOSPC``, torn shard/log
  appends) are installed in the driving process; the sweep streams to a
  :class:`~repro.study.store.RunStore` and is simply *re-run* after each
  injected store failure — the committed chunks resume.
* **service phase** — a real ``python -m repro serve`` daemon subprocess
  with service-side faults (torn journal appends, scheduler crash at a
  chunk boundary).  The harness restarts the daemon when a fault kills it
  and waits for the recovered, re-queued job to finish, then fetches the
  results over HTTP.

Faults are *count-limited* by construction and subprocesses are respawned
with faults stripped after a few injected deaths, so every schedule
terminates; what byte-identity then proves is that no injected failure —
at any catalogued site — can corrupt or duplicate a committed result.

Entry points: ``python -m repro chaos`` and ``tools/chaos_soak.py``, both
thin wrappers over :func:`run_chaos`.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from random import Random
from typing import Any, Dict, List, Optional

from repro.engine.backends import SerialBackend
from repro.exceptions import FaultError, ReproError
from repro.faults.core import (
    CRASH_EXIT_CODE,
    FAULTS_ENV_VAR,
    FAULTS_SEED_ENV_VAR,
    SITES,
    fault_stats,
    install_faults,
    uninstall_faults,
)

__all__ = ["run_chaos", "build_schedules", "DEFAULT_STUDY_SPEC",
           "DEFAULT_SCHEDULES", "DEFAULT_SEED"]

DEFAULT_SCHEDULES = 3
DEFAULT_SEED = 9

#: The reference study every schedule runs: a few cells × a few seeds,
#: seconds of serial work, so the soak's wall-clock is dominated by the
#: injected failures rather than the simulation itself.
DEFAULT_STUDY_SPEC: Dict[str, Any] = {
    "benchmarks": ["TLIM-32", "QAOA-r4-16"],
    "designs": ["ideal", "original"],
    "num_runs": 4,
    "system": {"data_qubits_per_node": 16, "comm_qubits_per_node": 4,
               "buffer_qubits_per_node": 4},
}

#: Where each catalogued site is armed: ``worker`` sites travel to the
#: fleet-worker subprocesses via the environment, ``driver`` sites are
#: installed in the soak process itself (which hosts the coordinator and
#: the run store), and ``service`` sites travel to the daemon subprocess.
_PLACEMENT: Dict[str, str] = {
    "fleet.frame.send": "worker",
    "fleet.frame.recv": "worker",
    "fleet.worker.crash_before_execute": "worker",
    "fleet.worker.crash_before_report": "worker",
    "fleet.coordinator.accept": "driver",
    "fleet.coordinator.assign": "driver",
    "store.fsync": "driver",
    "store.shard.write": "driver",
    "store.log.append": "driver",
    "service.journal.append": "service",
    "service.job.chunk": "service",
}

#: Respawns of one worker slot / daemon that still carry faults; further
#: respawns run clean so every schedule converges.
_FAULTY_RESPAWNS = 2

#: Sweep attempts before the driver-side plan is force-uninstalled (its
#: rules are count-limited and should exhaust well before this).
_MAX_SWEEP_ATTEMPTS = 8


def _rule_for(site: str, rng: Random) -> str:
    """A converging (count-limited) spec rule for one catalogued site.

    The ``after`` offsets are drawn from the schedule RNG so different
    schedules hit the same site at different points of the run; the
    bounded ``count`` is what guarantees the soak terminates.
    """
    if site == "fleet.frame.send":
        return f"{site}:kind=drop,p=0.2,count=2"
    if site == "fleet.frame.recv":
        return f"{site}:kind=error,count=1,after={rng.randint(2, 6)}"
    if site == "fleet.worker.crash_before_execute":
        return f"{site}:kind=crash,count=1,after={rng.randint(0, 2)}"
    if site == "fleet.worker.crash_before_report":
        return f"{site}:kind=crash,count=1,after={rng.randint(0, 2)}"
    if site == "fleet.coordinator.accept":
        return f"{site}:kind=delay,ms=40,count=2"
    if site == "fleet.coordinator.assign":
        return f"{site}:kind=delay,ms=20,count=4"
    if site == "store.fsync":
        return (f"{site}:kind=error,errno=ENOSPC,count=1,"
                f"after={rng.randint(1, 4)}")
    if site == "store.shard.write":
        return f"{site}:kind=torn,count=1,after={rng.randint(0, 3)}"
    if site == "store.log.append":
        return f"{site}:kind=torn,count=1,after={rng.randint(0, 3)}"
    if site == "service.journal.append":
        # Fires on an early journal append (job creation / queued→running)
        # so the daemon provably dies and recovers within the schedule.
        return f"{site}:kind=torn,count=1,after={rng.randint(1, 2)}"
    if site == "service.job.chunk":
        return f"{site}:kind=crash,count=1,after={rng.randint(1, 3)}"
    raise FaultError(f"no chaos rule template for site {site!r}")


def build_schedules(schedules: int, seed: int) -> List[Dict[str, Any]]:
    """Deterministically partition the site catalogue into fault plans.

    The shuffled catalogue is dealt round-robin across the schedules, so
    the *union* over a soak covers every site once ``schedules >= 1`` —
    the coverage the CI smoke asserts — while each schedule stays small
    enough to diagnose when it trips.
    """
    if schedules < 1:
        raise FaultError("chaos soak needs at least one schedule")
    rng = Random(f"chaos:{seed}")
    names = sorted(SITES)
    rng.shuffle(names)
    plans: List[Dict[str, Any]] = []
    for index in range(schedules):
        sites = sorted(names[index::schedules])
        site_rng = Random(f"chaos:{seed}:schedule:{index}")
        rules = {site: _rule_for(site, site_rng) for site in sites}
        grouped: Dict[str, str] = {}
        for place in ("worker", "driver", "service"):
            grouped[place] = ";".join(
                rules[s] for s in sites if _PLACEMENT[s] == place)
        plans.append({
            "index": index,
            "seed": seed * 1000 + index,
            "sites": sites,
            "rules": rules,
            "specs": grouped,
        })
    return plans


def _src_pythonpath() -> str:
    """A ``PYTHONPATH`` under which subprocesses can import ``repro``."""
    import repro

    src = str(Path(repro.__file__).resolve().parents[1])
    existing = os.environ.get("PYTHONPATH", "")
    return src + (os.pathsep + existing if existing else "")


def _free_port() -> int:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


class _Log:
    def __init__(self, quiet: bool) -> None:
        self.quiet = quiet

    def __call__(self, message: str) -> None:
        if not self.quiet:
            print(f"chaos: {message}", flush=True)


# ----------------------------------------------------------------------
# fleet phase
# ----------------------------------------------------------------------
class _WorkerPool:
    """Supervised ``repro worker`` subprocesses carrying worker faults.

    Dead workers (injected crashes report :data:`CRASH_EXIT_CODE`, like a
    real SIGKILL) are respawned; after :data:`_FAULTY_RESPAWNS` faulty
    lives a slot is respawned *clean* so the sweep always finishes.
    """

    def __init__(self, address: str, count: int, spec: str, seed: int,
                 root: Path) -> None:
        self.address = address
        self.count = count
        self.spec = spec
        self.seed = seed
        self.root = root
        self.procs: List[Optional[subprocess.Popen]] = [None] * count
        self.respawns = [0] * count
        self.crashes = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _spawn(self, slot: int, faulty: bool) -> None:
        env = os.environ.copy()
        env["PYTHONPATH"] = _src_pythonpath()
        # Frame drops must cost seconds, not the default reply timeout.
        env["REPRO_FLEET_REPLY_TIMEOUT"] = "2"
        env.pop(FAULTS_ENV_VAR, None)
        env.pop(FAULTS_SEED_ENV_VAR, None)
        if faulty and self.spec:
            env[FAULTS_ENV_VAR] = self.spec
            env[FAULTS_SEED_ENV_VAR] = str(self.seed * 100 + slot)
        log = open(self.root / f"worker-{slot}.log", "ab")
        try:
            self.procs[slot] = subprocess.Popen(
                [sys.executable, "-m", "repro", "worker",
                 "--connect", self.address,
                 "--name", f"chaos-w{slot}",
                 "--retry", "120", "--quiet"],
                env=env, stdout=log, stderr=subprocess.STDOUT,
            )
        finally:
            log.close()

    def start(self) -> None:
        for slot in range(self.count):
            self._spawn(slot, faulty=True)
        self._thread = threading.Thread(target=self._supervise,
                                        name="chaos-worker-supervisor",
                                        daemon=True)
        self._thread.start()

    def _supervise(self) -> None:
        while not self._stop.wait(0.2):
            for slot, proc in enumerate(self.procs):
                if proc is None or proc.poll() is None:
                    continue
                if proc.returncode == CRASH_EXIT_CODE:
                    self.crashes += 1
                self.respawns[slot] += 1
                self._spawn(slot,
                            faulty=self.respawns[slot] <= _FAULTY_RESPAWNS)

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
        for proc in self.procs:
            if proc is not None and proc.poll() is None:
                proc.terminate()
        for proc in self.procs:
            if proc is not None:
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    proc.kill()
                    proc.wait(timeout=10)


def _run_fleet_phase(plan: Dict[str, Any], spec: Dict[str, Any],
                     baseline: str, root: Path, workers: int,
                     timeout: float, log: _Log) -> Dict[str, Any]:
    from repro.fleet.backend import FleetBackend
    from repro.study.study import Study

    backend = FleetBackend(listen="127.0.0.1:0", chunksize=2, poll=0.05,
                           heartbeat_timeout=6.0)
    backend.start()
    pool = _WorkerPool(backend.address, workers, plan["specs"]["worker"],
                       plan["seed"], root)
    store_path = root / "fleet-store"
    attempts = 0
    errors: List[str] = []
    result_json: Optional[str] = None
    install_faults(plan["specs"]["driver"] or None, seed=plan["seed"])
    try:
        pool.start()
        deadline = time.monotonic() + timeout
        while result_json is None:
            attempts += 1
            try:
                with Study.from_spec(spec, backend=backend) as study:
                    results = study.run(store=store_path,
                                        store_chunk_size=2)
                result_json = results.to_json()
            except (ReproError, OSError) as error:
                errors.append(f"{type(error).__name__}: {error}")
                log(f"  fleet sweep attempt {attempts} failed "
                    f"({type(error).__name__}); resuming from store")
                if time.monotonic() > deadline:
                    break
                if attempts >= _MAX_SWEEP_ATTEMPTS:
                    uninstall_faults()  # force the tail through clean
                time.sleep(0.2)
        driver_stats = fault_stats()
    finally:
        uninstall_faults()
        pool.stop()
        backend.close()
    identical = result_json == baseline
    if result_json is not None:
        (root / "fleet-results.json").write_text(result_json)
    return {
        "spec": {"driver": plan["specs"]["driver"],
                 "worker": plan["specs"]["worker"]},
        "completed": result_json is not None,
        "identical": identical,
        "attempts": attempts,
        "injected_errors": errors,
        "worker_crashes": pool.crashes,
        "worker_respawns": sum(pool.respawns),
        "driver_fault_stats": driver_stats,
    }


# ----------------------------------------------------------------------
# service phase
# ----------------------------------------------------------------------
class _Daemon:
    """One supervised ``repro serve`` subprocess on a pinned port."""

    def __init__(self, data_root: Path, port: int, spec: str, seed: int,
                 root: Path) -> None:
        self.data_root = data_root
        self.port = port
        self.spec = spec
        self.seed = seed
        self.root = root
        self.proc: Optional[subprocess.Popen] = None
        self.starts = 0
        self.crashes = 0

    def start(self, faulty: bool) -> None:
        env = os.environ.copy()
        env["PYTHONPATH"] = _src_pythonpath()
        env.pop(FAULTS_ENV_VAR, None)
        env.pop(FAULTS_SEED_ENV_VAR, None)
        if faulty and self.spec:
            env[FAULTS_ENV_VAR] = self.spec
            env[FAULTS_SEED_ENV_VAR] = str(self.seed)
        log = open(self.root / "daemon.log", "ab")
        try:
            self.proc = subprocess.Popen(
                [sys.executable, "-m", "repro", "serve",
                 "--data-root", str(self.data_root),
                 "--host", "127.0.0.1", "--port", str(self.port)],
                env=env, stdout=log, stderr=subprocess.STDOUT,
            )
        finally:
            log.close()
        self.starts += 1

    def dead(self) -> bool:
        return self.proc is None or self.proc.poll() is not None

    def note_exit(self) -> None:
        if self.proc is not None \
                and self.proc.returncode == CRASH_EXIT_CODE:
            self.crashes += 1

    def stop(self) -> None:
        if self.proc is not None and self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=15)
            except subprocess.TimeoutExpired:  # pragma: no cover
                self.proc.kill()
                self.proc.wait(timeout=10)


def _run_service_phase(plan: Dict[str, Any], spec: Dict[str, Any],
                       baseline: str, root: Path, timeout: float,
                       log: _Log) -> Dict[str, Any]:
    from repro.service.client import ServiceClient, ServiceError

    port = _free_port()
    daemon = _Daemon(root / "service-root", port, plan["specs"]["service"],
                     plan["seed"], root)
    client = ServiceClient(f"http://127.0.0.1:{port}", client="chaos",
                           timeout=10.0)
    job_id: Optional[str] = None
    failures: List[str] = []
    result_text: Optional[str] = None
    final_status: Optional[Dict[str, Any]] = None
    daemon.start(faulty=True)
    try:
        deadline = time.monotonic() + timeout
        while result_text is None and time.monotonic() < deadline:
            if daemon.dead():
                daemon.note_exit()
                log(f"  service daemon exited "
                    f"(code {daemon.proc.returncode}); restarting")
                # Recovery re-queues the interrupted job from the journal;
                # later lives run clean so the schedule converges.
                daemon.start(faulty=daemon.starts <= _FAULTY_RESPAWNS)
                time.sleep(0.2)
                continue
            try:
                if job_id is None:
                    job_id = client.submit(spec)["id"]
                    log(f"  service job {job_id} submitted")
                status = client.job(job_id)
                if status["state"] == "done":
                    final_status = status
                    result_text = client.results(job_id, fmt="json")
                elif status["state"] in ("failed", "cancelled"):
                    failures.append(
                        f"{job_id}: {status['state']}: "
                        f"{status.get('error') or status.get('last_failure')}")
                    job_id = None  # resubmit; the shared store resumes
                else:
                    time.sleep(0.2)
            except ServiceError as error:
                if error.status == 0:  # daemon mid-death; loop restarts it
                    time.sleep(0.2)
                    continue
                if error.status == 404:
                    job_id = None
                    continue
                raise
    finally:
        daemon.stop()
    identical = result_text == baseline
    if result_text is not None:
        (root / "service-results.json").write_text(result_text)
    return {
        "spec": plan["specs"]["service"],
        "completed": result_text is not None,
        "identical": identical,
        "daemon_starts": daemon.starts,
        "daemon_crashes": daemon.crashes,
        "job_requeues": (final_status or {}).get("requeues"),
        "job_last_failure": (final_status or {}).get("last_failure"),
        "job_failures": failures,
    }


# ----------------------------------------------------------------------
# the soak
# ----------------------------------------------------------------------
def run_chaos(schedules: int = DEFAULT_SCHEDULES, seed: int = DEFAULT_SEED,
              *, spec: Optional[Dict[str, Any]] = None, workers: int = 2,
              root: Optional[Path] = None, keep: bool = False,
              out: Optional[Path] = None, phase_timeout: float = 300.0,
              quiet: bool = False) -> Dict[str, Any]:
    """Run the chaos soak and return (and optionally write) its report.

    Every schedule must *complete* (the fault plans are count-limited and
    subprocess respawns shed faults, so a hang is a bug) and its fleet-
    and service-phase results must be byte-identical to the serial
    baseline; ``report["identical"]`` is the overall verdict.
    """
    log = _Log(quiet)
    plans = build_schedules(schedules, seed)
    study_spec = dict(spec or DEFAULT_STUDY_SPEC)
    work_root = Path(root) if root is not None \
        else Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    work_root.mkdir(parents=True, exist_ok=True)
    cleanup = root is None and not keep

    from repro.study.study import Study

    log(f"soak seed {seed}: {schedules} schedule(s), "
        f"{len(SITES)} catalogued sites")
    with Study.from_spec(study_spec, backend=SerialBackend()) as study:
        baseline = study.run().to_json()
    (work_root / "baseline.json").write_text(baseline)
    baseline_sha = hashlib.sha256(baseline.encode("utf-8")).hexdigest()
    log(f"serial baseline: {len(baseline)} bytes, "
        f"sha256 {baseline_sha[:12]}…")

    report: Dict[str, Any] = {
        "seed": seed,
        "requested_schedules": schedules,
        "study_spec": study_spec,
        "baseline_bytes": len(baseline),
        "baseline_sha256": baseline_sha,
        "schedules": [],
    }
    try:
        for plan in plans:
            sched_root = work_root / f"schedule-{plan['index']}"
            sched_root.mkdir(parents=True, exist_ok=True)
            log(f"schedule {plan['index']}: sites "
                f"{', '.join(plan['sites'])}")
            fleet = _run_fleet_phase(plan, study_spec, baseline,
                                     sched_root, workers, phase_timeout,
                                     log)
            log(f"  fleet: completed={fleet['completed']} "
                f"identical={fleet['identical']} "
                f"attempts={fleet['attempts']} "
                f"crashes={fleet['worker_crashes']}")
            service = _run_service_phase(plan, study_spec, baseline,
                                         sched_root, phase_timeout, log)
            log(f"  service: completed={service['completed']} "
                f"identical={service['identical']} "
                f"daemon_starts={service['daemon_starts']}")
            report["schedules"].append({
                "index": plan["index"],
                "seed": plan["seed"],
                "sites": plan["sites"],
                "rules": plan["rules"],
                "fleet": fleet,
                "service": service,
            })
    finally:
        sites_covered = sorted({site for entry in report["schedules"]
                                for site in entry["sites"]})
        report["sites_covered"] = sites_covered
        report["layers_covered"] = sorted(
            {SITES[s].layer for s in sites_covered})
        report["identical"] = bool(report["schedules"]) and all(
            entry["fleet"]["identical"] and entry["service"]["identical"]
            for entry in report["schedules"])
        if out is not None:
            Path(out).parent.mkdir(parents=True, exist_ok=True)
            Path(out).write_text(json.dumps(report, indent=2) + "\n")
        elif keep or root is not None:
            (work_root / "chaos_report.json").write_text(
                json.dumps(report, indent=2) + "\n")
        if cleanup:
            shutil.rmtree(work_root, ignore_errors=True)
    log(f"verdict: identical={report['identical']} over "
        f"{len(report['sites_covered'])} site(s) in "
        f"{len(report['layers_covered'])} layer(s)")
    return report
