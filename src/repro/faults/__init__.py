"""Deterministic fault injection: seeded failpoints and the chaos soak.

See :mod:`repro.faults.core` for the failpoint framework and spec grammar,
and :mod:`repro.faults.chaos` for the soak harness behind ``repro chaos``
and ``tools/chaos_soak.py``.
"""

from repro.faults.core import (
    CRASH_EXIT_CODE,
    FAULTS_ENV_VAR,
    FAULTS_SEED_ENV_VAR,
    SITES,
    FaultAction,
    FaultPlan,
    FaultRule,
    FaultSite,
    InjectedFault,
    active_spec,
    crash_now,
    failpoint,
    fault_stats,
    faults_active,
    install_faults,
    install_faults_from_env,
    parse_faults,
    uninstall_faults,
)

__all__ = [
    "CRASH_EXIT_CODE",
    "FAULTS_ENV_VAR",
    "FAULTS_SEED_ENV_VAR",
    "SITES",
    "FaultAction",
    "FaultPlan",
    "FaultRule",
    "FaultSite",
    "InjectedFault",
    "active_spec",
    "crash_now",
    "failpoint",
    "fault_stats",
    "faults_active",
    "install_faults",
    "install_faults_from_env",
    "parse_faults",
    "uninstall_faults",
]
