"""Deterministic failpoints: seeded, named fault-injection sites.

The durability story of this package — fsynced :class:`RunStore` commits,
a crash-resuming job daemon, a lease-table worker fleet — promises one
thing above all: *byte-identity under failure*.  Hand-scripted kill tests
exercise one failure point each; this module makes failure a first-class,
seeded, sweepable input instead (the FoundationDB "failpoint" idiom).

A **failpoint** is a named call site threaded through a fragile layer::

    from repro.faults import failpoint

    failpoint("store.fsync")          # may raise an injected OSError
    action = failpoint("fleet.frame.send")
    if action is not None and action.kind == "drop":
        return                        # site-specific interpretation

When no fault plan is installed — the default — every call is a single
module-global ``None`` check and returns immediately: failpoints are
zero-cost in production.  A plan is installed from a **spec string**
(``REPRO_FAULTS`` environment variable or ``--faults`` on the CLI)::

    REPRO_FAULTS="fleet.frame.send:p=0.05;store.fsync:count=1"

Spec grammar (semicolon-separated rules, comma-separated params)::

    spec  := rule (";" rule)*
    rule  := site [":" param ("," param)*]
    param := key "=" value

    keys:
      kind  = what happens when the rule fires (site-specific; see SITES)
      p     = fire probability per evaluation        (default 1.0)
      count = maximum number of fires, then disarm   (default unlimited)
      after = skip the first N evaluations           (default 0)
      ms    = delay in milliseconds for kind=delay   (default 25)
      errno = symbolic errno for kind=error          (default site-specific)

``site`` may end in ``*`` to arm every catalogued site with that prefix
(``fleet.*`` arms the whole fleet layer).  Each armed site draws from its
own :class:`random.Random` seeded by ``(plan seed, site name)``, so a
fault schedule **replays exactly**: same spec + same seed → the same
evaluations fire, independent of which other sites are armed and of
``PYTHONHASHSEED``.

Kinds and who performs them:

* ``error`` — the framework raises :class:`InjectedFault` (an ``OSError``
  carrying the configured errno) out of the failpoint call.
* ``crash`` — the framework terminates the process via ``os._exit(137)``,
  mimicking ``kill -9`` at an exact, replayable instruction.
* ``delay`` — the framework sleeps ``ms`` milliseconds, then the site
  continues normally (stalls, not failures).
* ``drop`` / ``truncate`` / ``torn`` — returned to the call site as a
  :class:`FaultAction`; only the site knows how to drop a frame, send a
  partial frame, or tear a journal line.
"""

from __future__ import annotations

import errno as _errno_mod
import os
import sys
import threading
import time
from dataclasses import dataclass
from random import Random
from typing import Dict, List, Optional

from repro.exceptions import FaultError

__all__ = [
    "FAULTS_ENV_VAR",
    "FAULTS_SEED_ENV_VAR",
    "SITES",
    "FaultAction",
    "FaultRule",
    "FaultPlan",
    "FaultSite",
    "InjectedFault",
    "crash_now",
    "failpoint",
    "fault_stats",
    "faults_active",
    "active_spec",
    "install_faults",
    "install_faults_from_env",
    "parse_faults",
    "uninstall_faults",
]

#: Environment variable holding the fault spec (workers and daemons started
#: as subprocesses inherit the schedule through it).
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: Environment variable holding the integer plan seed (default 0).
FAULTS_SEED_ENV_VAR = "REPRO_FAULTS_SEED"

#: Exit code used by ``kind=crash`` — the code a SIGKILLed process reports,
#: so supervisors treat an injected crash exactly like a real one.
CRASH_EXIT_CODE = 137

_VALID_KINDS = ("error", "crash", "delay", "drop", "truncate", "torn")


@dataclass(frozen=True)
class FaultSite:
    """One catalogued failpoint: where it lives and what it can do."""

    name: str
    layer: str
    description: str
    kinds: tuple
    default_kind: str
    default_errno: str = "EIO"


#: The failpoint site catalogue.  Specs may only name sites listed here
#: (misspelled sites would otherwise arm nothing, silently); the chaos
#: harness and ``docs/robustness.md`` enumerate the same table.
SITES: Dict[str, FaultSite] = {
    site.name: site for site in (
        FaultSite(
            "fleet.frame.send", "fleet",
            "outbound protocol frame: drop it, send a truncated prefix, "
            "delay it, or fail the socket write",
            kinds=("drop", "truncate", "delay", "error"),
            default_kind="drop", default_errno="ECONNRESET"),
        FaultSite(
            "fleet.frame.recv", "fleet",
            "inbound protocol frame: delay the read or fail it",
            kinds=("delay", "error"),
            default_kind="error", default_errno="ECONNRESET"),
        FaultSite(
            "fleet.worker.crash_before_execute", "fleet",
            "worker process dies after taking a lease, before executing it",
            kinds=("crash",), default_kind="crash"),
        FaultSite(
            "fleet.worker.crash_before_report", "fleet",
            "worker process dies after executing a lease, before reporting "
            "the result",
            kinds=("crash",), default_kind="crash"),
        FaultSite(
            "fleet.coordinator.accept", "fleet",
            "coordinator stalls after accepting a worker connection",
            kinds=("delay",), default_kind="delay"),
        FaultSite(
            "fleet.coordinator.assign", "fleet",
            "coordinator stalls while issuing a lease",
            kinds=("delay",), default_kind="delay"),
        FaultSite(
            "service.journal.append", "service",
            "job journal tears mid-append: half the line reaches disk, "
            "then the daemon dies (torn) or the write errors",
            kinds=("torn", "error"),
            default_kind="torn", default_errno="EIO"),
        FaultSite(
            "service.job.chunk", "service",
            "scheduler worker dies (or errors/stalls) between job chunks",
            kinds=("crash", "error", "delay"),
            default_kind="crash"),
        FaultSite(
            "store.fsync", "store",
            "durable-store fsync fails (disk full by default)",
            kinds=("error",),
            default_kind="error", default_errno="ENOSPC"),
        FaultSite(
            "store.shard.write", "store",
            "shard append tears: a partial chunk payload reaches the shard, "
            "then the write errors before the commit record",
            kinds=("torn", "error"),
            default_kind="torn", default_errno="EIO"),
        FaultSite(
            "store.log.append", "store",
            "chunk-log commit tears: a partial commit line reaches disk, "
            "then the write errors",
            kinds=("torn", "error"),
            default_kind="torn", default_errno="EIO"),
    )
}


class InjectedFault(OSError):
    """The error raised by ``kind=error`` failpoints.

    An ``OSError`` subclass so the hardened layers exercise their *real*
    error paths — a ``store.fsync`` injection with ``errno=ENOSPC`` is
    indistinguishable from a full disk to :class:`RunStore`.
    """

    def __init__(self, number: int, site: str) -> None:
        super().__init__(number, f"injected fault at failpoint {site!r}")
        self.site = site


@dataclass(frozen=True)
class FaultAction:
    """What a fired failpoint asks its call site to do.

    Returned from :func:`failpoint` only for the kinds the framework
    cannot perform centrally (``drop``, ``truncate``, ``torn``); the
    others (``error``, ``crash``, ``delay``) are executed before return.
    """

    site: str
    kind: str
    ms: float = 0.0
    errno: int = _errno_mod.EIO

    def error(self) -> InjectedFault:
        """The injected error a ``torn``/``truncate`` site raises after
        performing its partial write."""
        return InjectedFault(self.errno, self.site)


@dataclass
class FaultRule:
    """One armed site: when it fires and what it does."""

    site: str
    kind: str
    p: float = 1.0
    count: Optional[int] = None
    after: int = 0
    ms: float = 25.0
    errno: int = _errno_mod.EIO

    def spec(self) -> str:
        """Canonical single-rule spec string (inverse of parsing)."""
        params = [f"kind={self.kind}"]
        if self.p < 1.0:
            params.append(f"p={self.p:g}")
        if self.count is not None:
            params.append(f"count={self.count}")
        if self.after:
            params.append(f"after={self.after}")
        if self.kind == "delay":
            params.append(f"ms={self.ms:g}")
        if self.kind == "error":
            params.append(f"errno={_errno_mod.errorcode.get(self.errno, self.errno)}")
        return f"{self.site}:{','.join(params)}"


@dataclass
class _SiteState:
    """Mutable per-site schedule state: the seeded RNG and counters."""

    rule: FaultRule
    rng: Random
    evaluations: int = 0
    fires: int = 0


class FaultPlan:
    """A parsed, seeded fault schedule over concrete failpoint sites.

    Deterministic by construction: each site's RNG is seeded from
    ``(seed, site name)`` and consumed only by that site's probability
    draws, so the fire pattern at one site never depends on which other
    sites are armed or how often they are hit.
    """

    def __init__(self, rules: List[FaultRule], seed: int,
                 source: str) -> None:
        self.seed = seed
        self.source = source
        self._lock = threading.Lock()
        self._states: Dict[str, _SiteState] = {}
        for rule in rules:
            self._states[rule.site] = _SiteState(
                rule=rule, rng=Random(f"{seed}:{rule.site}"))

    # ------------------------------------------------------------------
    def sites(self) -> List[str]:
        """The concrete sites this plan arms, sorted."""
        return sorted(self._states)

    def evaluate(self, site: str) -> Optional[FaultAction]:
        """Decide whether ``site`` fires now; return its action if so."""
        state = self._states.get(site)
        if state is None:
            return None
        rule = state.rule
        with self._lock:
            state.evaluations += 1
            if state.evaluations <= rule.after:
                return None
            if rule.count is not None and state.fires >= rule.count:
                return None
            if rule.p < 1.0 and state.rng.random() >= rule.p:
                return None
            state.fires += 1
        return FaultAction(site=site, kind=rule.kind, ms=rule.ms,
                           errno=rule.errno)

    def stats(self) -> Dict[str, Dict[str, object]]:
        """Per-site evaluation/fire counters (the soak report body)."""
        with self._lock:
            return {
                site: {
                    "kind": state.rule.kind,
                    "evaluations": state.evaluations,
                    "fires": state.fires,
                }
                for site, state in sorted(self._states.items())
            }


# ----------------------------------------------------------------------
# spec parsing
# ----------------------------------------------------------------------
def _resolve_sites(pattern: str) -> List[str]:
    if pattern.endswith("*"):
        prefix = pattern[:-1]
        matches = [name for name in SITES if name.startswith(prefix)]
        if not matches:
            raise FaultError(
                f"fault site pattern {pattern!r} matches no known site")
        return sorted(matches)
    if pattern not in SITES:
        raise FaultError(
            f"unknown fault site {pattern!r}; known sites: "
            f"{', '.join(sorted(SITES))}")
    return [pattern]


def _parse_errno(value: str) -> int:
    name = value.strip().upper()
    number = getattr(_errno_mod, name, None)
    if isinstance(number, int):
        return number
    try:
        return int(value)
    except ValueError:
        raise FaultError(
            f"unknown errno {value!r} in fault spec (use a symbolic name "
            f"like ENOSPC or an integer)") from None


def parse_faults(spec: str, seed: int = 0) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` spec string into a :class:`FaultPlan`.

    Raises :class:`~repro.exceptions.FaultError` for unknown sites,
    unknown parameters, kinds a site does not support, or malformed
    values — a misspelled spec must never silently arm nothing.
    """
    rules: List[FaultRule] = []
    seen: Dict[str, str] = {}
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        pattern, _, param_text = chunk.partition(":")
        pattern = pattern.strip()
        params: Dict[str, str] = {}
        if param_text.strip():
            for pair in param_text.split(","):
                key, sep, value = pair.partition("=")
                key, value = key.strip(), value.strip()
                if not sep or not key or not value:
                    raise FaultError(
                        f"malformed fault parameter {pair.strip()!r} in "
                        f"rule {chunk!r} (expected key=value)")
                params[key] = value
        for site_name in _resolve_sites(pattern):
            if site_name in seen:
                raise FaultError(
                    f"fault site {site_name!r} armed twice (rules "
                    f"{seen[site_name]!r} and {chunk!r})")
            seen[site_name] = chunk
            site = SITES[site_name]
            rule = FaultRule(site=site_name, kind=site.default_kind,
                             errno=_parse_errno(site.default_errno))
            try:
                for key, value in params.items():
                    if key == "kind":
                        if value not in _VALID_KINDS:
                            raise FaultError(
                                f"unknown fault kind {value!r}; valid: "
                                f"{', '.join(_VALID_KINDS)}")
                        rule.kind = value
                    elif key == "p":
                        rule.p = float(value)
                        if not 0.0 <= rule.p <= 1.0:
                            raise FaultError(
                                f"fault probability must be in [0, 1], "
                                f"got {value}")
                    elif key == "count":
                        rule.count = int(value)
                    elif key == "after":
                        rule.after = int(value)
                    elif key == "ms":
                        rule.ms = float(value)
                    elif key == "errno":
                        rule.errno = _parse_errno(value)
                    else:
                        raise FaultError(
                            f"unknown fault parameter {key!r} in rule "
                            f"{chunk!r} (valid: kind, p, count, after, "
                            f"ms, errno)")
            except ValueError as error:
                raise FaultError(
                    f"malformed value in fault rule {chunk!r}: {error}"
                ) from None
            if rule.kind not in site.kinds:
                raise FaultError(
                    f"site {site_name!r} does not support kind "
                    f"{rule.kind!r} (supported: {', '.join(site.kinds)})")
            rules.append(rule)
    return FaultPlan(rules, seed=seed, source=spec)


# ----------------------------------------------------------------------
# the global plan and the failpoint entry
# ----------------------------------------------------------------------
#: The installed plan; ``None`` keeps every failpoint inert and the
#: :func:`failpoint` fast path a single global read + comparison.
_PLAN: Optional[FaultPlan] = None

#: Crash indirection so tests can intercept ``kind=crash`` without dying.
_exit = os._exit


def _crash(action: FaultAction) -> None:
    sys.stderr.write(
        f"repro.faults: injected crash at {action.site} "
        f"(exit {CRASH_EXIT_CODE})\n")
    sys.stderr.flush()
    _exit(CRASH_EXIT_CODE)


def crash_now(action: FaultAction) -> None:
    """Terminate the process on behalf of a site-implemented fault.

    ``torn``-style sites call this after performing their partial write:
    the tear only stays torn if the process dies before the handle is
    used again, exactly like a real crash mid-append.
    """
    _crash(action)


def failpoint(site: str) -> Optional[FaultAction]:
    """Evaluate the failpoint ``site`` against the installed plan.

    Returns ``None`` when no plan is installed (the common case — one
    global check), when the site is not armed, or when its rule does not
    fire this evaluation.  Fired ``error``/``crash``/``delay`` kinds are
    performed here; ``drop``/``truncate``/``torn`` actions are returned
    for the call site to interpret.
    """
    if _PLAN is None:
        return None
    action = _PLAN.evaluate(site)
    if action is None:
        return None
    if action.kind == "error":
        raise InjectedFault(action.errno, site)
    if action.kind == "crash":
        _crash(action)
    if action.kind == "delay":
        time.sleep(action.ms / 1000.0)
        return None
    return action


def install_faults(spec: Optional[str], seed: int = 0) -> Optional[FaultPlan]:
    """Install ``spec`` as the process-wide fault plan (``None`` clears).

    Returns the installed plan.  Installing replaces any previous plan;
    the per-site schedules restart from evaluation zero.
    """
    global _PLAN
    if spec is None or not spec.strip():
        _PLAN = None
        return None
    _PLAN = parse_faults(spec, seed=seed)
    return _PLAN


def install_faults_from_env(environ=None) -> Optional[FaultPlan]:
    """Install the plan named by ``REPRO_FAULTS``/``REPRO_FAULTS_SEED``.

    Called by every CLI entry point (``run``/``sweep``/``serve``/
    ``worker``) so subprocesses inherit a schedule through the
    environment.  A malformed spec raises :class:`FaultError` rather than
    arming nothing.
    """
    env = os.environ if environ is None else environ
    spec = env.get(FAULTS_ENV_VAR)
    if not spec:
        return None
    try:
        seed = int(env.get(FAULTS_SEED_ENV_VAR, "0"))
    except ValueError:
        raise FaultError(
            f"{FAULTS_SEED_ENV_VAR} must be an integer, got "
            f"{env.get(FAULTS_SEED_ENV_VAR)!r}") from None
    return install_faults(spec, seed=seed)


def uninstall_faults() -> None:
    """Clear the installed plan; every failpoint goes inert again."""
    global _PLAN
    _PLAN = None


def faults_active() -> bool:
    """Whether a fault plan is currently installed."""
    return _PLAN is not None


def active_spec() -> Optional[str]:
    """The source spec string of the installed plan, if any."""
    return _PLAN.source if _PLAN is not None else None


def fault_stats() -> Dict[str, Dict[str, object]]:
    """Per-site counters of the installed plan (empty when inert)."""
    return _PLAN.stats() if _PLAN is not None else {}
