"""Execution-core selection.

The engine ships three execution cores that produce bit-identical results
per seed:

* ``"batched"`` (default) — :class:`~repro.runtime.batched.BatchedExecutor`
  replaying the compiler's array-backed gate streams for whole seed batches,
* ``"vector"`` — :class:`~repro.runtime.vectorized.VectorizedExecutor`
  simulating the whole seed batch per gate-stream pass with 2-D numpy
  state (one row per seed), the fastest core on large batches,
* ``"legacy"`` — the original per-gate
  :class:`~repro.runtime.executor.DesignExecutor`, kept as the reference
  implementation.

The active core is chosen per process through the ``REPRO_EXEC`` environment
variable, so any entry point (tests, benchmarks, the CLI, worker processes)
can be flipped to another core without code changes::

    REPRO_EXEC=legacy python -m repro run --benchmark TLIM-32
    REPRO_EXEC=vector python -m repro run --benchmark TLIM-32 --runs 200
"""

from __future__ import annotations

import os
from typing import Optional

from repro.exceptions import ConfigurationError

__all__ = ["BATCHED", "LEGACY", "VECTOR", "EXEC_ENV_VAR", "execution_mode"]

BATCHED = "batched"
LEGACY = "legacy"
VECTOR = "vector"
EXEC_ENV_VAR = "REPRO_EXEC"

_MODES = (BATCHED, LEGACY, VECTOR)


def execution_mode(override: Optional[str] = None) -> str:
    """Resolve the active execution core.

    ``override`` (when given) wins over the ``REPRO_EXEC`` environment
    variable; an unset environment defaults to the batched core.

    Example
    -------
    >>> from repro.runtime.execmode import execution_mode
    >>> execution_mode("legacy")
    'legacy'
    """
    mode = override if override is not None else os.environ.get(EXEC_ENV_VAR)
    if mode is None or mode == "":
        return BATCHED
    mode = mode.lower()
    if mode not in _MODES:
        raise ConfigurationError(
            f"unknown execution mode {mode!r} (from "
            f"{'override' if override is not None else EXEC_ENV_VAR}); "
            f"available: {', '.join(_MODES)}"
        )
    return mode
