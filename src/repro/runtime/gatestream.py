"""Array-backed gate streams: the lowered IR of the execute stage.

Re-walking :class:`~repro.circuits.gate.Gate` objects on every run pays for
attribute lookups, ``GateSpec`` registry hits, and latency-table dispatch per
gate × per seed.  All of that is deterministic per compiled cell, so the
compiler lowers the distributed program *once* into a :class:`GateStream` —
flat numpy arrays of opcodes, qubit indices, durations, remote-pair ids, and
segment ids — which the batched executor replays for any number of seeds
without ever touching a ``Gate`` again.

Adaptive designs additionally pre-lower every ASAP/ALAP/original variant of
every circuit segment (:class:`SegmentStreams`), so the run-time variant
selection swaps between pre-lowered arrays instead of re-interpreting the
chosen :class:`~repro.circuits.circuit.QuantumCircuit`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.hardware.architecture import DQCArchitecture
from repro.partitioning.assigner import DistributedProgram
from repro.runtime.designs import DesignSpec
from repro.scheduling.lookup import ScheduleLookupTable
from repro.scheduling.variants import SchedulingVariant
from repro.exceptions import RuntimeSimulationError

__all__ = [
    "OP_LOCAL_1Q",
    "OP_LOCAL_2Q",
    "OP_REMOTE",
    "GateStream",
    "SegmentStreams",
    "CompiledStreams",
    "lower_circuit",
    "lower_cell",
    "segment_node_pairs",
]

#: Opcodes of the lowered gate stream.
OP_LOCAL_1Q = 0
OP_LOCAL_2Q = 1
OP_REMOTE = 2

NodePair = Tuple[int, int]


@dataclass(frozen=True, eq=False)
class GateStream:
    """One circuit lowered to flat, immutable numpy arrays.

    ``opcodes[i]`` selects the dispatch path of gate ``i``; ``qubit_a`` /
    ``qubit_b`` are program-qubit indices (``qubit_b == -1`` for single-qubit
    gates); ``durations`` is the pre-resolved latency (for remote gates the
    teleportation latency); ``pair_ids`` indexes the cell-global remote
    node-pair list (``-1`` for local gates); ``segment_ids`` carries the
    adaptive segment of every gate (``-1`` outside adaptive designs).
    """

    opcodes: np.ndarray
    qubit_a: np.ndarray
    qubit_b: np.ndarray
    durations: np.ndarray
    pair_ids: np.ndarray
    segment_ids: np.ndarray
    num_qubits: int

    @property
    def num_gates(self) -> int:
        return int(self.opcodes.shape[0])

    def columns(self) -> Tuple[list, list, list, list, list]:
        """The stream as plain Python lists (cached).

        The replay loop indexes per gate; list indexing is markedly faster
        than numpy scalar indexing there, so the conversion is done once per
        stream and memoised on the instance.
        """
        cached = self.__dict__.get("_columns")
        if cached is None:
            cached = (
                self.opcodes.tolist(),
                self.qubit_a.tolist(),
                self.qubit_b.tolist(),
                self.durations.tolist(),
                self.pair_ids.tolist(),
            )
            object.__setattr__(self, "_columns", cached)
        return cached

    def rows(self) -> list:
        """``(opcode, qubit_a, qubit_b, duration, pair_id)`` per gate (cached).

        Tuple unpacking in the replay loop's ``for`` header beats five
        indexed list lookups per gate; built once per stream.
        """
        cached = self.__dict__.get("_rows")
        if cached is None:
            cached = list(zip(*self.columns()))
            object.__setattr__(self, "_rows", cached)
        return cached

    def __getstate__(self) -> dict:
        # The memoised list/tuple expansions roughly double the pickled
        # size of a compiled cell; workers rebuild them on first replay.
        state = dict(self.__dict__)
        state.pop("_columns", None)
        state.pop("_rows", None)
        return state


@dataclass(frozen=True, eq=False)
class SegmentStreams:
    """Pre-lowered variants and decision metadata of one adaptive segment."""

    index: int
    qubits: Tuple[int, ...]
    node_pairs: Tuple[NodePair, ...]
    num_remote: int
    variants: Dict[str, GateStream]


@dataclass(frozen=True, eq=False)
class CompiledStreams:
    """Everything the batched executor replays for one compiled cell.

    ``flat`` is the program in partitioner order (the stream non-adaptive
    designs replay directly); ``segments`` holds the per-segment variant
    streams of adaptive designs; ``pair_list`` is the cell-global remote
    node-pair table indexed by every stream's ``pair_ids``.  The static
    gate counts of the fidelity model are pre-tallied so no run ever walks
    the circuit again.
    """

    flat: GateStream
    pair_list: Tuple[NodePair, ...]
    remote_latency: float
    num_single: int
    num_local_two: int
    num_two_total: int
    num_measure: int
    segments: Optional[Tuple[SegmentStreams, ...]] = None


def _gate_counts(circuit: QuantumCircuit) -> Tuple[int, int, int, int]:
    """(single, local-2q, total-2q, measurements) of a remote-labelled circuit."""
    single = local_two = total_two = measure = 0
    for gate in circuit.gates:
        if gate.is_measurement:
            measure += 1
        elif gate.is_single_qubit:
            single += 1
        elif gate.is_two_qubit:
            total_two += 1
            if not gate.is_remote:
                local_two += 1
    return single, local_two, total_two, measure


def lower_circuit(
    circuit: QuantumCircuit,
    program: DistributedProgram,
    architecture: DQCArchitecture,
    pair_index: Dict[NodePair, int],
    treat_remote_as_local: bool = False,
    segment_ids: Optional[Sequence[int]] = None,
) -> GateStream:
    """Lower one (remote-labelled) circuit to a :class:`GateStream`.

    ``pair_index`` maps normalised remote node pairs to their cell-global
    pair id.  With ``treat_remote_as_local`` (the ideal design) remote
    labels are ignored and every gate gets its local latency.
    """
    times = architecture.gate_times
    remote_latency = times.remote_gate_latency()
    n = circuit.num_gates
    opcodes = np.zeros(n, dtype=np.int8)
    qubit_a = np.zeros(n, dtype=np.int32)
    qubit_b = np.full(n, -1, dtype=np.int32)
    durations = np.zeros(n, dtype=np.float64)
    pair_ids = np.full(n, -1, dtype=np.int32)
    segments = (
        np.asarray(segment_ids, dtype=np.int32) if segment_ids is not None
        else np.full(n, -1, dtype=np.int32)
    )
    if segments.shape[0] != n:
        raise RuntimeSimulationError(
            f"segment-id array covers {segments.shape[0]} gates, "
            f"circuit has {n}"
        )

    for index, gate in enumerate(circuit.gates):
        qubits = gate.qubits
        qubit_a[index] = qubits[0]
        if gate.is_remote and not treat_remote_as_local:
            node_a = program.node_of(qubits[0])
            node_b = program.node_of(qubits[1])
            if node_a == node_b:
                raise RuntimeSimulationError(
                    f"gate {index} is labelled remote but both operands are "
                    f"on node {node_a}"
                )
            pair = (node_a, node_b) if node_a < node_b else (node_b, node_a)
            opcodes[index] = OP_REMOTE
            qubit_b[index] = qubits[1]
            durations[index] = remote_latency
            pair_ids[index] = pair_index[pair]
        elif len(qubits) == 2:
            opcodes[index] = OP_LOCAL_2Q
            qubit_b[index] = qubits[1]
            durations[index] = times.duration_of(gate.name)
        else:
            opcodes[index] = OP_LOCAL_1Q
            durations[index] = times.duration_of(gate.name)

    return GateStream(
        opcodes=opcodes,
        qubit_a=qubit_a,
        qubit_b=qubit_b,
        durations=durations,
        pair_ids=pair_ids,
        segment_ids=segments,
        num_qubits=circuit.num_qubits,
    )


def segment_node_pairs(circuit: QuantumCircuit,
                       program: DistributedProgram) -> Tuple[NodePair, ...]:
    """Sorted remote node pairs of a (segment) circuit.

    Shared by the legacy executor's adaptive decision rule and the
    compile-time segment lowering, so both cores sum buffered-EPR counts
    over exactly the same pairs.
    """
    pairs = set()
    for gate in circuit.gates:
        if gate.is_remote:
            node_a = program.node_of(gate.qubits[0])
            node_b = program.node_of(gate.qubits[1])
            pairs.add((min(node_a, node_b), max(node_a, node_b)))
    return tuple(sorted(pairs))


def lower_cell(
    program: DistributedProgram,
    architecture: DQCArchitecture,
    design: DesignSpec,
    lookup: Optional[ScheduleLookupTable] = None,
) -> CompiledStreams:
    """Lower a compiled cell's program (and segment variants) to streams."""
    circuit = program.circuit
    pair_list = tuple(sorted(set(program.remote_pairs())))
    pair_index = {pair: i for i, pair in enumerate(pair_list)}
    single, local_two, total_two, measure = _gate_counts(circuit)

    segment_ids: Optional[List[int]] = None
    segment_streams: Optional[Tuple[SegmentStreams, ...]] = None
    if design.adaptive_scheduling and not design.ideal:
        if lookup is None:
            raise RuntimeSimulationError(
                "adaptive designs need a pre-built ScheduleLookupTable to "
                "lower segment variant streams"
            )
        segment_ids = []
        lowered_segments = []
        for segment_index in range(lookup.num_segments):
            variants = lookup.variants[segment_index]
            segment = variants.segment
            segment_ids.extend([segment_index] * segment.num_gates)
            lowered_segments.append(SegmentStreams(
                index=segment_index,
                qubits=tuple(segment.qubits_used()),
                node_pairs=segment_node_pairs(segment.circuit, program),
                num_remote=segment.num_remote,
                variants={
                    name: lower_circuit(
                        variants.get(name), program, architecture, pair_index,
                    )
                    for name in SchedulingVariant.ALL
                },
            ))
        segment_streams = tuple(lowered_segments)
        if len(segment_ids) != circuit.num_gates:
            # Segments must tile the circuit exactly or the flat stream's
            # segment-id column would silently misalign.
            raise RuntimeSimulationError(
                f"lookup segments cover {len(segment_ids)} gates, "
                f"program has {circuit.num_gates}"
            )

    flat = lower_circuit(
        circuit, program, architecture, pair_index,
        treat_remote_as_local=design.ideal,
        segment_ids=segment_ids,
    )
    return CompiledStreams(
        flat=flat,
        pair_list=pair_list,
        remote_latency=architecture.gate_times.remote_gate_latency(),
        num_single=single,
        num_local_two=local_two,
        num_two_total=total_two,
        num_measure=measure,
        segments=segment_streams,
    )
