"""Execution metrics and results.

:class:`ExecutionResult` collects everything the evaluation needs from one
simulated run: the circuit depth (makespan in local-CNOT units), the
estimated output fidelity with its multiplicative breakdown, and the
entanglement-supply statistics (generated / consumed / wasted pairs, waiting
times) that explain *why* one design beats another.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.noise.fidelity import FidelityBreakdown

__all__ = ["RemoteGateRecord", "ExecutionResult"]


@dataclass
class RemoteGateRecord:
    """Bookkeeping for one executed remote gate."""

    gate_index: int
    ready_time: float
    start_time: float
    finish_time: float
    link_created_time: float
    link_fidelity: float

    @property
    def wait_time(self) -> float:
        """Time the gate waited for entanglement after becoming ready."""
        return max(0.0, self.start_time - self.ready_time)

    @property
    def link_age(self) -> float:
        """Age of the consumed link at the start of the teleportation."""
        return max(0.0, self.start_time - self.link_created_time)


@dataclass
class ExecutionResult:
    """Outcome of one simulated execution of a distributed program."""

    design: str
    benchmark: str
    seed: int
    makespan: float
    fidelity: float
    fidelity_breakdown: FidelityBreakdown
    num_single_qubit: int
    num_local_two_qubit: int
    num_remote: int
    num_measurements: int
    qubit_idle_total: float
    remote_records: List[RemoteGateRecord] = field(default_factory=list)
    epr_statistics: Dict[str, float] = field(default_factory=dict)
    variant_histogram: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def depth(self) -> float:
        """Circuit depth in local-CNOT units (alias for the makespan)."""
        return self.makespan

    def depth_relative_to(self, ideal_depth: float) -> float:
        """Depth normalised by an ideal (monolithic) execution depth."""
        if ideal_depth <= 0:
            return float("inf")
        return self.makespan / ideal_depth

    def fidelity_relative_to(self, ideal_fidelity: float) -> float:
        """Fidelity normalised by the ideal execution fidelity."""
        if ideal_fidelity <= 0:
            return 0.0
        return self.fidelity / ideal_fidelity

    # ------------------------------------------------------------------
    def mean_remote_wait(self) -> float:
        """Mean entanglement waiting time per remote gate."""
        if not self.remote_records:
            return 0.0
        return sum(r.wait_time for r in self.remote_records) / len(self.remote_records)

    def mean_link_age(self) -> float:
        """Mean consumed-link age across remote gates."""
        if not self.remote_records:
            return 0.0
        return sum(r.link_age for r in self.remote_records) / len(self.remote_records)

    def mean_link_fidelity(self) -> float:
        """Mean consumed-link fidelity across remote gates."""
        if not self.remote_records:
            return 0.0
        return sum(r.link_fidelity for r in self.remote_records) / len(
            self.remote_records
        )

    def epr_waste_fraction(self) -> float:
        """Fraction of generated EPR pairs that were never consumed."""
        generated = self.epr_statistics.get("generated", 0)
        wasted = self.epr_statistics.get("wasted", 0)
        if generated <= 0:
            return 0.0
        return wasted / generated

    def summary(self) -> Dict[str, float]:
        """Flat summary used by reports and tests."""
        return {
            "design": self.design,
            "benchmark": self.benchmark,
            "depth": self.makespan,
            "fidelity": self.fidelity,
            "remote_gates": self.num_remote,
            "mean_remote_wait": self.mean_remote_wait(),
            "mean_link_fidelity": self.mean_link_fidelity(),
            "epr_generated": self.epr_statistics.get("generated", 0),
            "epr_wasted": self.epr_statistics.get("wasted", 0),
        }
