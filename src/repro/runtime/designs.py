"""The six architecture designs compared in the paper's evaluation.

Each design is a configuration of the same executor:

========== ======== ============ ========== ========= =====================
name       buffers  attempt mode adaptive   pre-init  notes
========== ======== ============ ========== ========= =====================
original   no       on-demand    no         no        EPR pairs cannot be
                                                       stored; remote gates
                                                       wait for generation
sync_buf   yes      synchronous  no         no        bursts at multiples
                                                       of T_EG
async_buf  yes      asynchronous no         no        staggered sub-groups
adapt_buf  yes      asynchronous yes        no        ASAP/ALAP lookup
init_buf   yes      asynchronous yes        yes       buffers pre-filled
ideal      —        —            —          —         monolithic execution,
                                                       no remote gates
========== ======== ============ ========== ========= =====================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.entanglement.attempts import AttemptPolicy
from repro.exceptions import ConfigurationError

__all__ = ["DesignSpec", "DESIGNS", "get_design", "list_designs",
           "register_design"]


@dataclass(frozen=True)
class DesignSpec:
    """Configuration of one architecture design.

    Attributes
    ----------
    name:
        Design name as used in the paper's figures.
    use_buffer:
        Whether successful EPR pairs can be stored in buffer qubits.
    attempt_policy:
        Synchronous or asynchronous entanglement-generation attempts.
    adaptive_scheduling:
        Whether the ASAP/ALAP lookup table drives segment selection.
    prefill_buffers:
        Whether buffers start pre-filled with EPR pairs (``init_buf``).
    ideal:
        Monolithic execution: every gate is local and no entanglement is
        needed (lower bound reference).
    buffer_cutoff:
        Optional storage cutoff for buffered links (ablation knob).
    async_groups:
        Optional override of the number of asynchronous sub-groups.
    """

    name: str
    use_buffer: bool
    attempt_policy: AttemptPolicy
    adaptive_scheduling: bool = False
    prefill_buffers: bool = False
    ideal: bool = False
    buffer_cutoff: Optional[float] = None
    async_groups: Optional[int] = None

    def __post_init__(self) -> None:
        if self.prefill_buffers and not self.use_buffer:
            raise ConfigurationError("cannot pre-fill buffers without buffers")
        if self.ideal and (self.use_buffer or self.adaptive_scheduling):
            raise ConfigurationError("the ideal design uses no DQC machinery")

    def with_overrides(self, **changes) -> "DesignSpec":
        """Return a copy with some fields replaced (ablation studies).

        Example
        -------
        >>> from repro.runtime.designs import get_design
        >>> cutoff = get_design("adapt_buf").with_overrides(
        ...     name="adapt_cutoff", buffer_cutoff=40.0)
        >>> cutoff.buffer_cutoff
        40.0
        """
        return replace(self, **changes)


def _builtin_designs() -> Dict[str, DesignSpec]:
    return {
        "original": DesignSpec(
            name="original",
            use_buffer=False,
            attempt_policy=AttemptPolicy.SYNCHRONOUS,
        ),
        "sync_buf": DesignSpec(
            name="sync_buf",
            use_buffer=True,
            attempt_policy=AttemptPolicy.SYNCHRONOUS,
        ),
        "async_buf": DesignSpec(
            name="async_buf",
            use_buffer=True,
            attempt_policy=AttemptPolicy.ASYNCHRONOUS,
        ),
        "adapt_buf": DesignSpec(
            name="adapt_buf",
            use_buffer=True,
            attempt_policy=AttemptPolicy.ASYNCHRONOUS,
            adaptive_scheduling=True,
        ),
        "init_buf": DesignSpec(
            name="init_buf",
            use_buffer=True,
            attempt_policy=AttemptPolicy.ASYNCHRONOUS,
            adaptive_scheduling=True,
            prefill_buffers=True,
        ),
        "ideal": DesignSpec(
            name="ideal",
            use_buffer=False,
            attempt_policy=AttemptPolicy.SYNCHRONOUS,
            ideal=True,
        ),
    }


DESIGNS: Dict[str, DesignSpec] = _builtin_designs()

#: Evaluation order used in the paper's figures.
DESIGN_ORDER: List[str] = [
    "original", "sync_buf", "async_buf", "adapt_buf", "init_buf", "ideal",
]


def list_designs() -> List[str]:
    """Design names in the paper's figure order.

    Example
    -------
    >>> from repro.runtime.designs import list_designs
    >>> list_designs()[0], list_designs()[-1]
    ('original', 'ideal')
    """
    return list(DESIGN_ORDER)


def get_design(name: str) -> DesignSpec:
    """Look up a design spec by (case-insensitive) name.

    Example
    -------
    >>> from repro.runtime.designs import get_design
    >>> get_design("adapt_buf").adaptive_scheduling
    True
    """
    key = name.lower()
    if key not in DESIGNS:
        raise ConfigurationError(
            f"unknown design {name!r}; available: {', '.join(DESIGN_ORDER)}"
        )
    return DESIGNS[key]


def register_design(spec: DesignSpec, overwrite: bool = False) -> DesignSpec:
    """Register a design spec under its (lower-cased) name.

    The entry-point for third-party architecture variants: once registered,
    the name works everywhere a built-in design does —
    ``Study(designs=[...])``, spec files, and the CLI — and it joins
    :func:`list_designs` after the paper's six.  For one-off ablations,
    passing an explicit :class:`DesignSpec` (e.g. from
    :meth:`DesignSpec.with_overrides`) needs no registration at all.
    Returns the spec for call-site chaining.

    Example
    -------
    ::

        from repro import api

        cutoff = api.get_design("adapt_buf").with_overrides(
            name="adapt_cutoff", buffer_cutoff=40.0)
        api.register_design(cutoff)
        Study(benchmarks="TLIM-32", designs=["adapt_buf", "adapt_cutoff"],
              num_runs=10).run()
    """
    key = spec.name.lower()
    if not key:
        raise ConfigurationError("design spec needs a non-empty name")
    if key in DESIGNS and not overwrite:
        raise ConfigurationError(
            f"design {spec.name!r} is already registered; pass "
            f"overwrite=True to replace it"
        )
    DESIGNS[key] = spec
    if key not in DESIGN_ORDER:
        DESIGN_ORDER.append(key)
    return spec
