"""Minimal discrete-event kernel.

The executor advances a simulation clock and processes timestamped events in
order.  The kernel is deliberately small: a monotonic clock plus a stable
priority queue.  The gate-level executor mostly drives time through qubit
availability, but the event queue is used for background processes (buffer
cutoff expiry, tracing) and is exercised directly by tests and examples.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, List, Optional, Tuple

from repro.exceptions import RuntimeSimulationError

__all__ = ["Event", "EventQueue", "SimulationClock"]


@dataclass(frozen=True)
class Event:
    """A timestamped event with an arbitrary payload."""

    time: float
    kind: str
    payload: Any = None


class SimulationClock:
    """Monotonically non-decreasing simulation clock."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise RuntimeSimulationError("clock cannot start at negative time")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def advance_to(self, time: float) -> float:
        """Move the clock forward to ``time`` (never backwards)."""
        if time < self._now - 1e-9:
            raise RuntimeSimulationError(
                f"clock cannot move backwards ({time} < {self._now})"
            )
        self._now = max(self._now, float(time))
        return self._now

    def advance_by(self, duration: float) -> float:
        """Move the clock forward by ``duration``."""
        if duration < 0:
            raise RuntimeSimulationError("cannot advance by a negative duration")
        self._now += float(duration)
        return self._now


class EventQueue:
    """Stable min-heap of :class:`Event` objects ordered by time.

    Events with equal timestamps are returned in insertion order, which makes
    simulations reproducible.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Event]] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, event: Event) -> None:
        """Insert an event."""
        if event.time < 0:
            raise RuntimeSimulationError("event time must be non-negative")
        heapq.heappush(self._heap, (event.time, next(self._counter), event))

    def schedule(self, time: float, kind: str, payload: Any = None) -> Event:
        """Create and insert an event."""
        event = Event(time=time, kind=kind, payload=payload)
        self.push(event)
        return event

    def peek(self) -> Optional[Event]:
        """Next event without removing it (``None`` when empty)."""
        if not self._heap:
            return None
        return self._heap[0][2]

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise RuntimeSimulationError("cannot pop from an empty event queue")
        return heapq.heappop(self._heap)[2]

    def pop_until(self, time: float) -> Iterator[Event]:
        """Yield and remove all events with timestamp <= ``time``."""
        while self._heap and self._heap[0][0] <= time + 1e-12:
            yield self.pop()

    def is_empty(self) -> bool:
        """Whether the queue holds no events."""
        return not self._heap
