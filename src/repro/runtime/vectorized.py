"""Cross-seed vectorized execution of compiled gate streams.

:class:`VectorizedExecutor` is the third execution core
(``REPRO_EXEC=vector``): where the trajectory-batched
:class:`~repro.runtime.batched.BatchedExecutor` replays a compiled cell's
gate stream once *per seed* in Python, this core replays the stream **once
per batch** and carries the whole seed batch as 2-D numpy state — ``avail``,
``busy``, and ``first_use`` are ``(num_seeds, num_qubits)`` arrays, and
every local gate becomes a handful of column operations whose cost is
independent of the batch size.  Only the remote gates (a small fraction of
typical streams) still loop over seeds, because each seed owns an
independent stochastic entanglement process; those resolve through the
batched queries of
:class:`~repro.runtime.resources.EntanglementDirectoryBatch`.

Results are **bit-identical** per seed to both other cores:

* Each seed's entanglement services are constructed exactly as the scalar
  replay constructs them (same seeds, same lazy order), so they draw the
  same variate streams; per-seed ready times are handed over as plain
  Python floats taken from the numpy columns, whose bit patterns match the
  scalar replay's float arithmetic (IEEE-754 elementwise ``maximum`` / add).
* The idle reduction accumulates per qubit in qubit order (one vectorized
  add over the seed axis per qubit) instead of ``ndarray.sum``, because
  numpy's pairwise summation would reorder the additions and drift from the
  scalar accumulation in the last ulp.
* Adaptive designs evaluate the schedule-lookup decision rule per seed; when
  decisions diverge across the batch, the segment is replayed per variant
  **group** (row-indexed column operations), which degrades to a per-seed
  fallback when every seed chose differently.  Seeds are independent, so
  group order cannot affect any seed's trajectory.

``tests/test_vectorized.py`` pins the equivalence (``to_json`` equality)
against both other cores across every design, topology, and the adaptive
path.
"""

from __future__ import annotations

import gc
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.partitioning.assigner import DistributedProgram
from repro.runtime.batched import BatchedExecutor
from repro.runtime.gatestream import (
    OP_LOCAL_2Q,
    OP_REMOTE,
    CompiledStreams,
    GateStream,
)
from repro.runtime.metrics import ExecutionResult, RemoteGateRecord
from repro.runtime.resources import EntanglementDirectoryBatch
from repro.scheduling.lookup import ScheduleLookupTable
from repro.scheduling.variants import SchedulingVariant

__all__ = ["VectorizedExecutor", "execute_vectorized"]


@contextmanager
def _gc_paused():
    """Disable the cyclic collector for the duration, restoring its state."""
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


class VectorizedExecutor(BatchedExecutor):
    """Replays compiled gate streams for whole seed batches in one pass.

    Construction mirrors :class:`~repro.runtime.batched.BatchedExecutor`
    (it *is* one — the ideal path, lookup building, and capacity checks are
    shared); only the stochastic replay is overridden with the cross-seed
    kernel.  The speed-up over the batched core grows with the batch size:
    local-gate cost is paid once per gate instead of once per gate × seed.
    """

    # ------------------------------------------------------------------
    def run_batch(self, program: DistributedProgram, seeds: Sequence[int],
                  benchmark_name: Optional[str] = None) -> List[ExecutionResult]:
        """Replay the program under every seed; results in seed order."""
        benchmark_name = benchmark_name or program.name
        self._validate_capacity(program)
        seeds = list(seeds)
        if not seeds:
            return []

        if self.design.ideal:
            # Deterministic per cell: one simulation stamped per seed
            # (shared with the batched core).
            streams = self._streams_for(program)
            return self._run_ideal_batch(streams, benchmark_name, seeds)

        lookup = None
        if self.design.adaptive_scheduling:
            lookup = self.lookup if self.lookup is not None else (
                self._build_lookup(program)
            )
        streams = self._streams_for(program, lookup)
        # The whole batch's entanglement directories stay alive for the
        # entire pass — num_seeds times the scalar cores' peak object count
        # — so the cyclic collector's threshold-triggered passes (whose cost
        # scales with live objects) would fire throughout the kernel.
        # Nothing in the pass drops reference cycles; pause the collector.
        with _gc_paused():
            return self._run_vector_batch(program, streams, lookup,
                                          benchmark_name, seeds)

    # ------------------------------------------------------------------
    # the cross-seed kernel
    # ------------------------------------------------------------------
    def _run_vector_batch(
        self, program: DistributedProgram, streams: CompiledStreams,
        lookup: Optional[ScheduleLookupTable], benchmark_name: str,
        seeds: List[int],
    ) -> List[ExecutionResult]:
        design = self.design
        num_seeds = len(seeds)
        num_qubits = program.num_qubits
        remote_latency = streams.remote_latency

        directories = EntanglementDirectoryBatch(
            self.architecture,
            seeds,
            streams.pair_list,
            attempt_policy=design.attempt_policy,
            use_buffer=design.use_buffer,
            prefill=design.prefill_buffers,
            buffer_cutoff=design.buffer_cutoff,
            async_groups=design.async_groups,
        )

        avail = np.zeros((num_seeds, num_qubits))
        busy = np.zeros((num_seeds, num_qubits))
        first_use = np.full((num_seeds, num_qubits), np.nan)
        # Per-qubit flag: once every seed row has used a qubit, first-use
        # stamping — the only reason the 1q fast path would need the
        # pre-gate start values — can be skipped for the rest of the run.
        # Only full-batch passes promote the flag; group passes leave it
        # conservative (False just means the stamp runs and finds no NaN).
        all_used = [False] * num_qubits
        records: List[List[RemoteGateRecord]] = [[] for _ in range(num_seeds)]
        gate_counter = 0
        all_rows = list(range(num_seeds))

        def play(stream: GateStream, state_avail: np.ndarray,
                 state_busy: np.ndarray, state_first: np.ndarray,
                 rows: List[int], full_batch: bool) -> None:
            # ``state_*`` are the arrays this pass advances: the real batch
            # state for a full-batch pass, or compact per-group copies for a
            # divergent adaptive segment (column ops on contiguous rows beat
            # per-gate fancy indexing).  ``rows`` maps pass rows to global
            # seed rows for records and entanglement services.
            nonlocal gate_counter
            for op, a, b, duration, pair_id in stream.rows():
                if op == OP_REMOTE:
                    ready = np.maximum(state_avail[:, a], state_avail[:, b])
                    # Hand the scalar entanglement processes plain Python
                    # floats (bit-equal to the column values) so each seed
                    # consumes exactly the variate stream the scalar replay
                    # draws.
                    ready_list = ready.tolist()
                    starts, created, fidelities = directories.acquire_batch(
                        pair_id, ready_list,
                        rows=None if full_batch else rows)
                    for offset, row in enumerate(rows):
                        start_time = starts[offset]
                        records[row].append(RemoteGateRecord(
                            gate_counter, ready_list[offset], start_time,
                            start_time + remote_latency, created[offset],
                            fidelities[offset],
                        ))
                    start = np.asarray(starts, dtype=np.float64)
                    finish = start + remote_latency
                    state_avail[:, a] = finish
                    state_avail[:, b] = finish
                    state_busy[:, a] += remote_latency
                    state_busy[:, b] += remote_latency
                    for qubit in (a, b):
                        if not all_used[qubit]:
                            column = state_first[:, qubit]
                            mask = np.isnan(column)
                            if mask.any():
                                column[mask] = start[mask]
                            if full_batch:
                                all_used[qubit] = True
                elif op == OP_LOCAL_2Q:
                    start = np.maximum(state_avail[:, a], state_avail[:, b])
                    finish = start + duration
                    state_avail[:, a] = finish
                    state_avail[:, b] = finish
                    state_busy[:, a] += duration
                    state_busy[:, b] += duration
                    for qubit in (a, b):
                        if not all_used[qubit]:
                            column = state_first[:, qubit]
                            mask = np.isnan(column)
                            if mask.any():
                                column[mask] = start[mask]
                            if full_batch:
                                all_used[qubit] = True
                else:  # OP_LOCAL_1Q
                    if all_used[a]:
                        state_avail[:, a] += duration
                    else:
                        start = state_avail[:, a].copy()
                        state_avail[:, a] = start + duration
                        column = state_first[:, a]
                        mask = np.isnan(column)
                        if mask.any():
                            column[mask] = start[mask]
                        if full_batch:
                            all_used[a] = True
                    state_busy[:, a] += duration
                gate_counter += 1

        histograms: Optional[List[Dict[str, int]]] = None
        if lookup is not None:
            # The shared lookup's decision log is scalar-replay state; keep
            # it clean and track per-seed decisions locally instead.
            lookup.reset_decisions()
            histograms = [
                {name: 0 for name in SchedulingVariant.ALL}
                for _ in range(num_seeds)
            ]
            policy = lookup.policy
            for segment in streams.segments:
                if segment.qubits:
                    decision = avail[:, list(segment.qubits)].min(axis=1)
                else:
                    decision = avail.max(axis=1)
                if segment.node_pairs:
                    counts = directories.count_available_batch(
                        segment.node_pairs, decision.tolist())
                    threshold = policy.effective_threshold(segment.num_remote)
                    chosen = [policy.choose(count, threshold)
                              for count in counts]
                    for row, name in enumerate(chosen):
                        histograms[row][name] += 1
                else:
                    chosen = [SchedulingVariant.ORIGINAL] * num_seeds
                base = gate_counter
                first = chosen[0]
                if all(name == first for name in chosen):
                    play(segment.variants[first], avail, busy, first_use,
                         all_rows, True)
                else:
                    # Decisions diverge across the batch: replay each chosen
                    # variant for just its seed rows, on compact row copies
                    # written back afterwards.  Every variant is a
                    # reordering of the same segment, so all groups advance
                    # the gate counter identically from the segment base.
                    for name in SchedulingVariant.ALL:
                        row_list = [row for row, choice in enumerate(chosen)
                                    if choice == name]
                        if not row_list:
                            continue
                        gate_counter = base
                        index = np.asarray(row_list, dtype=np.intp)
                        group_avail = avail[index]
                        group_busy = busy[index]
                        group_first = first_use[index]
                        play(segment.variants[name], group_avail, group_busy,
                             group_first, row_list, False)
                        avail[index] = group_avail
                        busy[index] = group_busy
                        first_use[index] = group_first
        else:
            play(streams.flat, avail, busy, first_use, all_rows, True)

        makespan = avail.max(axis=1)
        makespans = makespan.tolist()
        directories.finalize(makespans)

        # Idle reduction: one vectorized add over the seed axis per qubit,
        # in qubit order — sequential like the scalar loop, never
        # ndarray.sum (pairwise summation would reorder the additions).
        # Never-used qubits are NaN in first_use; their comparisons are
        # False (contributing 0, like the scalar `continue`) but would
        # raise invalid-value FP warnings — deliberate, so silenced here
        # rather than at the caller.
        idle_total = np.zeros(num_seeds)
        with np.errstate(invalid="ignore"):
            for qubit in range(num_qubits):
                span = makespan - first_use[:, qubit]  # NaN where never used
                span = np.where(span < 0.0, 0.0, span)
                idle = span - busy[:, qubit]
                idle_total += np.where(idle > 0.0, idle, 0.0)
        idle_list = idle_total.tolist()

        epr_statistics = directories.aggregate_statistics()
        results: List[ExecutionResult] = []
        for row, seed in enumerate(seeds):
            seed_records = records[row]
            breakdown = self.fidelity_model.estimate(
                num_single_qubit=streams.num_single,
                num_local_two_qubit=streams.num_local_two,
                remote_link_fidelities=[
                    record.link_fidelity for record in seed_records
                ],
                makespan=makespans[row],
                num_measurements=streams.num_measure,
                qubit_idle_total=idle_list[row],
            )
            results.append(ExecutionResult(
                design=design.name,
                benchmark=benchmark_name,
                seed=seed,
                makespan=makespans[row],
                fidelity=breakdown.total,
                fidelity_breakdown=breakdown,
                num_single_qubit=streams.num_single,
                num_local_two_qubit=streams.num_local_two,
                num_remote=len(seed_records),
                num_measurements=streams.num_measure,
                qubit_idle_total=idle_list[row],
                remote_records=seed_records,
                epr_statistics=epr_statistics[row],
                variant_histogram=(histograms[row] if histograms is not None
                                   else {}),
            ))
        return results


def execute_vectorized(
    program: DistributedProgram,
    architecture,
    design,
    seeds: Sequence[int],
    **kwargs,
) -> List[ExecutionResult]:
    """Convenience wrapper: build a vectorized executor and replay one batch."""
    executor = VectorizedExecutor(architecture, design, **kwargs)
    return executor.run_batch(program, seeds)
