"""Execution traces.

A trace records, for every executed gate, when it started and finished and
which resources it used.  Traces are optional (they cost memory on large
circuits) and are used by tests, examples, and the Gantt-style text renderer
below to inspect what a design actually did with its entanglement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["GateTraceEntry", "ExecutionTrace"]


@dataclass(frozen=True)
class GateTraceEntry:
    """Schedule record of a single executed gate."""

    gate_index: int
    name: str
    qubits: Tuple[int, ...]
    start: float
    finish: float
    is_remote: bool = False
    link_fidelity: Optional[float] = None

    @property
    def duration(self) -> float:
        """Gate duration in depth units."""
        return self.finish - self.start


@dataclass
class ExecutionTrace:
    """Ordered collection of gate trace entries for one run."""

    entries: List[GateTraceEntry] = field(default_factory=list)

    def record(self, entry: GateTraceEntry) -> None:
        """Append one entry."""
        self.entries.append(entry)

    def __len__(self) -> int:
        return len(self.entries)

    def remote_entries(self) -> List[GateTraceEntry]:
        """Only the remote-gate entries."""
        return [entry for entry in self.entries if entry.is_remote]

    def busy_intervals(self, qubit: int) -> List[Tuple[float, float]]:
        """(start, finish) intervals during which ``qubit`` executed gates."""
        return [
            (entry.start, entry.finish)
            for entry in self.entries
            if qubit in entry.qubits
        ]

    def is_consistent(self) -> bool:
        """No two gates overlap on the same qubit (schedule legality)."""
        per_qubit: Dict[int, List[Tuple[float, float]]] = {}
        for entry in self.entries:
            for qubit in entry.qubits:
                per_qubit.setdefault(qubit, []).append((entry.start, entry.finish))
        for intervals in per_qubit.values():
            intervals.sort()
            for (start_a, finish_a), (start_b, _) in zip(intervals, intervals[1:]):
                if start_b < finish_a - 1e-9:
                    return False
        return True

    def makespan(self) -> float:
        """Latest finish time across all entries."""
        return max((entry.finish for entry in self.entries), default=0.0)

    def render(self, max_entries: int = 40) -> str:
        """Human-readable listing of the first ``max_entries`` entries."""
        lines = ["idx  name      qubits        start    finish   remote"]
        for entry in self.entries[:max_entries]:
            lines.append(
                f"{entry.gate_index:<4d} {entry.name:<9s} "
                f"{str(entry.qubits):<13s} {entry.start:8.2f} {entry.finish:8.2f}"
                f"   {'yes' if entry.is_remote else 'no'}"
            )
        if len(self.entries) > max_entries:
            lines.append(f"... ({len(self.entries) - max_entries} more)")
        return "\n".join(lines)
