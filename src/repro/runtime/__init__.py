"""Discrete-event runtime: event kernel, resources, designs, executors.

Three execution cores share the same stochastic processes and produce
bit-identical results per seed: the legacy per-gate
:class:`~repro.runtime.executor.DesignExecutor` (the reference, selectable
via ``REPRO_EXEC=legacy``), the trajectory-batched
:class:`~repro.runtime.batched.BatchedExecutor` replaying pre-lowered
:mod:`~repro.runtime.gatestream` arrays per seed (the default), and the
cross-seed :class:`~repro.runtime.vectorized.VectorizedExecutor`
(``REPRO_EXEC=vector``) simulating the whole seed batch per gate-stream
pass on 2-D numpy state.
"""

from repro.runtime.batched import BatchedExecutor, execute_batch
from repro.runtime.designs import DESIGNS, DesignSpec, get_design, list_designs
from repro.runtime.events import Event, EventQueue, SimulationClock
from repro.runtime.execmode import (
    BATCHED,
    EXEC_ENV_VAR,
    LEGACY,
    VECTOR,
    execution_mode,
)
from repro.runtime.executor import DesignExecutor, execute_design
from repro.runtime.gatestream import CompiledStreams, GateStream, lower_cell
from repro.runtime.metrics import ExecutionResult, RemoteGateRecord
from repro.runtime.resources import (
    DataQubitTracker,
    EntanglementDirectory,
    EntanglementDirectoryBatch,
)
from repro.runtime.trace import ExecutionTrace, GateTraceEntry
from repro.runtime.vectorized import VectorizedExecutor, execute_vectorized

__all__ = [
    "Event",
    "EventQueue",
    "SimulationClock",
    "DataQubitTracker",
    "EntanglementDirectory",
    "EntanglementDirectoryBatch",
    "DesignSpec",
    "DESIGNS",
    "get_design",
    "list_designs",
    "DesignExecutor",
    "execute_design",
    "BatchedExecutor",
    "execute_batch",
    "VectorizedExecutor",
    "execute_vectorized",
    "CompiledStreams",
    "GateStream",
    "lower_cell",
    "BATCHED",
    "LEGACY",
    "VECTOR",
    "EXEC_ENV_VAR",
    "execution_mode",
    "ExecutionResult",
    "RemoteGateRecord",
    "ExecutionTrace",
    "GateTraceEntry",
]
