"""Discrete-event runtime: event kernel, resources, designs, executor."""

from repro.runtime.designs import DESIGNS, DesignSpec, get_design, list_designs
from repro.runtime.events import Event, EventQueue, SimulationClock
from repro.runtime.executor import DesignExecutor, execute_design
from repro.runtime.metrics import ExecutionResult, RemoteGateRecord
from repro.runtime.resources import DataQubitTracker, EntanglementDirectory
from repro.runtime.trace import ExecutionTrace, GateTraceEntry

__all__ = [
    "Event",
    "EventQueue",
    "SimulationClock",
    "DataQubitTracker",
    "EntanglementDirectory",
    "DesignSpec",
    "DESIGNS",
    "get_design",
    "list_designs",
    "DesignExecutor",
    "execute_design",
    "ExecutionResult",
    "RemoteGateRecord",
    "ExecutionTrace",
    "GateTraceEntry",
]
