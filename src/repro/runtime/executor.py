"""Discrete-event execution of a distributed program on a DQC architecture.

:class:`DesignExecutor` simulates one run of a partitioned circuit under one
of the six designs of the paper.  Gates are dispatched in (possibly
adaptively re-ordered) program order; each gate starts as soon as its data
qubits are free, and remote gates additionally wait for an EPR pair from the
entanglement service of their node pair.  The executor produces an
:class:`~repro.runtime.metrics.ExecutionResult` containing the circuit depth,
the estimated output fidelity, and the entanglement statistics.

This is the **reference implementation** of the execution semantics,
selected process-wide with ``REPRO_EXEC=legacy``.  The default execute path
is the trajectory-batched :class:`~repro.runtime.batched.BatchedExecutor`,
which replays pre-lowered gate streams and must stay bit-identical to this
executor per seed (pinned by ``tests/test_batched.py``); execution traces
(``collect_trace=True``) remain a feature of this executor only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gate import Gate
from repro.hardware.architecture import DQCArchitecture
from repro.noise.fidelity import FidelityModel
from repro.partitioning.assigner import DistributedProgram
from repro.runtime.designs import DesignSpec, get_design
from repro.runtime.metrics import ExecutionResult, RemoteGateRecord
from repro.runtime.resources import DataQubitTracker, EntanglementDirectory
from repro.runtime.trace import ExecutionTrace, GateTraceEntry
from repro.scheduling.lookup import ScheduleLookupTable, build_lookup_table
from repro.scheduling.policies import AdaptivePolicy
from repro.scheduling.segmentation import default_segment_length
from repro.exceptions import RuntimeSimulationError

__all__ = [
    "DesignExecutor",
    "execute_design",
    "build_program_lookup",
    "resolve_segment_length",
    "validate_program_capacity",
]


def resolve_segment_length(architecture: DQCArchitecture,
                           segment_length: Optional[int] = None) -> int:
    """Segment length ``m``: the override, or the paper's default.

    The default is ``#comm-pairs * psucc`` over the architecture's least
    connected node pair.  Shared by both execution cores so their adaptive
    lookup tables can never diverge.
    """
    if segment_length is not None:
        return segment_length
    pairs = architecture.node_pairs()
    comm_pairs = min(
        (architecture.comm_pairs_between(a, b) for a, b in pairs),
        default=0,
    )
    return default_segment_length(
        comm_pairs, architecture.physics.epr_success_probability
    )


def build_program_lookup(
    architecture: DQCArchitecture,
    program: DistributedProgram,
    segment_length: Optional[int] = None,
    policy: Optional[AdaptivePolicy] = None,
) -> ScheduleLookupTable:
    """Segment a program and pre-compile its schedule lookup table.

    Deterministic per (program, segment length, policy) — the engine's
    compile stage builds it once per cell and replays it across seeds.
    """
    return build_lookup_table(
        program.circuit,
        resolve_segment_length(architecture, segment_length),
        policy=policy,
    )


def validate_program_capacity(architecture: DQCArchitecture,
                              program: DistributedProgram) -> None:
    """Reject programs whose per-node qubit demand exceeds the hardware."""
    if program.num_nodes > architecture.num_nodes:
        raise RuntimeSimulationError(
            f"program uses {program.num_nodes} nodes but the architecture "
            f"has only {architecture.num_nodes}"
        )
    demands = [0] * architecture.num_nodes
    for qubit in range(program.num_qubits):
        demands[program.node_of(qubit)] += 1
    architecture.validate_capacity(demands)


class DesignExecutor:
    """Executes distributed programs under a fixed design configuration.

    Parameters
    ----------
    architecture:
        The hardware model (nodes, Table II parameters).
    design:
        A :class:`~repro.runtime.designs.DesignSpec` or a design name.
    seed:
        Seed of the stochastic entanglement-generation process.
    fidelity_model:
        Optional custom fidelity model; by default one is built from the
        architecture's Table II fidelities and decoherence rate.
    segment_length:
        Remote gates per segment ``m`` for adaptive scheduling; defaults to
        the paper's ``#comm-pairs * psucc``.
    adaptive_policy:
        Thresholds of the adaptive lookup rule.
    lookup:
        Optional pre-built :class:`ScheduleLookupTable` (the compile-once
        artifact of :mod:`repro.engine`); when given, adaptive runs replay
        it instead of re-segmenting the circuit, and its decision log is
        reset at the start of every run.
    collect_trace:
        Whether to record a full per-gate execution trace.
    """

    def __init__(
        self,
        architecture: DQCArchitecture,
        design,
        seed: int = 0,
        fidelity_model: Optional[FidelityModel] = None,
        segment_length: Optional[int] = None,
        adaptive_policy: Optional[AdaptivePolicy] = None,
        lookup: Optional[ScheduleLookupTable] = None,
        collect_trace: bool = False,
    ) -> None:
        self.architecture = architecture
        self.design: DesignSpec = (
            design if isinstance(design, DesignSpec) else get_design(design)
        )
        self.seed = seed
        self.fidelity_model = fidelity_model or FidelityModel(
            fidelities=architecture.fidelities,
            kappa=architecture.decoherence_rate,
        )
        self.segment_length = segment_length
        self.adaptive_policy = adaptive_policy or AdaptivePolicy()
        self.lookup = lookup
        self.collect_trace = collect_trace
        self.last_trace: Optional[ExecutionTrace] = None

    # ------------------------------------------------------------------
    def run(self, program: DistributedProgram,
            benchmark_name: Optional[str] = None) -> ExecutionResult:
        """Simulate one execution and return its metrics."""
        benchmark_name = benchmark_name or program.name
        self._validate_capacity(program)

        if self.design.ideal:
            return self._run_ideal(program, benchmark_name)
        return self._run_distributed(program, benchmark_name)

    # ------------------------------------------------------------------
    # ideal (monolithic) execution
    # ------------------------------------------------------------------
    def _run_ideal(self, program: DistributedProgram,
                   benchmark_name: str) -> ExecutionResult:
        tracker = DataQubitTracker(program.num_qubits)
        trace = ExecutionTrace() if self.collect_trace else None
        times = self.architecture.gate_times

        for index, gate in enumerate(program.circuit.gates):
            duration = times.duration_of(gate.name)
            start = tracker.earliest_start(gate.qubits)
            finish = tracker.occupy(gate.qubits, start, duration)
            if trace is not None:
                trace.record(GateTraceEntry(index, gate.name, gate.qubits,
                                            start, finish, is_remote=False))

        makespan = tracker.makespan
        counts = self._local_counts(program.circuit, treat_remote_as_local=True)
        breakdown = self.fidelity_model.estimate(
            num_single_qubit=counts["single"],
            num_local_two_qubit=counts["two"],
            remote_link_fidelities=[],
            makespan=makespan,
            num_measurements=counts["measure"],
            qubit_idle_total=tracker.total_idle_time(),
        )
        self.last_trace = trace
        return ExecutionResult(
            design=self.design.name,
            benchmark=benchmark_name,
            seed=self.seed,
            makespan=makespan,
            fidelity=breakdown.total,
            fidelity_breakdown=breakdown,
            num_single_qubit=counts["single"],
            num_local_two_qubit=counts["two"],
            num_remote=0,
            num_measurements=counts["measure"],
            qubit_idle_total=tracker.total_idle_time(),
        )

    # ------------------------------------------------------------------
    # distributed execution
    # ------------------------------------------------------------------
    def _run_distributed(self, program: DistributedProgram,
                         benchmark_name: str) -> ExecutionResult:
        tracker = DataQubitTracker(program.num_qubits)
        trace = ExecutionTrace() if self.collect_trace else None
        times = self.architecture.gate_times
        kappa = self.architecture.decoherence_rate
        directory = EntanglementDirectory(
            self.architecture,
            attempt_policy=self.design.attempt_policy,
            use_buffer=self.design.use_buffer,
            prefill=self.design.prefill_buffers,
            buffer_cutoff=self.design.buffer_cutoff,
            seed=self.seed,
            async_groups=self.design.async_groups,
        )

        remote_records: List[RemoteGateRecord] = []
        lookup: Optional[ScheduleLookupTable] = None

        if self.design.adaptive_scheduling:
            lookup = self.lookup if self.lookup is not None else self.build_lookup(program)
            lookup.reset_decisions()
            gate_batches = self._adaptive_batches(program, lookup, directory, tracker)
        else:
            gate_batches = iter([list(program.circuit.gates)])

        gate_counter = 0
        for batch in gate_batches:
            for gate in batch:
                gate_counter += 1
                if gate.is_remote:
                    record = self._execute_remote(
                        gate, gate_counter - 1, program, tracker, directory,
                        times, kappa, trace,
                    )
                    remote_records.append(record)
                else:
                    self._execute_local(gate, gate_counter - 1, tracker, times, trace)

        makespan = tracker.makespan
        directory.finalize(makespan)

        counts = self._local_counts(program.circuit, treat_remote_as_local=False)
        link_fidelities = [record.link_fidelity for record in remote_records]
        breakdown = self.fidelity_model.estimate(
            num_single_qubit=counts["single"],
            num_local_two_qubit=counts["two"],
            remote_link_fidelities=link_fidelities,
            makespan=makespan,
            num_measurements=counts["measure"],
            qubit_idle_total=tracker.total_idle_time(),
        )
        self.last_trace = trace
        return ExecutionResult(
            design=self.design.name,
            benchmark=benchmark_name,
            seed=self.seed,
            makespan=makespan,
            fidelity=breakdown.total,
            fidelity_breakdown=breakdown,
            num_single_qubit=counts["single"],
            num_local_two_qubit=counts["two"],
            num_remote=len(remote_records),
            num_measurements=counts["measure"],
            qubit_idle_total=tracker.total_idle_time(),
            remote_records=remote_records,
            epr_statistics=directory.aggregate_statistics(),
            variant_histogram=lookup.variant_histogram() if lookup else {},
        )

    # ------------------------------------------------------------------
    # gate execution helpers
    # ------------------------------------------------------------------
    def _execute_local(self, gate: Gate, index: int, tracker: DataQubitTracker,
                       times, trace: Optional[ExecutionTrace]) -> float:
        duration = times.duration_of(gate.name)
        start = tracker.earliest_start(gate.qubits)
        finish = tracker.occupy(gate.qubits, start, duration)
        if trace is not None:
            trace.record(GateTraceEntry(index, gate.name, gate.qubits,
                                        start, finish, is_remote=False))
        return finish

    def _execute_remote(self, gate: Gate, index: int,
                        program: DistributedProgram, tracker: DataQubitTracker,
                        directory: EntanglementDirectory, times, kappa: float,
                        trace: Optional[ExecutionTrace]) -> RemoteGateRecord:
        node_a = program.node_of(gate.qubits[0])
        node_b = program.node_of(gate.qubits[1])
        if node_a == node_b:
            raise RuntimeSimulationError(
                f"gate {index} is labelled remote but both operands are on "
                f"node {node_a}"
            )
        ready = tracker.earliest_start(gate.qubits)
        service = directory.service(node_a, node_b)
        start, link = service.acquire(ready)
        duration = times.remote_gate_latency()
        finish = tracker.occupy(gate.qubits, start, duration)
        link_fidelity = link.fidelity_at(start, kappa)
        if trace is not None:
            trace.record(GateTraceEntry(index, gate.name, gate.qubits,
                                        start, finish, is_remote=True,
                                        link_fidelity=link_fidelity))
        return RemoteGateRecord(
            gate_index=index,
            ready_time=ready,
            start_time=start,
            finish_time=finish,
            link_created_time=link.created_time,
            link_fidelity=link_fidelity,
        )

    # ------------------------------------------------------------------
    # adaptive scheduling
    # ------------------------------------------------------------------
    def build_lookup(self, program: DistributedProgram) -> ScheduleLookupTable:
        """Segment ``program`` and pre-compile its schedule lookup table.

        The result is deterministic per (program, segment length, policy),
        which is why the engine's compile stage builds it once per cell and
        replays it across seeds via the ``lookup`` constructor argument.
        """
        return build_program_lookup(self.architecture, program,
                                    segment_length=self.segment_length,
                                    policy=self.adaptive_policy)

    def _adaptive_batches(self, program: DistributedProgram,
                          lookup: ScheduleLookupTable,
                          directory: EntanglementDirectory,
                          tracker: DataQubitTracker):
        """Yield the gate list of every segment, choosing a variant lazily.

        The decision time of segment ``k`` is the earliest time any of its
        qubits becomes free given everything dispatched so far — i.e. the
        first instant the controller could start the segment.  The available
        EPR count ``e`` is summed over the node pairs that the segment's
        remote gates use.
        """
        for segment_index in range(lookup.num_segments):
            segment = lookup.segment(segment_index)
            qubits = segment.qubits_used()
            decision_time = (
                min(tracker.available_time(q) for q in qubits) if qubits else
                tracker.makespan
            )
            pairs = self._segment_node_pairs(segment.circuit, program)
            if pairs:
                available = sum(
                    directory.count_available(a, b, decision_time) for a, b in pairs
                )
                chosen = lookup.select(segment_index, available, decision_time)
            else:
                chosen = segment.circuit
            yield list(chosen.gates)

    @staticmethod
    def _segment_node_pairs(circuit: QuantumCircuit,
                            program: DistributedProgram) -> List[Tuple[int, int]]:
        from repro.runtime.gatestream import segment_node_pairs

        return list(segment_node_pairs(circuit, program))

    # ------------------------------------------------------------------
    # misc helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _local_counts(circuit: QuantumCircuit,
                      treat_remote_as_local: bool) -> Dict[str, int]:
        single = 0
        two = 0
        measure = 0
        for gate in circuit.gates:
            if gate.is_measurement:
                measure += 1
            elif gate.is_single_qubit:
                single += 1
            elif gate.is_two_qubit:
                if gate.is_remote and not treat_remote_as_local:
                    continue
                two += 1
        return {"single": single, "two": two, "measure": measure}

    def _validate_capacity(self, program: DistributedProgram) -> None:
        validate_program_capacity(self.architecture, program)


def execute_design(
    program: DistributedProgram,
    architecture: DQCArchitecture,
    design,
    seed: int = 0,
    **kwargs,
) -> ExecutionResult:
    """Convenience wrapper: build an executor and run one simulation."""
    executor = DesignExecutor(architecture, design, seed=seed, **kwargs)
    return executor.run(program)
