"""Execution-time resource tracking.

Three trackers back the executors:

* :class:`DataQubitTracker` — per-data-qubit availability and busy/idle
  accounting.  Data qubits within a node are fully connected (paper
  evaluation setting), so availability is the only constraint on local gates.
* :class:`EntanglementDirectory` — one
  :class:`~repro.entanglement.service.EntanglementService` per connected node
  pair, created from the architecture and the design configuration.
* :class:`EntanglementDirectoryBatch` — the seed-batch view used by the
  vectorized execution core: one directory per seed, with batched query
  methods (``acquire_batch``, ``count_available_batch``) over per-seed
  times.  Each seed's services draw exactly the variate streams the scalar
  cores draw for that seed, which is what keeps the vector core
  bit-identical to the batched and legacy cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.entanglement.attempts import AttemptPolicy, AttemptSchedule
from repro.entanglement.generator import EntanglementGenerator
from repro.entanglement.service import EntanglementService
from repro.hardware.architecture import DQCArchitecture
from repro.exceptions import RuntimeSimulationError

__all__ = [
    "DataQubitTracker",
    "EntanglementDirectory",
    "EntanglementDirectoryBatch",
]

NodePair = Tuple[int, int]


class DataQubitTracker:
    """Tracks when each data (program) qubit becomes free.

    Qubits are identified by their *program* index (the circuit qubit), not
    by physical location; the mapping to nodes is carried by the
    :class:`~repro.partitioning.assigner.DistributedProgram`.
    """

    def __init__(self, num_qubits: int) -> None:
        if num_qubits < 1:
            raise RuntimeSimulationError("tracker needs at least one qubit")
        self.num_qubits = num_qubits
        self._available = [0.0] * num_qubits
        self._busy = [0.0] * num_qubits
        self._first_use: List[Optional[float]] = [None] * num_qubits
        self._last_release = [0.0] * num_qubits

    # ------------------------------------------------------------------
    def available_time(self, qubit: int) -> float:
        """Earliest time the qubit is free."""
        self._check(qubit)
        return self._available[qubit]

    def earliest_start(self, qubits) -> float:
        """Earliest common start time for a gate on ``qubits``."""
        return max((self.available_time(q) for q in qubits), default=0.0)

    def occupy(self, qubits, start: float, duration: float) -> float:
        """Mark ``qubits`` busy from ``start`` for ``duration``; returns finish."""
        if duration < 0:
            raise RuntimeSimulationError("gate duration must be non-negative")
        for qubit in qubits:
            self._check(qubit)
            if start < self._available[qubit] - 1e-9:
                raise RuntimeSimulationError(
                    f"qubit {qubit} is busy until {self._available[qubit]}, "
                    f"cannot start at {start}"
                )
        finish = start + duration
        for qubit in qubits:
            if self._first_use[qubit] is None:
                self._first_use[qubit] = start
            self._available[qubit] = finish
            self._busy[qubit] += duration
            self._last_release[qubit] = finish
        return finish

    # ------------------------------------------------------------------
    @property
    def makespan(self) -> float:
        """Latest qubit release time (total circuit latency so far)."""
        return max(self._available, default=0.0)

    def busy_time(self, qubit: int) -> float:
        """Total time the qubit spent executing gates."""
        self._check(qubit)
        return self._busy[qubit]

    def idle_time(self, qubit: int, horizon: Optional[float] = None) -> float:
        """Idle time of an *initialised* qubit up to ``horizon``.

        A qubit is considered initialised from its first use; idle time is
        the span from first use to ``horizon`` (default: the makespan) minus
        its busy time.  Unused qubits contribute zero.
        """
        self._check(qubit)
        if self._first_use[qubit] is None:
            return 0.0
        end = self.makespan if horizon is None else horizon
        span = max(0.0, end - self._first_use[qubit])
        return max(0.0, span - self._busy[qubit])

    def total_idle_time(self, horizon: Optional[float] = None) -> float:
        """Sum of idle times over all qubits."""
        return sum(self.idle_time(q, horizon) for q in range(self.num_qubits))

    def utilisation(self) -> float:
        """Mean busy fraction of qubits that were used at least once."""
        makespan = self.makespan
        if makespan <= 0:
            return 0.0
        used = [q for q in range(self.num_qubits) if self._first_use[q] is not None]
        if not used:
            return 0.0
        return sum(self._busy[q] for q in used) / (makespan * len(used))

    def _check(self, qubit: int) -> None:
        if not (0 <= qubit < self.num_qubits):
            raise RuntimeSimulationError(f"qubit index {qubit} out of range")


class EntanglementDirectory:
    """One entanglement service per connected node pair.

    Parameters
    ----------
    architecture:
        The hardware description (node counts, Table II parameters).
    attempt_policy:
        Synchronous or asynchronous attempt phasing.
    use_buffer:
        Whether generated links can be stored (False reproduces ``original``).
    prefill:
        Whether buffers start full (``init_buf``).
    buffer_cutoff:
        Optional storage cutoff for buffered links.
    seed:
        Base seed; every node pair derives an independent sub-seed.
    """

    def __init__(
        self,
        architecture: DQCArchitecture,
        attempt_policy: AttemptPolicy = AttemptPolicy.ASYNCHRONOUS,
        use_buffer: bool = True,
        prefill: bool = False,
        buffer_cutoff: Optional[float] = None,
        seed: int = 0,
        async_groups: Optional[int] = None,
    ) -> None:
        self.architecture = architecture
        self.attempt_policy = attempt_policy
        self.use_buffer = use_buffer
        self.prefill = prefill
        self.buffer_cutoff = buffer_cutoff
        self.seed = seed
        self.async_groups = async_groups
        self._services: Dict[NodePair, EntanglementService] = {}

    # ------------------------------------------------------------------
    def service(self, node_a: int, node_b: int) -> EntanglementService:
        """The service connecting two nodes (created lazily)."""
        pair = (min(node_a, node_b), max(node_a, node_b))
        if pair not in self._services:
            self._services[pair] = self._build_service(pair)
        return self._services[pair]

    def services(self) -> Dict[NodePair, EntanglementService]:
        """All services created so far."""
        return dict(self._services)

    def _build_service(self, pair: NodePair) -> EntanglementService:
        architecture = self.architecture
        if not architecture.are_connected(*pair):
            raise RuntimeSimulationError(
                f"nodes {pair} are not connected by an interconnect link"
            )
        num_pairs = architecture.comm_pairs_between(*pair)
        if num_pairs == 0:
            raise RuntimeSimulationError(
                f"no communication qubits available between nodes {pair}"
            )
        times = architecture.gate_times
        groups = self.async_groups
        if groups is None:
            # Default: spread sub-groups over one full generation cycle,
            # staggered by one local-gate time (Fig. 3).
            groups = max(1, int(round(times.epr_generation_cycle / max(
                times.local_cnot, 1e-9))))
        schedule = AttemptSchedule(
            num_pairs=num_pairs,
            cycle_time=times.epr_generation_cycle,
            policy=self.attempt_policy,
            num_groups=groups,
            stagger=times.local_cnot,
        )
        generator = EntanglementGenerator(
            schedule,
            success_probability=architecture.physics.epr_success_probability,
            seed=self.seed + 1009 * (pair[0] * architecture.num_nodes + pair[1]),
        )
        capacity = (
            architecture.buffer_capacity_between(*pair) if self.use_buffer else 0
        )
        prefill = capacity if (self.prefill and self.use_buffer) else 0
        return EntanglementService(
            generator=generator,
            buffer_capacity=capacity,
            kappa=architecture.decoherence_rate,
            initial_fidelity=architecture.fidelities.epr_pair,
            swap_latency=times.swap,
            buffer_cutoff=self.buffer_cutoff,
            prefill=prefill,
            node_pair=pair,
        )

    # ------------------------------------------------------------------
    def count_available(self, node_a: int, node_b: int, time: float) -> int:
        """Buffered EPR pairs available between two nodes at ``time``."""
        return self.service(node_a, node_b).count_available(time)

    def finalize(self, time: float) -> None:
        """Flush all services at the end of a run."""
        for service in self._services.values():
            service.finalize(time)

    def aggregate_statistics(self) -> Dict[str, float]:
        """Summed generation / consumption / waste counters over all pairs."""
        totals = {
            "generated": 0,
            "consumed_from_buffer": 0,
            "consumed_direct": 0,
            "wasted": 0,
        }
        for service in self._services.values():
            totals["generated"] += service.statistics.generated_total
            totals["consumed_from_buffer"] += service.statistics.consumed_from_buffer
            totals["consumed_direct"] += service.statistics.consumed_direct
            totals["wasted"] += service.total_wasted
        return totals


class EntanglementDirectoryBatch:
    """Per-seed entanglement directories with batched queries.

    The vectorized execution core
    (:class:`~repro.runtime.vectorized.VectorizedExecutor`) keeps one 2-D
    state row per seed but must consume *per-seed* stochastic entanglement:
    generator streams are seeded per (base seed, node pair) and cannot be
    merged across seeds without changing the variates.  This batch view
    therefore fans out to one :class:`EntanglementDirectory` per seed and
    exposes the executor-facing queries over the whole batch at once:
    :meth:`acquire_batch` consumes one link per seed at per-seed ready
    times, :meth:`count_available_batch` sums buffered-EPR counts over a
    segment's node pairs at per-seed decision times.  Every underlying
    service call is identical (same times, same order) to what the scalar
    cores issue, so the drawn variate streams — and hence the results —
    are bit-identical per seed.

    Parameters mirror :class:`EntanglementDirectory` minus ``seed``
    (``seeds`` is the batch) plus ``pair_list``, the compiled cell's global
    remote node-pair table that gate streams index by ``pair_id``.
    """

    def __init__(
        self,
        architecture: DQCArchitecture,
        seeds: Sequence[int],
        pair_list: Sequence[NodePair],
        attempt_policy: AttemptPolicy = AttemptPolicy.ASYNCHRONOUS,
        use_buffer: bool = True,
        prefill: bool = False,
        buffer_cutoff: Optional[float] = None,
        async_groups: Optional[int] = None,
    ) -> None:
        if not seeds:
            raise RuntimeSimulationError("directory batch needs at least one seed")
        self.architecture = architecture
        self.seeds = list(seeds)
        self.pair_list = tuple(pair_list)
        self.kappa = architecture.decoherence_rate
        self.directories = [
            EntanglementDirectory(
                architecture,
                attempt_policy=attempt_policy,
                use_buffer=use_buffer,
                prefill=prefill,
                buffer_cutoff=buffer_cutoff,
                seed=seed,
                async_groups=async_groups,
            )
            for seed in self.seeds
        ]
        # Per-seed flat service table indexed by pair id (lazy, like the
        # scalar replay's local `services` list).
        self._services: List[List[Optional[EntanglementService]]] = [
            [None] * len(self.pair_list) for _ in self.seeds
        ]

    # ------------------------------------------------------------------
    @property
    def num_seeds(self) -> int:
        return len(self.seeds)

    def service(self, row: int, pair_id: int) -> EntanglementService:
        """The (lazily created) service of seed-row ``row`` for ``pair_id``."""
        service = self._services[row][pair_id]
        if service is None:
            pair = self.pair_list[pair_id]
            service = self.directories[row].service(pair[0], pair[1])
            self._services[row][pair_id] = service
        return service

    # ------------------------------------------------------------------
    def acquire_batch(
        self, pair_id: int, ready_times: Sequence[float],
        rows: Optional[Sequence[int]] = None,
    ) -> Tuple[List[float], List[float], List[float]]:
        """Consume one link per seed at per-seed ready times.

        ``ready_times[i]`` is the remote gate's ready time in seed-row
        ``rows[i]`` (all rows when ``rows`` is ``None``).  Returns three
        aligned lists — start times, link creation times, and link
        fidelities at start — the per-gate fields the executor records.
        """
        if rows is None:
            rows = range(len(self.directories))
        starts: List[float] = []
        created: List[float] = []
        fidelities: List[float] = []
        kappa = self.kappa
        tables = self._services
        for row, after in zip(rows, ready_times):
            service = tables[row][pair_id]
            if service is None:
                service = self.service(row, pair_id)
            start, created_time, fidelity = service.acquire_record(after, kappa)
            starts.append(start)
            created.append(created_time)
            fidelities.append(fidelity)
        return starts, created, fidelities

    def count_available_batch(
        self, node_pairs: Sequence[NodePair], times: Sequence[float],
        rows: Optional[Sequence[int]] = None,
    ) -> List[int]:
        """Buffered EPR pairs summed over ``node_pairs``, per seed.

        ``times[i]`` is the adaptive decision time of seed-row ``rows[i]``;
        the sum iterates pairs in the given order, matching the scalar
        cores' decision rule exactly.
        """
        if rows is None:
            rows = range(len(self.directories))
        return [
            sum(self.directories[row].count_available(a, b, time)
                for a, b in node_pairs)
            for row, time in zip(rows, times)
        ]

    # ------------------------------------------------------------------
    def finalize(self, times: Sequence[float]) -> None:
        """Flush every seed's services at its own end-of-run makespan."""
        for directory, time in zip(self.directories, times):
            directory.finalize(time)

    def aggregate_statistics(self) -> List[Dict[str, float]]:
        """Per-seed aggregated EPR statistics, in seed order."""
        return [directory.aggregate_statistics()
                for directory in self.directories]
