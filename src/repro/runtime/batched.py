"""Trajectory-batched execution of compiled gate streams.

:class:`BatchedExecutor` is the fast execution core behind the engine: it
replays a pre-lowered :class:`~repro.runtime.gatestream.CompiledStreams`
for a whole batch of seeds in one pass, sharing every per-cell artifact
(gate arrays, static gate counts, segment metadata, the schedule lookup
table) across the batch.  Only the entanglement process is stochastic, so
the per-seed replay touches plain floats and the vectorized entanglement
services — never ``Gate`` objects, latency tables, or circuit walks.

Results are **bit-identical** to the legacy
:class:`~repro.runtime.executor.DesignExecutor` for the same seed: both
cores drive the same :class:`~repro.runtime.resources.EntanglementDirectory`
(whose generators draw identical variate streams, see
:mod:`repro.entanglement.generator`), apply the same float arithmetic in the
same order for gate timing, and call the same fidelity model.  The legacy
executor remains selectable with ``REPRO_EXEC=legacy`` as the reference
implementation; ``tests/test_batched.py`` pins the equivalence across every
design, topology, and the adaptive scheduling path.

The ideal (monolithic) design is deterministic per cell, so a seed batch
simulates it once and stamps per-seed results from the shared outcome.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence

from repro.hardware.architecture import DQCArchitecture
from repro.noise.fidelity import FidelityModel
from repro.partitioning.assigner import DistributedProgram
from repro.runtime.designs import DesignSpec, get_design
from repro.runtime.executor import build_program_lookup, validate_program_capacity
from repro.runtime.gatestream import (
    OP_LOCAL_2Q,
    OP_REMOTE,
    CompiledStreams,
    GateStream,
    lower_cell,
)
from repro.runtime.metrics import ExecutionResult, RemoteGateRecord
from repro.runtime.resources import EntanglementDirectory
from repro.scheduling.lookup import ScheduleLookupTable
from repro.scheduling.policies import AdaptivePolicy
from repro.scheduling.variants import SchedulingVariant

__all__ = ["BatchedExecutor", "execute_batch"]


class BatchedExecutor:
    """Replays compiled gate streams for batches of seeds.

    Parameters mirror :class:`~repro.runtime.executor.DesignExecutor` minus
    the per-run ``seed`` (seeds are batch inputs) and ``collect_trace``
    (tracing stays a legacy-executor feature); ``streams`` accepts the
    compiler's pre-lowered arrays and is rebuilt on the fly when absent, so
    the executor also works stand-alone.
    """

    def __init__(
        self,
        architecture: DQCArchitecture,
        design,
        fidelity_model: Optional[FidelityModel] = None,
        segment_length: Optional[int] = None,
        adaptive_policy: Optional[AdaptivePolicy] = None,
        lookup: Optional[ScheduleLookupTable] = None,
        streams: Optional[CompiledStreams] = None,
    ) -> None:
        self.architecture = architecture
        self.design: DesignSpec = (
            design if isinstance(design, DesignSpec) else get_design(design)
        )
        self.fidelity_model = fidelity_model or FidelityModel(
            fidelities=architecture.fidelities,
            kappa=architecture.decoherence_rate,
        )
        self.segment_length = segment_length
        self.adaptive_policy = adaptive_policy or AdaptivePolicy()
        self.lookup = lookup
        self.streams = streams

    # ------------------------------------------------------------------
    def run_batch(self, program: DistributedProgram, seeds: Sequence[int],
                  benchmark_name: Optional[str] = None) -> List[ExecutionResult]:
        """Replay the program under every seed; results in seed order."""
        benchmark_name = benchmark_name or program.name
        self._validate_capacity(program)
        seeds = list(seeds)
        if not seeds:
            return []

        if self.design.ideal:
            streams = self._streams_for(program)
            return self._run_ideal_batch(streams, benchmark_name, seeds)

        lookup = None
        if self.design.adaptive_scheduling:
            lookup = self.lookup if self.lookup is not None else (
                self._build_lookup(program)
            )
        streams = self._streams_for(program, lookup)
        return [
            self._run_one(program, streams, lookup, benchmark_name, seed)
            for seed in seeds
        ]

    # ------------------------------------------------------------------
    # stochastic (distributed) replay
    # ------------------------------------------------------------------
    def _run_one(self, program: DistributedProgram, streams: CompiledStreams,
                 lookup: Optional[ScheduleLookupTable], benchmark_name: str,
                 seed: int) -> ExecutionResult:
        design = self.design
        architecture = self.architecture
        kappa = architecture.decoherence_rate
        directory = EntanglementDirectory(
            architecture,
            attempt_policy=design.attempt_policy,
            use_buffer=design.use_buffer,
            prefill=design.prefill_buffers,
            buffer_cutoff=design.buffer_cutoff,
            seed=seed,
            async_groups=design.async_groups,
        )

        num_qubits = program.num_qubits
        avail = [0.0] * num_qubits
        busy = [0.0] * num_qubits
        first_use: List[Optional[float]] = [None] * num_qubits
        remote_records: List[RemoteGateRecord] = []
        services = [None] * len(streams.pair_list)
        remote_latency = streams.remote_latency
        gate_counter = 0

        def play(stream: GateStream) -> None:
            nonlocal gate_counter
            for op, a, b, duration, pair_id in stream.rows():
                if op == OP_REMOTE:
                    time_a = avail[a]
                    time_b = avail[b]
                    ready = time_a if time_a >= time_b else time_b
                    service = services[pair_id]
                    if service is None:
                        pair = streams.pair_list[pair_id]
                        service = directory.service(pair[0], pair[1])
                        services[pair_id] = service
                    start, link = service.acquire(ready)
                    finish = start + remote_latency
                    avail[a] = finish
                    avail[b] = finish
                    busy[a] += remote_latency
                    busy[b] += remote_latency
                    if first_use[a] is None:
                        first_use[a] = start
                    if first_use[b] is None:
                        first_use[b] = start
                    remote_records.append(RemoteGateRecord(
                        gate_index=gate_counter,
                        ready_time=ready,
                        start_time=start,
                        finish_time=finish,
                        link_created_time=link.created_time,
                        link_fidelity=link.fidelity_at(start, kappa),
                    ))
                elif op == OP_LOCAL_2Q:
                    time_a = avail[a]
                    time_b = avail[b]
                    start = time_a if time_a >= time_b else time_b
                    finish = start + duration
                    avail[a] = finish
                    avail[b] = finish
                    busy[a] += duration
                    busy[b] += duration
                    if first_use[a] is None:
                        first_use[a] = start
                    if first_use[b] is None:
                        first_use[b] = start
                else:
                    start = avail[a]
                    avail[a] = start + duration
                    busy[a] += duration
                    if first_use[a] is None:
                        first_use[a] = start
                gate_counter += 1

        if lookup is not None:
            lookup.reset_decisions()
            for segment in streams.segments:
                if segment.qubits:
                    decision_time = min(avail[q] for q in segment.qubits)
                else:
                    decision_time = max(avail)
                if segment.node_pairs:
                    available = sum(
                        directory.count_available(a, b, decision_time)
                        for a, b in segment.node_pairs
                    )
                    chosen = lookup.select_name(segment.index, available,
                                                decision_time)
                else:
                    chosen = SchedulingVariant.ORIGINAL
                play(segment.variants[chosen])
        else:
            play(streams.flat)

        makespan = max(avail)
        directory.finalize(makespan)

        idle_total = 0.0
        for qubit in range(num_qubits):
            first = first_use[qubit]
            if first is None:
                continue
            span = makespan - first
            if span < 0.0:
                span = 0.0
            idle = span - busy[qubit]
            if idle > 0.0:
                idle_total += idle

        breakdown = self.fidelity_model.estimate(
            num_single_qubit=streams.num_single,
            num_local_two_qubit=streams.num_local_two,
            remote_link_fidelities=[
                record.link_fidelity for record in remote_records
            ],
            makespan=makespan,
            num_measurements=streams.num_measure,
            qubit_idle_total=idle_total,
        )
        return ExecutionResult(
            design=design.name,
            benchmark=benchmark_name,
            seed=seed,
            makespan=makespan,
            fidelity=breakdown.total,
            fidelity_breakdown=breakdown,
            num_single_qubit=streams.num_single,
            num_local_two_qubit=streams.num_local_two,
            num_remote=len(remote_records),
            num_measurements=streams.num_measure,
            qubit_idle_total=idle_total,
            remote_records=remote_records,
            epr_statistics=directory.aggregate_statistics(),
            variant_histogram=(lookup.variant_histogram() if lookup else {}),
        )

    # ------------------------------------------------------------------
    # deterministic (ideal) replay
    # ------------------------------------------------------------------
    def _run_ideal_batch(self, streams: CompiledStreams, benchmark_name: str,
                         seeds: Sequence[int]) -> List[ExecutionResult]:
        stream = streams.flat
        num_qubits = stream.num_qubits
        avail = [0.0] * num_qubits
        busy = [0.0] * num_qubits
        first_use: List[Optional[float]] = [None] * num_qubits
        for op, a, b, duration, _pair in stream.rows():
            if op == OP_LOCAL_2Q:
                time_a = avail[a]
                time_b = avail[b]
                start = time_a if time_a >= time_b else time_b
                finish = start + duration
                avail[a] = finish
                avail[b] = finish
                busy[a] += duration
                busy[b] += duration
                if first_use[a] is None:
                    first_use[a] = start
                if first_use[b] is None:
                    first_use[b] = start
            else:
                start = avail[a]
                avail[a] = start + duration
                busy[a] += duration
                if first_use[a] is None:
                    first_use[a] = start

        makespan = max(avail)
        idle_total = 0.0
        for qubit in range(num_qubits):
            first = first_use[qubit]
            if first is None:
                continue
            span = makespan - first
            if span < 0.0:
                span = 0.0
            idle = span - busy[qubit]
            if idle > 0.0:
                idle_total += idle

        breakdown = self.fidelity_model.estimate(
            num_single_qubit=streams.num_single,
            num_local_two_qubit=streams.num_two_total,
            remote_link_fidelities=[],
            makespan=makespan,
            num_measurements=streams.num_measure,
            qubit_idle_total=idle_total,
        )
        return [
            ExecutionResult(
                design=self.design.name,
                benchmark=benchmark_name,
                seed=seed,
                makespan=makespan,
                fidelity=breakdown.total,
                fidelity_breakdown=replace(breakdown),
                num_single_qubit=streams.num_single,
                num_local_two_qubit=streams.num_two_total,
                num_remote=0,
                num_measurements=streams.num_measure,
                qubit_idle_total=idle_total,
            )
            for seed in seeds
        ]

    # ------------------------------------------------------------------
    # lowering / validation helpers
    # ------------------------------------------------------------------
    def _streams_for(self, program: DistributedProgram,
                     lookup: Optional[ScheduleLookupTable] = None
                     ) -> CompiledStreams:
        if self.streams is not None:
            return self.streams
        return lower_cell(program, self.architecture, self.design,
                          lookup=lookup)

    def _build_lookup(self, program: DistributedProgram) -> ScheduleLookupTable:
        """Stand-alone lookup build, shared with the legacy reference."""
        return build_program_lookup(self.architecture, program,
                                    segment_length=self.segment_length,
                                    policy=self.adaptive_policy)

    def _validate_capacity(self, program: DistributedProgram) -> None:
        validate_program_capacity(self.architecture, program)


def execute_batch(
    program: DistributedProgram,
    architecture: DQCArchitecture,
    design,
    seeds: Sequence[int],
    **kwargs,
) -> List[ExecutionResult]:
    """Convenience wrapper: build a batched executor and replay one batch."""
    executor = BatchedExecutor(architecture, design, **kwargs)
    return executor.run_batch(program, seeds)
