"""The HTTP/JSON surface of the study daemon (stdlib ``http.server``).

Endpoints (all JSON unless noted)::

    POST /jobs                    submit a study spec → 201 {job}
                                  400 structured SpecValidationError payload
                                  429 quota-exceeded payload
    GET  /jobs[?state=…&client=…] list jobs + the caller's quota accounting
    GET  /jobs/<id>               job state + live progress + resume point
    GET  /jobs/<id>/results       results from the job's store
         ?format=json|csv         (text/csv for csv); 409 until done
    POST /jobs/<id>/cancel        cooperative cancel → resulting state
    GET  /healthz                 liveness + job-state counts

Tenancy is the ``X-Client`` request header (default ``anonymous``);
priority is the ``X-Priority`` header on submit.  The server is a
``ThreadingHTTPServer`` with daemon threads: requests never block the
scheduler, and status polling stays responsive while jobs run.
"""

from __future__ import annotations

import json
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.exceptions import SpecValidationError
from repro.service.daemon import JobNotReady, QuotaError, StudyDaemon
from repro.service.jobs import JobError

__all__ = ["build_server", "ServiceRequestHandler"]

#: Submission bodies larger than this are rejected outright (a study spec
#: is a few KB; anything megabytes-large is a mistake or abuse).
MAX_BODY_BYTES = 8 * 1024 * 1024

_JOB_PATH = re.compile(r"^/jobs/([A-Za-z0-9_.-]+)$")
_RESULTS_PATH = re.compile(r"^/jobs/([A-Za-z0-9_.-]+)/results$")
_CANCEL_PATH = re.compile(r"^/jobs/([A-Za-z0-9_.-]+)/cancel$")


class ServiceHTTPServer(ThreadingHTTPServer):
    """Threading server carrying the daemon for its handlers."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], handler,
                 daemon: StudyDaemon) -> None:
        super().__init__(address, handler)
        self.study_daemon = daemon


def build_server(daemon: StudyDaemon, host: str,
                 port: int) -> ServiceHTTPServer:
    """Bind the API server (``port=0`` picks an ephemeral port)."""
    return ServiceHTTPServer((host, port), ServiceRequestHandler, daemon)


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Route one request to the daemon and serialise the response."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-service"

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def daemon(self) -> StudyDaemon:
        return self.server.study_daemon

    @property
    def client_name(self) -> str:
        return self.headers.get("X-Client", "anonymous").strip() or "anonymous"

    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request stderr chatter (the CLI owns the terminal)."""

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str,
                   content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json_body(self) -> Optional[Dict[str, Any]]:
        """The request body as a JSON object, or ``None`` after a 400."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._send_json(400, {
                "error": "invalid-body",
                "message": f"Content-Length must be 0..{MAX_BODY_BYTES}",
            })
            return None
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            self._send_json(400, {
                "error": "invalid-json",
                "message": f"request body is not valid JSON: {error}",
            })
            return None
        if not isinstance(payload, dict):
            self._send_json(400, {
                "error": "invalid-json",
                "message": "request body must be a JSON object (a study "
                           "spec)",
            })
            return None
        return payload

    def _not_found(self) -> None:
        self._send_json(404, {"error": "not-found",
                              "message": f"no route for {self.path}"})

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        query = parse_qs(url.query)
        try:
            if url.path == "/healthz":
                self._send_json(200, self.daemon.health())
            elif url.path == "/jobs":
                state = (query.get("state") or [None])[0]
                client = (query.get("client") or [None])[0]
                try:
                    jobs = self.daemon.list_jobs(client=client, state=state)
                except ValueError:
                    self._send_json(400, {
                        "error": "invalid-filter",
                        "message": f"unknown state filter {state!r}",
                    })
                    return
                self._send_json(200, {
                    "jobs": jobs,
                    "quota": self.daemon.quota(self.client_name),
                })
            elif _RESULTS_PATH.match(url.path):
                self._get_results(_RESULTS_PATH.match(url.path).group(1),
                                  query)
            elif _JOB_PATH.match(url.path):
                job_id = _JOB_PATH.match(url.path).group(1)
                self._send_json(200, self.daemon.job_status(job_id))
            else:
                self._not_found()
        except JobError as error:
            self._send_json(404, {"error": "unknown-job",
                                  "message": str(error)})
        except Exception as error:  # noqa: BLE001 - daemon must survive
            self._send_json(500, {"error": "internal",
                                  "message": f"{type(error).__name__}: "
                                             f"{error}"})

    def _get_results(self, job_id: str, query: Dict[str, Any]) -> None:
        fmt = (query.get("format") or ["json"])[0]
        if fmt not in ("json", "csv"):
            self._send_json(400, {
                "error": "invalid-format",
                "message": f"format must be json or csv, got {fmt!r}",
            })
            return
        try:
            text = self.daemon.results(job_id, fmt)
        except JobNotReady as error:
            self._send_json(409, error.to_dict())
            return
        self._send_text(
            200, text,
            "text/csv" if fmt == "csv" else "application/json")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        url = urlparse(self.path)
        try:
            if url.path == "/jobs":
                self._post_job()
            elif _CANCEL_PATH.match(url.path):
                job_id = _CANCEL_PATH.match(url.path).group(1)
                state = self.daemon.cancel(job_id)
                self._send_json(200, {"id": job_id, "state": state.value})
            else:
                self._not_found()
        except JobError as error:
            self._send_json(404, {"error": "unknown-job",
                                  "message": str(error)})
        except Exception as error:  # noqa: BLE001 - daemon must survive
            self._send_json(500, {"error": "internal",
                                  "message": f"{type(error).__name__}: "
                                             f"{error}"})

    def _post_job(self) -> None:
        spec = self._read_json_body()
        if spec is None:
            return
        try:
            priority = int(self.headers.get("X-Priority", "0"))
        except ValueError:
            self._send_json(400, {
                "error": "invalid-priority",
                "message": "X-Priority must be an integer",
            })
            return
        try:
            job = self.daemon.submit(spec, client=self.client_name,
                                     priority=priority)
        except SpecValidationError as error:
            self._send_json(400, error.to_dict())
            return
        except QuotaError as error:
            self._send_json(429, error.to_dict())
            return
        self._send_json(201, job.summary())
