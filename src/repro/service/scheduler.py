"""Scheduler loop: drain the job queue into the execution backend.

A fixed pool of worker threads (``concurrency``, default one — studies
already parallelise *inside* a job via the execution backend) pops job ids
off the priority queue, re-reads each job from the registry (skipping jobs
cancelled while queued), and runs it through the ordinary
:meth:`Study.run(store=…) <repro.study.study.Study.run>` streaming path:

* every job writes its own :class:`~repro.study.store.RunStore`, so chunks
  are durable the moment they complete and an interrupted job resumes
  chunk-exactly on the next attempt;
* every :class:`~repro.study.store.ProgressEvent` lands in a per-job ring
  buffer the status endpoint serves;
* cancellation is **cooperative**: a cancel request sets the job's event,
  and the progress callback — which fires between store chunks — raises,
  unwinding the run after the current chunk committed.  The store stays
  resumable, which is what lets a cancelled job's resubmission continue.

Each worker thread owns one :class:`ExecutionBackend` instance for its
whole lifetime, so a process-pool backend keeps its warm workers (and their
compiled-cell caches) across consecutive jobs instead of paying the pool
start-up per job.  All jobs share the daemon's one artifact cache.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.engine.backends import get_backend
from repro.engine.cache import ArtifactCache
from repro.exceptions import ReproError
from repro.faults import failpoint
from repro.service.jobqueue import JobQueue
from repro.service.jobs import Job, JobRegistry, JobState
from repro.study.store import ProgressEvent
from repro.study.study import Study

__all__ = ["Scheduler", "JobCancelled"]

#: Progress events kept per job for the status endpoint.
DEFAULT_RING_SIZE = 64


class JobCancelled(Exception):
    """Internal control-flow signal: unwind a run at a chunk boundary."""


class Scheduler:
    """Worker pool turning queued jobs into streamed study runs."""

    def __init__(self, registry: JobRegistry, queue: JobQueue,
                 data_root: Path, *,
                 cache: ArtifactCache,
                 backend: Optional[str] = None,
                 concurrency: int = 1,
                 store_chunk_size: Optional[int] = None,
                 fleet: Optional[str] = None,
                 ring_size: int = DEFAULT_RING_SIZE) -> None:
        if concurrency < 1:
            raise ValueError("scheduler needs at least one worker")
        self.registry = registry
        self.queue = queue
        self.data_root = Path(data_root)
        self.cache = cache
        self.backend_name = backend
        self.concurrency = concurrency
        self.store_chunk_size = store_chunk_size
        self.fleet = fleet
        self._ring_size = ring_size
        self._events: Dict[str, deque] = {}
        self._latest: Dict[str, Dict[str, Any]] = {}
        self._cancel: Dict[str, threading.Event] = {}
        self._backends: List[Any] = []
        self._state_lock = threading.Lock()
        self._stopping = threading.Event()
        self._threads: List[threading.Thread] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the worker threads."""
        for index in range(self.concurrency):
            thread = threading.Thread(
                target=self._worker, name=f"repro-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: float = 10.0) -> None:
        """Stop accepting work and wait for the workers to wind down.

        A job mid-run is asked to stop cooperatively (same path as a
        cancel, but the job is *re-queued*, not cancelled, so the next
        daemon start resumes it); its committed chunks are already
        durable either way.
        """
        self._stopping.set()
        self.queue.close()
        with self._state_lock:
            for event in self._cancel.values():
                event.set()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []

    # ------------------------------------------------------------------
    # observation / control
    # ------------------------------------------------------------------
    def request_cancel(self, job_id: str) -> JobState:
        """Cancel a job: immediately if queued, cooperatively if running.

        Returns the job's state after the request (terminal states are
        left untouched — cancelling a finished job is a no-op).
        """
        job = self.registry.get(job_id)
        if job.state is JobState.QUEUED:
            if self.registry.try_transition(job_id, JobState.CANCELLED):
                return JobState.CANCELLED
            job = self.registry.get(job_id)  # lost the race to a worker
        if job.state is JobState.RUNNING:
            with self._state_lock:
                event = self._cancel.get(job_id)
            if event is not None:
                event.set()
        return self.registry.get(job_id).state

    def progress(self, job_id: str) -> Dict[str, Any]:
        """Latest progress snapshot and recent events of one job."""
        with self._state_lock:
            latest = self._latest.get(job_id)
            events = list(self._events.get(job_id, ()))
        return {"latest": latest, "events": events}

    def fleet_workers(self) -> Optional[int]:
        """Connected fleet workers across worker-thread backends.

        ``None`` when no fleet backend is in play (the health endpoint
        omits the field), else the worker-count sum.
        """
        with self._state_lock:
            backends = list(self._backends)
        counts = [backend.workers_connected() for backend in backends
                  if hasattr(backend, "workers_connected")]
        if not counts:
            return None
        return sum(counts)

    def fleet_stats(self) -> Optional[Dict[str, Any]]:
        """Coordinator counters of the fleet backend(s), for ``/healthz``.

        ``None`` when no fleet backend is in play.  With the usual single
        fleet-aware worker thread this is that coordinator's
        :meth:`~repro.fleet.coordinator.FleetCoordinator.stats` payload —
        per-worker throughput, quarantine state, steal/expiry counters —
        keyed flat; with several, the per-coordinator payloads are listed
        under ``"coordinators"``.
        """
        with self._state_lock:
            backends = list(self._backends)
        payloads = [backend.stats() for backend in backends
                    if hasattr(backend, "workers_connected")
                    and hasattr(backend, "stats")]
        if not payloads:
            return None
        if len(payloads) == 1:
            return payloads[0]
        return {"coordinators": payloads}

    # ------------------------------------------------------------------
    # the worker loop
    # ------------------------------------------------------------------
    def _build_backend(self):
        """One backend per worker thread, fleet-aware.

        ``--fleet HOST:PORT`` (or ``backend="fleet"``) builds a
        :class:`~repro.fleet.backend.FleetBackend` and binds its
        coordinator *eagerly*, so remote workers can connect — and the
        health endpoint can count them — while the queue is still empty.
        """
        if self.fleet is not None \
                or (self.backend_name or "").lower() == "fleet":
            from repro.fleet.backend import FleetBackend

            backend = FleetBackend(listen=self.fleet).start()
        else:
            backend = get_backend(self.backend_name)
        with self._state_lock:
            self._backends.append(backend)
        return backend

    def _worker(self) -> None:
        backend = self._build_backend()
        try:
            while not self._stopping.is_set():
                job_id = self.queue.pop(timeout=0.2)
                if job_id is None:
                    if self._stopping.is_set() and len(self.queue) == 0:
                        return
                    continue
                # Claim the job; a cancel that beat us leaves it terminal
                # and the id is simply dropped (lazy queue removal).
                if not self.registry.try_transition(job_id,
                                                    JobState.RUNNING):
                    continue
                self._run_job(self.registry.get(job_id), backend)
        finally:
            with self._state_lock:
                if backend in self._backends:
                    self._backends.remove(backend)
            backend.close()

    def _run_job(self, job: Job, backend) -> None:
        cancel = threading.Event()
        ring: deque = deque(maxlen=self._ring_size)
        with self._state_lock:
            self._cancel[job.id] = cancel
            self._events[job.id] = ring

        def observe(event: ProgressEvent) -> None:
            # Failpoint between store chunks: ``kind=crash`` kills the
            # daemon exactly where a real power cut could (the chunk that
            # just committed is durable, the journal says ``running``, and
            # the next daemon start re-queues + resumes); ``kind=error``
            # fails the job through the ordinary error path.
            failpoint("service.job.chunk")
            payload = event.to_dict()
            payload["ts"] = time.time()
            with self._state_lock:
                self._latest[job.id] = payload
                ring.append(payload)
            if cancel.is_set():
                # Raised between chunks: the chunk that just committed is
                # durable, nothing half-written follows.
                raise JobCancelled()

        study: Optional[Study] = None
        try:
            study = Study.from_spec(job.spec, backend=backend,
                                    cache=self.cache)
            study.run(store=self.data_root / job.store, progress=observe,
                      store_chunk_size=self.store_chunk_size)
        except JobCancelled:
            if self._stopping.is_set():
                # Daemon shutdown, not a user cancel: hand the job back to
                # the queue so the next start resumes it.
                self.registry.try_transition(
                    job.id, JobState.QUEUED, requeued=True,
                    failure="daemon stopped mid-run")
            else:
                self.registry.try_transition(job.id, JobState.CANCELLED)
        except ReproError as error:
            self.registry.try_transition(job.id, JobState.FAILED,
                                         error=str(error))
        except Exception as error:  # noqa: BLE001 - the daemon must survive
            self.registry.try_transition(
                job.id, JobState.FAILED,
                error=f"{type(error).__name__}: {error}")
        else:
            self.registry.try_transition(job.id, JobState.DONE)
        finally:
            with self._state_lock:
                self._cancel.pop(job.id, None)
            if study is not None:
                study.close()  # no-op for the worker-owned backend
