"""Long-running study service: a job-queue daemon over the study engine.

The :mod:`repro.service` package turns the library into a *service*: study
specs (the ``--spec`` JSON the CLI already runs) are submitted over an
HTTP/JSON API, become durable :class:`~repro.service.jobs.Job` entries in an
append-only journal, and are drained by a scheduler from a priority queue
into the execution backend — each job streaming into its own
:class:`~repro.study.store.RunStore` so a crashed or killed daemon re-queues
interrupted jobs on restart and resumes them chunk-exactly.

Layers (bottom up):

* :mod:`repro.service.jobs` — the job model, state machine, and journal;
* :mod:`repro.service.jobqueue` — the thread-safe priority queue;
* :mod:`repro.service.scheduler` — worker loop: queue → Study.run(store=…);
* :mod:`repro.service.httpapi` — the ``ThreadingHTTPServer`` JSON surface;
* :mod:`repro.service.daemon` — data-root layout and lifecycle glue;
* :mod:`repro.service.client` — the stdlib HTTP client the CLI speaks.

Everything is stdlib-only (``http.server``, ``json``, ``threading``).
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import ServiceConfig, StudyDaemon
from repro.service.jobs import Job, JobJournal, JobRegistry, JobState

__all__ = [
    "Job",
    "JobJournal",
    "JobRegistry",
    "JobState",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "StudyDaemon",
]
