"""Thread-safe priority queue feeding the scheduler loop.

Ordering follows the time-priority-queue idiom: highest ``priority`` first,
ties broken by submission order (FIFO).  The queue holds job *ids*, not job
objects — the scheduler re-reads each popped job from the registry, so a
job cancelled while waiting is simply skipped when its id surfaces (lazy
removal; no heap surgery under the cancel path).
"""

from __future__ import annotations

import heapq
import threading
from typing import List, Optional, Tuple

from repro.service.jobs import Job

__all__ = ["JobQueue"]


class JobQueue:
    """Bounded-wait, closeable priority queue of job ids."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, str]] = []
        self._condition = threading.Condition()
        self._closed = False

    def push(self, job: Job) -> None:
        """Enqueue a job (higher priority pops first; FIFO within ties)."""
        with self._condition:
            if self._closed:
                raise RuntimeError("queue is closed")
            heapq.heappush(self._heap,
                           (-job.priority, job.submit_index, job.id))
            self._condition.notify()

    def pop(self, timeout: Optional[float] = None) -> Optional[str]:
        """Dequeue the next job id, waiting up to ``timeout`` seconds.

        Returns ``None`` on timeout or once the queue is closed and
        drained — the worker loop's exit signal.
        """
        with self._condition:
            while not self._heap:
                if self._closed:
                    return None
                if not self._condition.wait(timeout=timeout):
                    return None
            return heapq.heappop(self._heap)[2]

    def close(self) -> None:
        """Wake every waiting worker; pops drain what remains, then None."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()

    def __len__(self) -> int:
        with self._condition:
            return len(self._heap)
