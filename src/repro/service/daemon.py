"""The study daemon: data-root layout, job lifecycle, and service glue.

A :class:`StudyDaemon` owns one **data root** directory::

    <data-root>/
        jobs.journal            append-only job journal (JobJournal)
        jobs/<id>/spec.json     submitted spec, one readable copy per job
        stores/<fingerprint>/   one RunStore per distinct *plan* — identical
                                specs share a store, so a cancelled job's
                                resubmission (and a restarted daemon's
                                re-queue) resume from the committed chunks
        cache/                  the shared persistent compile cache
                                (unless the config points elsewhere)

and wires the service layers together: journal-backed
:class:`~repro.service.jobs.JobRegistry`, priority
:class:`~repro.service.jobqueue.JobQueue`,
:class:`~repro.service.scheduler.Scheduler` worker pool, and the
:mod:`~repro.service.httpapi` HTTP surface.  Restart recovery is the
composition of two existing guarantees: the journal re-queues jobs that
were running when the daemon died, and the run store resumes each of them
chunk-exactly — so a ``kill -9``'d daemon finishes its interrupted jobs
with results byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import json
import shutil
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.engine.cache import default_cache
from repro.exceptions import ConfigurationError, ReproError, StoreError
from repro.service.jobqueue import JobQueue
from repro.service.jobs import Job, JobJournal, JobRegistry, JobState
from repro.service.scheduler import Scheduler
from repro.study.store import RunStore
from repro.study.study import Study

__all__ = ["ServiceConfig", "StudyDaemon", "QuotaError", "JobNotReady"]

#: Default TCP port of the service (REPRO, loosely, on a phone keypad).
DEFAULT_PORT = 8765


class QuotaError(ReproError):
    """A client exceeded its active-job quota (HTTP 429)."""

    def __init__(self, client: str, active: int, limit: int) -> None:
        super().__init__(
            f"client {client!r} has {active} active job(s), the per-client "
            f"limit is {limit}; wait for one to finish or cancel it"
        )
        self.client = client
        self.active = active
        self.limit = limit

    def to_dict(self) -> Dict[str, Any]:
        """JSON payload of the 429 response."""
        return {"error": "quota-exceeded", "client": self.client,
                "active": self.active, "limit": self.limit,
                "message": str(self)}


class JobNotReady(ReproError):
    """Results were requested before the job reached ``done`` (HTTP 409)."""

    def __init__(self, job: Job) -> None:
        super().__init__(
            f"job {job.id} is {job.state}; results are served once it is "
            f"done" + (f" ({job.error})" if job.error else "")
        )
        self.job = job

    def to_dict(self) -> Dict[str, Any]:
        """JSON payload of the 409 response."""
        return {"error": "job-not-ready", "id": self.job.id,
                "state": self.job.state.value, "message": str(self)}


@dataclass
class ServiceConfig:
    """Tunable knobs of one daemon instance.

    ``fleet`` binds a worker-fleet coordinator at ``host:port`` and runs
    every job on the fleet backend (requires ``concurrency=1`` — the
    coordinator owns one port).  ``job_ttl`` enables the garbage
    collector: terminal (done/failed/cancelled) jobs older than the TTL
    are pruned — journalled, job dir deleted, orphaned stores removed.
    """

    data_root: Union[str, Path]
    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    concurrency: int = 1
    max_jobs_per_client: int = 16
    backend: Optional[str] = None
    cache_dir: Union[None, str, Path] = None
    store_chunk_size: Optional[int] = None
    fleet: Optional[str] = None
    job_ttl: Optional[float] = None


class StudyDaemon:
    """One service instance: submit, schedule, observe, and serve studies."""

    def __init__(self, config: ServiceConfig) -> None:
        if config.fleet is not None and config.concurrency != 1:
            raise ConfigurationError(
                "the fleet coordinator owns one listening port; run "
                "--fleet with --concurrency 1 (jobs parallelise across "
                "the fleet's workers instead)"
            )
        if config.job_ttl is not None and config.job_ttl < 0:
            raise ConfigurationError("job TTL cannot be negative")
        self.config = config
        self.data_root = Path(config.data_root)
        self.journal = JobJournal(self.data_root / "jobs.journal")
        self.registry = JobRegistry(self.journal)
        self.queue = JobQueue()
        cache_dir = (Path(config.cache_dir) if config.cache_dir is not None
                     else self.data_root / "cache")
        #: One artifact cache shared by every job of the daemon — compiled
        #: cells persist on disk, so repeat submissions start in
        #: milliseconds instead of recompiling.
        self.cache = default_cache(cache_dir)
        self.scheduler = Scheduler(
            self.registry, self.queue, self.data_root,
            cache=self.cache,
            backend=config.backend,
            concurrency=config.concurrency,
            store_chunk_size=config.store_chunk_size,
            fleet=config.fleet,
        )
        self._server = None
        self._server_thread: Optional[threading.Thread] = None
        self._gc_thread: Optional[threading.Thread] = None
        self._gc_stop = threading.Event()
        self._started = time.time()
        self._submit_lock = threading.Lock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Recover journalled jobs, start the workers, bind the API."""
        from repro.service.httpapi import build_server

        self.data_root.mkdir(parents=True, exist_ok=True)
        (self.data_root / "jobs").mkdir(exist_ok=True)
        (self.data_root / "stores").mkdir(exist_ok=True)
        self._started = time.time()
        for job in self.registry.load():
            self.queue.push(job)
        self.scheduler.start()
        self._server = build_server(self, self.config.host, self.config.port)
        self._server_thread = threading.Thread(
            target=self._server.serve_forever, name="repro-http",
            daemon=True,
        )
        self._server_thread.start()
        if self.config.job_ttl is not None:
            self._gc_stop.clear()
            self._gc_thread = threading.Thread(
                target=self._gc_loop, name="repro-gc", daemon=True)
            self._gc_thread.start()

    @property
    def address(self) -> str:
        """The bound base URL (resolves a ``port=0`` ephemeral bind)."""
        if self._server is None:
            return f"http://{self.config.host}:{self.config.port}"
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def stop(self, timeout: float = 10.0) -> None:
        """Shut the API, wind down workers, close the journal.

        Jobs mid-run are re-queued (their committed chunks are durable),
        so the next :meth:`start` against the same data root resumes them.
        """
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._server_thread is not None:
            self._server_thread.join(timeout=timeout)
            self._server_thread = None
        self._gc_stop.set()
        if self._gc_thread is not None:
            self._gc_thread.join(timeout=timeout)
            self._gc_thread = None
        self.scheduler.stop(timeout=timeout)
        self.journal.close()

    def serve_forever(self) -> None:
        """Run until interrupted (the ``repro serve`` entry point)."""
        self.start()
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    # ------------------------------------------------------------------
    # the service operations (HTTP handlers call these)
    # ------------------------------------------------------------------
    def submit(self, spec: Dict[str, Any], *, client: str = "anonymous",
               priority: int = 0) -> Job:
        """Validate a spec and enqueue it as a new job.

        Raises :class:`~repro.exceptions.SpecValidationError` (the API's
        structured 400) for an invalid spec and :class:`QuotaError` (429)
        when the client is at its active-job limit.  Validation expands
        the plan once — which also yields the plan fingerprint that names
        the job's run store, so identical plans share one store.
        """
        study = Study.from_spec(spec)
        plan = study.plan()
        fingerprint = study.plan_fingerprint(plan)
        with self._submit_lock:
            active = self.registry.active_count(client)
            if active >= self.config.max_jobs_per_client:
                raise QuotaError(client, active,
                                 self.config.max_jobs_per_client)
            index = self.registry.next_index()
            job = Job(
                id=f"job-{index + 1:06d}",
                spec=dict(spec),
                client=client,
                priority=int(priority),
                state=JobState.QUEUED,
                created=time.time(),
                submit_index=index,
                store=f"stores/{fingerprint[:16]}",
                fingerprint=fingerprint,
                cells=len(plan),
                total_tasks=plan.num_tasks,
                name=spec.get("name"),
            )
            job_dir = self.data_root / "jobs" / job.id
            job_dir.mkdir(parents=True, exist_ok=True)
            (job_dir / "spec.json").write_text(
                json.dumps(spec, indent=2) + "\n")
            self.registry.add(job)
        self.queue.push(job)
        return job

    def job_status(self, job_id: str) -> Dict[str, Any]:
        """Full status of one job: fields, live progress, resume point."""
        job = self.registry.get(job_id)
        status = job.to_dict()
        progress = self.scheduler.progress(job_id)
        resume = self._store_resume_point(job)
        if progress["latest"] is None and resume is not None:
            # No live events (queued after a restart, or another worker's
            # era) — derive the resume point from the durable store.
            progress["latest"] = resume
        status["progress"] = progress
        status["resume_point"] = resume
        return status

    def _store_resume_point(self, job: Job) -> Optional[Dict[str, Any]]:
        store_path = self.data_root / job.store
        try:
            summary = RunStore.load(store_path).summary()
        except StoreError:
            return None
        return {
            "done_chunks": summary["done_chunks"],
            "total_chunks": summary["total_chunks"],
            "done_tasks": summary["done_tasks"],
            "total_tasks": summary["total_tasks"],
            "complete": summary["complete"],
        }

    def results(self, job_id: str, fmt: str = "json") -> str:
        """Serialised results of a finished job, straight from its store."""
        job = self.registry.get(job_id)
        if job.state is not JobState.DONE:
            raise JobNotReady(job)
        results = RunStore.load(self.data_root / job.store).load_results()
        if fmt == "csv":
            return results.to_csv()
        return results.to_json()

    def cancel(self, job_id: str) -> JobState:
        """Cancel a job (immediate if queued, cooperative if running)."""
        return self.scheduler.request_cancel(job_id)

    def list_jobs(self, *, client: Optional[str] = None,
                  state: Optional[str] = None) -> List[Dict[str, Any]]:
        """Compact job summaries, in submission order."""
        state_filter = JobState(state) if state else None
        return [job.summary()
                for job in self.registry.jobs(client=client,
                                              state=state_filter)]

    def quota(self, client: str) -> Dict[str, Any]:
        """The caller's quota accounting (returned with ``GET /jobs``)."""
        return {
            "client": client,
            "active": self.registry.active_count(client),
            "limit": self.config.max_jobs_per_client,
        }

    def health(self) -> Dict[str, Any]:
        """The liveness payload (``GET /healthz``).

        Besides liveness, this is the operator's one-glance view: queue
        depth, per-state job counts (``running``/``done``/… are hoisted
        to the top level for the ``repro jobs`` header line), and — when
        the daemon runs a fleet — the connected worker count.
        """
        counts = self.registry.state_counts()
        payload = {
            "status": "ok",
            "uptime": round(time.time() - self._started, 3),
            "queued": len(self.queue),
            "queue_depth": len(self.queue),
            "running": counts["running"],
            "done": counts["done"],
            "failed": counts["failed"],
            "jobs": counts,
            "data_root": str(self.data_root),
        }
        if self.config.job_ttl is not None:
            payload["job_ttl"] = self.config.job_ttl
        workers = self.scheduler.fleet_workers()
        if workers is not None or self.config.fleet is not None:
            payload["fleet"] = self.config.fleet
            payload["fleet_workers"] = workers or 0
            stats = self.scheduler.fleet_stats()
            if stats is not None:
                # The coordinator's full counters: per-worker throughput
                # (chunks/s, seeds/s), quarantine state, steals, expiries.
                payload["fleet_stats"] = stats
        return payload

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------
    def prune(self, ttl: Optional[float] = None) -> Dict[str, Any]:
        """Garbage-collect terminal jobs older than ``ttl`` seconds.

        A prune removes three things, in a crash-safe order: the journal
        gains a ``prune`` event (so a restart forgets the job too), the
        job's directory under ``jobs/`` is deleted, and finally any store
        under ``stores/`` no surviving job references is deleted —
        *surviving* includes queued/running jobs and fresher terminal
        jobs, so shared-fingerprint stores outlive individual prunes.
        A pruned job's spec can simply be resubmitted; with its store
        gone it recomputes from scratch (same bytes — the pipeline is
        deterministic).
        """
        ttl = self.config.job_ttl if ttl is None else ttl
        if ttl is None:
            raise ConfigurationError(
                "no TTL given (pass one, or serve with --job-ttl)")
        cutoff = time.time() - ttl
        pruned: List[str] = []
        with self._submit_lock:
            for job in self.registry.jobs():
                finished = job.finished if job.finished is not None \
                    else job.created
                if job.is_terminal and finished <= cutoff:
                    self.registry.prune(job.id)
                    shutil.rmtree(self.data_root / "jobs" / job.id,
                                  ignore_errors=True)
                    pruned.append(job.id)
            removed_stores: List[str] = []
            if pruned:
                live = {job.store for job in self.registry.jobs()}
                stores_dir = self.data_root / "stores"
                if stores_dir.is_dir():
                    for store_dir in sorted(stores_dir.iterdir()):
                        relative = f"stores/{store_dir.name}"
                        if store_dir.is_dir() and relative not in live:
                            shutil.rmtree(store_dir, ignore_errors=True)
                            removed_stores.append(relative)
        return {"pruned": pruned, "stores_removed": removed_stores}

    def _gc_loop(self) -> None:
        ttl = self.config.job_ttl or 0.0
        interval = max(1.0, min(ttl / 4 if ttl else 60.0, 60.0))
        while not self._gc_stop.wait(interval):
            try:
                self.prune()
            except ReproError:  # pragma: no cover - GC must never kill serve
                pass
