"""Stdlib HTTP client for the study service (what the CLI speaks).

A thin, dependency-free wrapper over :mod:`urllib.request`: every method
maps to one endpoint, JSON error bodies become :class:`ServiceError`
(carrying the HTTP status and the structured payload — e.g. a spec
validation error's ``field`` / ``allowed`` diagnosis), and
:meth:`ServiceClient.wait` polls a job to a terminal state.
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional

from repro.exceptions import ReproError

__all__ = ["ServiceClient", "ServiceError", "SERVICE_URL_ENV_VAR",
           "CLIENT_ENV_VAR", "default_service_url"]

#: Environment variable naming the service base URL for the CLI.
SERVICE_URL_ENV_VAR = "REPRO_SERVICE_URL"

#: Environment variable naming the client (tenant) for the CLI.
CLIENT_ENV_VAR = "REPRO_CLIENT"


def default_service_url() -> str:
    """The CLI's service URL: ``$REPRO_SERVICE_URL`` or the local default."""
    from repro.service.daemon import DEFAULT_PORT

    return os.environ.get(SERVICE_URL_ENV_VAR,
                          f"http://127.0.0.1:{DEFAULT_PORT}")


class ServiceError(ReproError):
    """An HTTP error from the service, with its structured payload."""

    def __init__(self, status: int, payload: Dict[str, Any]) -> None:
        message = payload.get("message") or payload.get("error") or "error"
        super().__init__(f"service returned {status}: {message}")
        self.status = status
        self.payload = payload


class ServiceClient:
    """One service endpoint plus the caller's tenant identity."""

    def __init__(self, url: Optional[str] = None, *,
                 client: Optional[str] = None,
                 timeout: float = 30.0) -> None:
        self.url = (url or default_service_url()).rstrip("/")
        self.client = (client
                       or os.environ.get(CLIENT_ENV_VAR)
                       or "anonymous")
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str, *,
                 body: Optional[Dict[str, Any]] = None,
                 headers: Optional[Dict[str, str]] = None,
                 raw: bool = False) -> Any:
        data = (json.dumps(body).encode("utf-8")
                if body is not None else None)
        request = urllib.request.Request(
            self.url + path, data=data, method=method)
        request.add_header("X-Client", self.client)
        if data is not None:
            request.add_header("Content-Type", "application/json")
        for key, value in (headers or {}).items():
            request.add_header(key, value)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                text = response.read().decode("utf-8")
                kind = response.headers.get("Content-Type", "")
        except urllib.error.HTTPError as error:
            try:
                payload = json.loads(error.read().decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                payload = {"error": "http", "message": error.reason}
            raise ServiceError(error.code, payload) from None
        except urllib.error.URLError as error:
            raise ServiceError(0, {
                "error": "unreachable",
                "message": f"cannot reach service at {self.url}: "
                           f"{error.reason}",
            }) from None
        if not raw and kind.startswith("application/json"):
            return json.loads(text)
        return text

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        """``GET /healthz``."""
        return self._request("GET", "/healthz")

    def submit(self, spec: Dict[str, Any],
               priority: int = 0) -> Dict[str, Any]:
        """``POST /jobs`` — returns the created job's summary."""
        return self._request("POST", "/jobs", body=spec,
                             headers={"X-Priority": str(priority)})

    def jobs(self, *, state: Optional[str] = None,
             client: Optional[str] = None) -> Dict[str, Any]:
        """``GET /jobs`` — listing plus the caller's quota accounting."""
        query = "&".join(f"{key}={value}" for key, value in
                         (("state", state), ("client", client))
                         if value is not None)
        return self._request("GET", "/jobs" + (f"?{query}" if query else ""))

    def job(self, job_id: str) -> Dict[str, Any]:
        """``GET /jobs/<id>`` — state, progress, resume point."""
        return self._request("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """``POST /jobs/<id>/cancel`` — returns the resulting state."""
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def results(self, job_id: str, fmt: str = "json") -> str:
        """``GET /jobs/<id>/results`` — the serialised result text.

        Returned verbatim (not parsed) so the bytes written to disk are
        exactly what the store serialised — the byte-identity contract.
        """
        return self._request("GET", f"/jobs/{job_id}/results?format={fmt}",
                             raw=True)

    # ------------------------------------------------------------------
    def wait(self, job_id: str, *, timeout: Optional[float] = None,
             poll: float = 0.25) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; return its status."""
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        while True:
            status = self.job(job_id)
            if status["state"] in ("done", "failed", "cancelled"):
                return status
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(0, {
                    "error": "timeout",
                    "message": f"job {job_id} still {status['state']} "
                               f"after {timeout}s",
                })
            time.sleep(poll)
