"""Job model, state machine, and durable journal of the study daemon.

A submitted study spec becomes a :class:`Job`: identity, tenancy (the
``X-Client`` header), priority, the spec itself, and the path of the job's
:class:`~repro.study.store.RunStore` under the daemon's data root.  Every
job mutation — submission and each state transition — is one fsynced JSON
line in the append-only **jobs journal**, so a restarted daemon replays the
journal, finds jobs that were ``running`` when it died, and re-queues them;
the run store then resumes the actual work chunk-exactly.

The state machine::

    queued ──────► running ──────► done
      │               │ ├────────► failed
      │               │ └────────► cancelled
      └► cancelled    └► queued   (daemon restart re-queue only)

Transitions are validated under one registry lock, which is what makes a
racing cancel-vs-start well defined: exactly one of ``queued → running``
and ``queued → cancelled`` wins, and the loser observes the new state.
"""

from __future__ import annotations

import enum
import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Union

from repro.exceptions import ReproError
from repro.faults import crash_now, failpoint

__all__ = ["Job", "JobState", "JobJournal", "JobRegistry", "JobError"]


class JobError(ReproError):
    """Raised for invalid job operations (unknown id, bad transition)."""


class JobState(str, enum.Enum):
    """Lifecycle states of a service job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    def __str__(self) -> str:  # "queued", not "JobState.QUEUED"
        return self.value


#: States a job never leaves.
TERMINAL_STATES = frozenset(
    (JobState.DONE, JobState.FAILED, JobState.CANCELLED))

#: Allowed state transitions (see the module docstring's diagram).
_TRANSITIONS = {
    JobState.QUEUED: frozenset((JobState.RUNNING, JobState.CANCELLED)),
    JobState.RUNNING: frozenset(
        (JobState.DONE, JobState.FAILED, JobState.CANCELLED,
         JobState.QUEUED)),  # running → queued is the restart re-queue
    JobState.DONE: frozenset(),
    JobState.FAILED: frozenset(),
    JobState.CANCELLED: frozenset(),
}


@dataclass
class Job:
    """One submitted study: spec, tenancy, priority, and durable state.

    ``store`` is the job's run-store directory *relative to the daemon's
    data root*; identical plans share a store (it is keyed by the plan
    fingerprint), which is what lets a cancelled job's resubmission resume
    from the chunks the first attempt committed.
    """

    id: str
    spec: Dict[str, Any]
    client: str
    priority: int
    state: JobState
    created: float
    submit_index: int
    store: str
    fingerprint: str
    cells: int
    total_tasks: int
    name: Optional[str] = None
    started: Optional[float] = None
    finished: Optional[float] = None
    error: Optional[str] = None
    requeues: int = field(default=0)
    #: Most recent failure/requeue reason.  Unlike ``error`` (which only a
    #: terminal FAILED state carries), this survives recovery: a job that
    #: was re-queued after a daemon crash and then succeeded still shows
    #: why it flapped, so operators can spot unstable jobs from the
    #: listing without reading the journal.
    last_failure: Optional[str] = None

    @property
    def is_terminal(self) -> bool:
        """Whether the job has reached a final state."""
        return self.state in TERMINAL_STATES

    @property
    def is_active(self) -> bool:
        """Whether the job still counts against its client's quota."""
        return not self.is_terminal

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (journal line and API payload)."""
        return {
            "id": self.id,
            "spec": self.spec,
            "client": self.client,
            "priority": self.priority,
            "state": self.state.value,
            "created": self.created,
            "submit_index": self.submit_index,
            "store": self.store,
            "fingerprint": self.fingerprint,
            "cells": self.cells,
            "total_tasks": self.total_tasks,
            "name": self.name,
            "started": self.started,
            "finished": self.finished,
            "error": self.error,
            "requeues": self.requeues,
            "last_failure": self.last_failure,
        }

    def summary(self) -> Dict[str, Any]:
        """The compact listing form (``GET /jobs``): everything but the spec."""
        row = self.to_dict()
        del row["spec"]
        return row

    @classmethod
    def from_dict(cls, row: Mapping[str, Any]) -> "Job":
        """Rebuild a job from its :meth:`to_dict` form."""
        try:
            return cls(
                id=str(row["id"]),
                spec=dict(row["spec"]),
                client=str(row["client"]),
                priority=int(row["priority"]),
                state=JobState(row["state"]),
                created=float(row["created"]),
                submit_index=int(row["submit_index"]),
                store=str(row["store"]),
                fingerprint=str(row["fingerprint"]),
                cells=int(row["cells"]),
                total_tasks=int(row["total_tasks"]),
                name=row.get("name"),
                started=row.get("started"),
                finished=row.get("finished"),
                error=row.get("error"),
                requeues=int(row.get("requeues", 0)),
                last_failure=row.get("last_failure"),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise JobError(f"not a job record: {error}") from None


class JobJournal:
    """Append-only, fsynced JSONL journal of job events.

    Three event kinds: ``{"event": "submit", "job": {…}}`` records a new
    job in full, ``{"event": "state", "id", "state", "ts", …}`` records one
    transition, and ``{"event": "prune", "id", "ts"}`` records a terminal
    job garbage-collected by the TTL sweep (replay forgets the job, but
    ``submit_index`` numbering is preserved so resubmissions get fresh
    ids).  Like the run store's chunk log, a line is committed only
    once its trailing newline is on disk — a torn tail left by a kill is
    truncated away on the next open, an unreadable *committed* line raises.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle = None

    # ------------------------------------------------------------------
    def replay(self) -> Iterator[Dict[str, Any]]:
        """Yield every committed event, oldest first."""
        if not self.path.exists():
            return
        data = self.path.read_bytes()
        for raw in data.splitlines(keepends=True):
            if not raw.endswith(b"\n"):
                break  # torn tail: the append never completed
            line = raw.strip()
            if not line:
                continue
            try:
                event = json.loads(line.decode("utf-8"))
                str(event["event"])
            except (ValueError, KeyError) as error:
                raise JobError(
                    f"jobs journal {self.path} holds an unreadable "
                    f"committed entry: {error}; the journal is corrupt"
                ) from None
            yield event

    def open(self) -> None:
        """Open for appending, truncating any torn tail first."""
        if self._handle is not None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.path.exists():
            data = self.path.read_bytes()
            good = len(data)
            if data and not data.endswith(b"\n"):
                good = data.rfind(b"\n") + 1
            if good < len(data):
                with open(self.path, "rb+") as handle:
                    handle.truncate(good)
        self._handle = open(self.path, "ab")

    def append(self, event: Mapping[str, Any]) -> None:
        """Durably append one event (fsynced before returning).

        Failpoint ``service.journal.append`` can fail the append cleanly
        (``kind=error``, nothing written) or tear it (``kind=torn``: half
        the line reaches disk and the process dies, exactly the crash
        window the torn-tail truncation in :meth:`open` repairs).
        """
        action = failpoint("service.journal.append")
        if self._handle is None:
            self.open()
        line = (json.dumps(dict(event), separators=(",", ":"))
                + "\n").encode("utf-8")
        if action is not None and action.kind == "torn":
            self._handle.write(line[: max(1, len(line) // 2)])
            self._handle.flush()
            os.fsync(self._handle.fileno())
            crash_now(action)
        self._handle.write(line)
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Close the append handle (events stay durable)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class JobRegistry:
    """Thread-safe job table backed by the journal.

    All mutation goes through :meth:`add` and :meth:`try_transition`, both
    of which append the corresponding journal event *before* publishing
    the in-memory change — a crash between the two replays to the same
    state the mutation committed.
    """

    def __init__(self, journal: JobJournal) -> None:
        self.journal = journal
        self._jobs: Dict[str, Job] = {}
        self._lock = threading.RLock()
        self._next_index = 0

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def load(self) -> List[Job]:
        """Replay the journal and re-queue jobs interrupted mid-run.

        Returns the jobs that should (re-)enter the scheduler queue, in
        submission order: every job still ``queued``, plus every job found
        ``running`` — the daemon died under it — flipped back to
        ``queued`` (journalled, with its ``requeues`` count bumped).
        """
        with self._lock:
            for event in self.journal.replay():
                kind = event["event"]
                if kind == "submit":
                    job = Job.from_dict(event["job"])
                    self._jobs[job.id] = job
                    self._next_index = max(self._next_index,
                                           job.submit_index + 1)
                elif kind == "state":
                    job = self._jobs.get(str(event["id"]))
                    if job is None:
                        raise JobError(
                            f"jobs journal transitions unknown job "
                            f"{event.get('id')!r}; the journal is corrupt"
                        )
                    self._apply(job, event)
                elif kind == "prune":
                    self._jobs.pop(str(event["id"]), None)
            self.journal.open()
            pending: List[Job] = []
            for job in sorted(self._jobs.values(),
                              key=lambda j: j.submit_index):
                if job.state is JobState.RUNNING:
                    # The previous daemon died mid-job; its store holds the
                    # chunks that completed, so re-queue for a resume.
                    self._record_transition(job, JobState.QUEUED,
                                            requeued=True)
                if job.state is JobState.QUEUED:
                    pending.append(job)
            return pending

    @staticmethod
    def _apply(job: Job, event: Mapping[str, Any]) -> None:
        job.state = JobState(event["state"])
        if "started" in event:
            job.started = event["started"]
        if "finished" in event:
            job.finished = event["finished"]
        if event.get("error") is not None:
            job.error = str(event["error"])
            job.last_failure = str(event["error"])
        if event.get("requeued"):
            job.requeues += 1
            job.last_failure = str(
                event.get("failure") or "daemon restarted mid-run")

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, job: Job) -> None:
        """Journal and publish a freshly submitted job."""
        with self._lock:
            if job.id in self._jobs:
                raise JobError(f"duplicate job id {job.id!r}")
            self.journal.append({"event": "submit", "job": job.to_dict()})
            self._jobs[job.id] = job
            self._next_index = max(self._next_index, job.submit_index + 1)

    def next_index(self) -> int:
        """Reserve the next submission index (also names the job)."""
        with self._lock:
            index = self._next_index
            self._next_index += 1
            return index

    def try_transition(self, job_id: str, state: JobState, *,
                       error: Optional[str] = None,
                       requeued: bool = False,
                       failure: Optional[str] = None) -> bool:
        """Atomically move a job to ``state`` if the move is legal.

        Returns ``False`` (without journalling) when the job is not in a
        state that allows the transition — the caller lost a race (e.g.
        cancel beat start) and should re-read the job.  Raises for an
        unknown job id.  ``failure`` records a requeue reason in the
        job's ``last_failure`` without marking it failed.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise JobError(f"unknown job {job_id!r}")
            if state not in _TRANSITIONS[job.state]:
                return False
            self._record_transition(job, state, error=error,
                                    requeued=requeued, failure=failure)
            return True

    def _record_transition(self, job: Job, state: JobState, *,
                           error: Optional[str] = None,
                           requeued: bool = False,
                           failure: Optional[str] = None) -> None:
        event: Dict[str, Any] = {
            "event": "state",
            "id": job.id,
            "state": state.value,
            "ts": time.time(),
        }
        if state is JobState.RUNNING:
            event["started"] = event["ts"]
        if state in TERMINAL_STATES:
            event["finished"] = event["ts"]
        if error is not None:
            event["error"] = error
        if requeued:
            event["requeued"] = True
        if failure is not None:
            event["failure"] = failure
        self.journal.append(event)
        self._apply(job, event)

    def prune(self, job_id: str) -> Job:
        """Journal and forget a *terminal* job (the TTL garbage collector).

        The prune event is appended before the in-memory removal, so a
        crash between the two replays to the pruned state.  Returns the
        removed job so the caller can delete its on-disk artifacts.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise JobError(f"unknown job {job_id!r}")
            if not job.is_terminal:
                raise JobError(
                    f"job {job_id} is {job.state}; only done/failed/"
                    f"cancelled jobs can be pruned"
                )
            self.journal.append({"event": "prune", "id": job.id,
                                 "ts": time.time()})
            del self._jobs[job.id]
            return job

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Job:
        """The job with ``job_id`` (raises :class:`JobError` if unknown)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise JobError(f"unknown job {job_id!r}")
            return job

    def jobs(self, *, client: Optional[str] = None,
             state: Optional[JobState] = None) -> List[Job]:
        """All jobs (optionally filtered), in submission order."""
        with self._lock:
            selected = [
                job for job in self._jobs.values()
                if (client is None or job.client == client)
                and (state is None or job.state is state)
            ]
        return sorted(selected, key=lambda j: j.submit_index)

    def active_count(self, client: str) -> int:
        """Queued + running jobs of one client (the quota measure)."""
        with self._lock:
            return sum(1 for job in self._jobs.values()
                       if job.client == client and job.is_active)

    def state_counts(self) -> Dict[str, int]:
        """Number of jobs per state (the health endpoint's payload)."""
        counts = {state.value: 0 for state in JobState}
        with self._lock:
            for job in self._jobs.values():
                counts[job.state.value] += 1
        return counts
