"""Fleet worker: a long-running process pulling chunk leases over a socket.

A worker is deliberately dumb: connect, say ``hello``, then loop —
``ready`` → execute the lease through the ordinary
:meth:`~repro.engine.compiler.CompiledCell.execute_batch` cores → ``result``
(whose reply is already the next assignment).  All sweep intelligence
(reassignment, stealing, dedup) lives in the coordinator; the worker's only
promises are that it executes chunks with the stock deterministic cores
(so results are bit-identical to a local run) and that it fetches each
compiled cell at most once.

Cell caching reuses the engine's artifact-cache tier under the same
``"cell"`` namespace and fingerprint keys the compile stage uses: a worker
given ``--cache-dir`` (or ``REPRO_CACHE_DIR``) keeps cells across restarts
in a :class:`~repro.engine.cache.PersistentArtifactCache` — and a worker
pointed at a machine-local cache that already compiled a cell never needs
it shipped at all.

Lifecycle: connection loss (coordinator restart, network blip) falls back
to a reconnect loop with *jittered* exponential backoff — jitter drawn
from the worker's seeded RNG, so a hundred workers losing one coordinator
do not reconnect in lock-step (thundering herd) yet every test replay is
reproducible.  Errors are classified: socket-level disconnects are
retryable; protocol-level rejections (version skew, handshake refusal —
:class:`~repro.exceptions.FleetProtocolError`) are fatal, because retrying
an incompatible coordinator can never succeed.  The worker exits cleanly
on a ``shutdown`` frame, on :meth:`FleetWorker.stop`, or when it cannot
(re)connect within its ``retry`` window.

While a lease executes, a heartbeat thread sends one-way ``heartbeat``
frames so the coordinator's idle timeout can tell "busy executing" from
"silently gone" (a TCP partition leaves the connection ESTABLISHED but
mute); see :class:`~repro.fleet.coordinator.FleetCoordinator`.
"""

from __future__ import annotations

import os
import socket
import sys
import threading
import time
from random import Random
from typing import Any, Dict, Optional, Union

from repro.engine.cache import ArtifactCache, default_cache
from repro.exceptions import FleetError, FleetProtocolError
from repro.faults import failpoint
from repro.fleet import protocol
from repro.fleet.protocol import parse_address, recv_message, send_message

__all__ = ["FleetWorker"]

#: Namespace shared with the compile stage's artifact cache, so locally
#: compiled and coordinator-shipped cells are the same cache entries.
CELL_NAMESPACE = "cell"

#: Socket timeout for handshake and assignment replies.  The coordinator
#: answers every worker frame immediately (a handler thread per
#: connection), so a silent half-minute means the link is gone.  The
#: ``REPRO_FLEET_REPLY_TIMEOUT`` environment variable overrides it (the
#: chaos soak shortens it so dropped frames cost seconds, not minutes).
_REPLY_TIMEOUT = 30.0

REPLY_TIMEOUT_ENV_VAR = "REPRO_FLEET_REPLY_TIMEOUT"

#: Reconnect backoff: exponential from base to cap, each sleep scaled by
#: a jitter factor in [0.5, 1.0) drawn from the worker's seeded RNG.
_BACKOFF_BASE = 0.1
_BACKOFF_CAP = 2.0

#: Seconds between heartbeat frames while executing a lease.  Must be
#: comfortably below the coordinator's idle timeout.
DEFAULT_HEARTBEAT = 5.0


class FleetWorker:
    """Pull-execute-report loop against one coordinator address.

    Parameters
    ----------
    connect:
        Coordinator ``host:port``.
    name:
        Worker name shown in coordinator stats; defaults to
        ``<hostname>-<pid>`` (the coordinator uniquifies collisions).
    cache / cache_dir:
        Compiled-cell cache.  Pass an :class:`ArtifactCache` to share one
        (tests do), or a directory for a persistent disk tier; the default
        honours ``REPRO_CACHE_DIR`` like the rest of the engine.
    retry:
        Seconds to keep retrying a failed (re)connect before giving up.
    seed:
        Seed for the worker's RNG (reconnect jitter).  Defaults to a
        deterministic function of the worker name, so named workers in
        tests replay exactly while distinct workers de-correlate.
    heartbeat:
        Seconds between liveness frames while a lease executes (0
        disables the heartbeat thread).
    quiet:
        Suppress the per-event stderr log lines.
    """

    def __init__(self, connect: str, *, name: Optional[str] = None,
                 cache: Optional[ArtifactCache] = None,
                 cache_dir: Union[None, str, os.PathLike] = None,
                 retry: float = 30.0, seed: Optional[int] = None,
                 heartbeat: float = DEFAULT_HEARTBEAT,
                 quiet: bool = False) -> None:
        self.host, self.port = parse_address(connect)
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self.cache = cache if cache is not None else default_cache(cache_dir)
        self.retry = float(retry)
        self.heartbeat = float(heartbeat)
        self.quiet = quiet
        self.chunks_executed = 0
        self.seeds_executed = 0
        self.cells_fetched = 0
        self._rng = Random(seed if seed is not None
                           else f"fleet-worker:{self.name}")
        self._reply_timeout = float(
            os.environ.get(REPLY_TIMEOUT_ENV_VAR) or _REPLY_TIMEOUT)
        self._stop = threading.Event()
        self._send_lock = threading.Lock()
        self._connected_once = False

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Ask the worker loop to exit at the next poll/retry point."""
        self._stop.set()

    def run(self) -> int:
        """Serve until shutdown; returns a process exit code.

        ``0``: clean shutdown (coordinator said so, :meth:`stop` was
        called, or the coordinator went away after at least one successful
        session).  ``1``: never reached a coordinator within ``retry``.
        ``2``: fatal protocol error (version skew, handshake rejection) —
        retrying cannot succeed, an operator must upgrade or reconfigure.
        """
        backoff = _BACKOFF_BASE
        deadline = time.monotonic() + self.retry
        while not self._stop.is_set():
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self._reply_timeout)
            except OSError:
                if time.monotonic() >= deadline:
                    self._log("giving up: no coordinator at "
                              f"{self.host}:{self.port} for {self.retry:g}s")
                    return 0 if self._connected_once else 1
                # Jitter each sleep so a fleet reconnecting to a restarted
                # coordinator spreads out instead of stampeding in sync;
                # the factor comes from the worker's seeded RNG, keeping
                # replays exact.
                self._stop.wait(self._jittered(backoff))
                backoff = min(backoff * 2, _BACKOFF_CAP)
                continue
            backoff = _BACKOFF_BASE
            try:
                finished = self._serve(sock)
            except FleetProtocolError as error:
                self._log(f"fatal: {error}")
                return 2
            except (OSError, FleetError) as error:
                self._log(f"connection lost (will retry): {error}")
                finished = False
            finally:
                sock.close()
            if finished:
                return 0
            deadline = time.monotonic() + self.retry
        return 0

    def _jittered(self, backoff: float) -> float:
        """``backoff`` scaled into [0.5, 1.0) of itself, seeded-random."""
        return backoff * (0.5 + 0.5 * self._rng.random())

    # ------------------------------------------------------------------
    def _serve(self, sock: socket.socket) -> bool:
        """One connected session; ``True`` when told to shut down."""
        sock.settimeout(self._reply_timeout)
        self._send(sock, {
            "type": protocol.HELLO,
            "version": protocol.PROTOCOL_VERSION,
            "worker": self.name,
            "pid": os.getpid(),
        })
        welcome = self._reply(sock)
        if welcome["type"] == protocol.ERROR:
            # The coordinator refused the handshake (version skew or an
            # explicit rejection): no amount of reconnecting fixes that.
            raise FleetProtocolError(
                f"coordinator rejected worker: {welcome.get('reason')}")
        if welcome["type"] != protocol.WELCOME \
                or welcome.get("version") != protocol.PROTOCOL_VERSION:
            raise FleetProtocolError(
                f"unexpected handshake reply {welcome!r}")
        self._connected_once = True
        self._log(f"connected to {self.host}:{self.port} "
                  f"as {welcome.get('worker', self.name)!r}")
        beat_stop = threading.Event()
        beat = None
        if self.heartbeat > 0:
            beat = threading.Thread(
                target=self._heartbeat_loop, args=(sock, beat_stop),
                name=f"{self.name}-heartbeat", daemon=True)
            beat.start()
        try:
            assignment = self._rpc(sock, {"type": protocol.READY})
            while True:
                if self._stop.is_set():
                    return True
                kind = assignment["type"]
                if kind == protocol.SHUTDOWN:
                    self._log("coordinator sent shutdown")
                    return True
                if kind == protocol.WAIT:
                    if self._stop.wait(float(assignment.get("poll", 0.25))):
                        return True
                    assignment = self._rpc(sock, {"type": protocol.READY})
                elif kind == protocol.LEASE:
                    assignment = self._execute_lease(sock, assignment)
                elif kind == protocol.ERROR:
                    raise FleetError(str(assignment.get("reason")))
                else:
                    raise FleetError(f"unexpected message type {kind!r}")
        finally:
            beat_stop.set()
            if beat is not None:
                beat.join(timeout=1.0)

    def _heartbeat_loop(self, sock: socket.socket,
                        stop: threading.Event) -> None:
        """Send one-way liveness frames until the session ends.

        Runs beside the main loop so the coordinator keeps hearing from
        the worker even while a long lease executes; a send failure just
        ends the thread — the main loop sees the broken socket itself.
        """
        while not stop.wait(self.heartbeat):
            try:
                self._send(sock, {"type": protocol.HEARTBEAT,
                                  "worker": self.name})
            except (OSError, FleetError):
                return

    def _execute_lease(self, sock: socket.socket,
                       lease: Dict[str, Any]) -> Dict[str, Any]:
        key = str(lease["cell"])
        cell = self.cache.get(CELL_NAMESPACE, key)
        if cell is None:
            reply = self._rpc(
                sock, {"type": protocol.CELL_REQUEST, "cell": key})
            if reply["type"] != protocol.CELL:
                raise FleetError(
                    f"cell fetch failed: {reply.get('reason', reply['type'])}")
            cell = protocol.unpack_payload(reply["payload"])
            self.cache.put(CELL_NAMESPACE, key, cell)
            self.cells_fetched += 1
            self._log(f"fetched cell {key[:12]}…")
        seeds = [int(seed) for seed in lease["seeds"]]
        failpoint("fleet.worker.crash_before_execute")
        try:
            results = cell.execute_batch(seeds)
        except Exception as error:  # deliberate: report, don't die
            self._log(f"chunk {lease['chunk']} failed: {error}")
            return self._rpc(sock, {
                "type": protocol.FAILURE,
                "lease": lease["lease"],
                "chunk": lease["chunk"],
                "message": f"{type(error).__name__}: {error}",
            })
        failpoint("fleet.worker.crash_before_report")
        self.chunks_executed += 1
        self.seeds_executed += len(seeds)
        return self._rpc(sock, {
            "type": protocol.RESULT,
            "lease": lease["lease"],
            "chunk": lease["chunk"],
            "cell": key,
            "payload": protocol.pack_payload(results),
        })

    # ------------------------------------------------------------------
    def _send(self, sock: socket.socket, message: Dict[str, Any]) -> None:
        # The send lock keeps heartbeat frames from interleaving with
        # request frames mid-write; receives stay main-thread-only.
        with self._send_lock:
            send_message(sock, message)

    def _rpc(self, sock: socket.socket,
             message: Dict[str, Any]) -> Dict[str, Any]:
        self._send(sock, message)
        return self._reply(sock)

    def _reply(self, sock: socket.socket) -> Dict[str, Any]:
        reply = recv_message(sock)
        if reply is None:
            raise FleetError("coordinator closed the connection")
        return reply

    def _log(self, text: str) -> None:
        if not self.quiet:
            print(f"fleet worker {self.name}: {text}",
                  file=sys.stderr, flush=True)
