"""Fleet worker: a long-running process pulling chunk leases over a socket.

A worker is deliberately dumb: connect, say ``hello``, then loop —
``ready`` → execute the lease through the ordinary
:meth:`~repro.engine.compiler.CompiledCell.execute_batch` cores → ``result``
(whose reply is already the next assignment).  All sweep intelligence
(reassignment, stealing, dedup) lives in the coordinator; the worker's only
promises are that it executes chunks with the stock deterministic cores
(so results are bit-identical to a local run) and that it fetches each
compiled cell at most once.

Cell caching reuses the engine's artifact-cache tier under the same
``"cell"`` namespace and fingerprint keys the compile stage uses: a worker
given ``--cache-dir`` (or ``REPRO_CACHE_DIR``) keeps cells across restarts
in a :class:`~repro.engine.cache.PersistentArtifactCache` — and a worker
pointed at a machine-local cache that already compiled a cell never needs
it shipped at all.

Lifecycle: connection loss (coordinator restart, network blip) falls back
to a reconnect loop with exponential backoff; the worker exits cleanly on
a ``shutdown`` frame, on :meth:`FleetWorker.stop`, or when it cannot
(re)connect within its ``retry`` window.
"""

from __future__ import annotations

import os
import socket
import sys
import threading
import time
from typing import Any, Dict, Optional, Union

from repro.engine.cache import ArtifactCache, default_cache
from repro.exceptions import FleetError
from repro.fleet import protocol
from repro.fleet.protocol import parse_address, recv_message, send_message

__all__ = ["FleetWorker"]

#: Namespace shared with the compile stage's artifact cache, so locally
#: compiled and coordinator-shipped cells are the same cache entries.
CELL_NAMESPACE = "cell"

#: Socket timeout for handshake and assignment replies.  The coordinator
#: answers every worker frame immediately (a handler thread per
#: connection), so a silent half-minute means the link is gone.
_REPLY_TIMEOUT = 30.0


class FleetWorker:
    """Pull-execute-report loop against one coordinator address.

    Parameters
    ----------
    connect:
        Coordinator ``host:port``.
    name:
        Worker name shown in coordinator stats; defaults to
        ``<hostname>-<pid>`` (the coordinator uniquifies collisions).
    cache / cache_dir:
        Compiled-cell cache.  Pass an :class:`ArtifactCache` to share one
        (tests do), or a directory for a persistent disk tier; the default
        honours ``REPRO_CACHE_DIR`` like the rest of the engine.
    retry:
        Seconds to keep retrying a failed (re)connect before giving up.
    quiet:
        Suppress the per-event stderr log lines.
    """

    def __init__(self, connect: str, *, name: Optional[str] = None,
                 cache: Optional[ArtifactCache] = None,
                 cache_dir: Union[None, str, os.PathLike] = None,
                 retry: float = 30.0, quiet: bool = False) -> None:
        self.host, self.port = parse_address(connect)
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self.cache = cache if cache is not None else default_cache(cache_dir)
        self.retry = float(retry)
        self.quiet = quiet
        self.chunks_executed = 0
        self.seeds_executed = 0
        self.cells_fetched = 0
        self._stop = threading.Event()
        self._connected_once = False

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Ask the worker loop to exit at the next poll/retry point."""
        self._stop.set()

    def run(self) -> int:
        """Serve until shutdown; returns a process exit code.

        ``0``: clean shutdown (coordinator said so, :meth:`stop` was
        called, or the coordinator went away after at least one successful
        session).  ``1``: never reached a coordinator within ``retry``.
        """
        backoff = 0.1
        deadline = time.monotonic() + self.retry
        while not self._stop.is_set():
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=_REPLY_TIMEOUT)
            except OSError:
                if time.monotonic() >= deadline:
                    self._log("giving up: no coordinator at "
                              f"{self.host}:{self.port} for {self.retry:g}s")
                    return 0 if self._connected_once else 1
                self._stop.wait(backoff)
                backoff = min(backoff * 2, 2.0)
                continue
            backoff = 0.1
            try:
                finished = self._serve(sock)
            except (OSError, FleetError) as error:
                self._log(f"connection lost: {error}")
                finished = False
            finally:
                sock.close()
            if finished:
                return 0
            deadline = time.monotonic() + self.retry
        return 0

    # ------------------------------------------------------------------
    def _serve(self, sock: socket.socket) -> bool:
        """One connected session; ``True`` when told to shut down."""
        sock.settimeout(_REPLY_TIMEOUT)
        send_message(sock, {
            "type": protocol.HELLO,
            "version": protocol.PROTOCOL_VERSION,
            "worker": self.name,
            "pid": os.getpid(),
        })
        welcome = self._reply(sock)
        if welcome["type"] == protocol.ERROR:
            raise FleetError(
                f"coordinator rejected worker: {welcome.get('reason')}")
        if welcome["type"] != protocol.WELCOME \
                or welcome.get("version") != protocol.PROTOCOL_VERSION:
            raise FleetError(f"unexpected handshake reply {welcome!r}")
        self._connected_once = True
        self._log(f"connected to {self.host}:{self.port} "
                  f"as {welcome.get('worker', self.name)!r}")
        assignment = self._rpc(sock, {"type": protocol.READY})
        while True:
            if self._stop.is_set():
                return True
            kind = assignment["type"]
            if kind == protocol.SHUTDOWN:
                self._log("coordinator sent shutdown")
                return True
            if kind == protocol.WAIT:
                if self._stop.wait(float(assignment.get("poll", 0.25))):
                    return True
                assignment = self._rpc(sock, {"type": protocol.READY})
            elif kind == protocol.LEASE:
                assignment = self._execute_lease(sock, assignment)
            elif kind == protocol.ERROR:
                raise FleetError(str(assignment.get("reason")))
            else:
                raise FleetError(f"unexpected message type {kind!r}")

    def _execute_lease(self, sock: socket.socket,
                       lease: Dict[str, Any]) -> Dict[str, Any]:
        key = str(lease["cell"])
        cell = self.cache.get(CELL_NAMESPACE, key)
        if cell is None:
            reply = self._rpc(
                sock, {"type": protocol.CELL_REQUEST, "cell": key})
            if reply["type"] != protocol.CELL:
                raise FleetError(
                    f"cell fetch failed: {reply.get('reason', reply['type'])}")
            cell = protocol.unpack_payload(reply["payload"])
            self.cache.put(CELL_NAMESPACE, key, cell)
            self.cells_fetched += 1
            self._log(f"fetched cell {key[:12]}…")
        seeds = [int(seed) for seed in lease["seeds"]]
        try:
            results = cell.execute_batch(seeds)
        except Exception as error:  # deliberate: report, don't die
            self._log(f"chunk {lease['chunk']} failed: {error}")
            return self._rpc(sock, {
                "type": protocol.FAILURE,
                "lease": lease["lease"],
                "chunk": lease["chunk"],
                "message": f"{type(error).__name__}: {error}",
            })
        self.chunks_executed += 1
        self.seeds_executed += len(seeds)
        return self._rpc(sock, {
            "type": protocol.RESULT,
            "lease": lease["lease"],
            "chunk": lease["chunk"],
            "cell": key,
            "payload": protocol.pack_payload(results),
        })

    # ------------------------------------------------------------------
    def _rpc(self, sock: socket.socket,
             message: Dict[str, Any]) -> Dict[str, Any]:
        send_message(sock, message)
        return self._reply(sock)

    def _reply(self, sock: socket.socket) -> Dict[str, Any]:
        reply = recv_message(sock)
        if reply is None:
            raise FleetError("coordinator closed the connection")
        return reply

    def _log(self, text: str) -> None:
        if not self.quiet:
            print(f"fleet worker {self.name}: {text}",
                  file=sys.stderr, flush=True)
