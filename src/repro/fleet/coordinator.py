"""Fleet coordinator: a lease table served to workers over sockets.

The coordinator owns the listening socket and the sweep state; it never
executes a chunk itself.  A sweep is submitted as an ordered list of
``(cell-fingerprint, seed-chunk)`` pairs; each chunk is then handed to
workers as a *lease* — an assignment with an id and a deadline — and the
chunk is done when the first result for it arrives, no matter which lease
produced it.  That first-result-wins rule is what makes every fault story
below collapse into "issue another lease":

* **worker leaves / is killed** — its connection drops, its leases are
  released and the chunks return to the pending queue immediately (the
  lease deadline is only the backstop for workers that hang while staying
  connected);
* **worker joins late** — it sends ``ready`` and is served from whatever
  is still pending;
* **tail stealing** — when the pending queue is empty but chunks are still
  in flight, an idle worker is issued a *duplicate* lease on the
  least-covered outstanding chunk, so one slow or dying worker cannot
  stall the sweep's tail.  Duplicate results are dropped here, and the
  durable layer (``RunStore.append_chunk``) is idempotent anyway, so a
  chunk executed twice commits once.

Compiled cells are shipped on demand: a worker that lacks a fingerprint
asks with ``cell-request`` exactly once and caches the cell, so a sweep
ships each cell to each worker at most once — :meth:`FleetCoordinator.stats`
tracks per-``(worker, cell)`` ship counts so tests can pin that invariant.

Two circuit breakers guard the lease table against pathological workers:

* **heartbeat idle-timeout** — every accepted connection carries a read
  timeout (:data:`DEFAULT_HEARTBEAT_TIMEOUT`).  Workers send one-way
  ``heartbeat`` frames while executing, so a connection that stays silent
  past the deadline is *dead*, not busy — a TCP partition leaves the
  socket ESTABLISHED forever otherwise — and its leases are released
  immediately instead of waiting out the (much longer) lease reaper
  deadline;
* **per-worker quarantine** — a worker whose leases keep failing
  (:attr:`quarantine_after` reported failures) is benched for
  :attr:`quarantine_period` seconds: it stays connected and polling but
  receives ``wait`` instead of leases, so one bad host (broken numpy,
  corrupt cache, flaky disk) cannot burn through every chunk's attempt
  budget.

Threading model: one accept thread, one handler thread per connection, one
reaper thread expiring leases.  All sweep state lives behind one lock;
completed batches cross to the submitting thread over a queue.
"""

from __future__ import annotations

import os
import socket
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass
from queue import Queue
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.exceptions import FleetError
from repro.faults import failpoint
from repro.fleet import protocol
from repro.fleet.protocol import format_address, recv_message, send_message

__all__ = ["FleetCoordinator", "FleetSweep", "DEFAULT_LEASE_TIMEOUT",
           "DEFAULT_HEARTBEAT_TIMEOUT"]

#: Backstop deadline for a lease whose worker stays connected but silent.
DEFAULT_LEASE_TIMEOUT = 120.0

#: How often idle workers re-ask for work and the reaper scans deadlines.
DEFAULT_POLL = 0.25

#: Idle timeout on accepted worker connections.  Workers heartbeat every
#: ~5 s even while executing, so a connection silent this long is a dead
#: peer (SIGKILL without FIN, network partition), and its leases are
#: released long before the lease reaper's deadline.  Must stay well
#: above the worker heartbeat interval and below the lease timeout.
DEFAULT_HEARTBEAT_TIMEOUT = 30.0

#: Reported failures before a worker is quarantined (circuit breaker).
DEFAULT_QUARANTINE_AFTER = 3

#: Seconds a quarantined worker is served ``wait`` instead of leases.
DEFAULT_QUARANTINE_PERIOD = 60.0

#: Duplicate-lease cap per chunk: stealing covers a dying worker without
#: letting every idle worker pile onto the same tail chunk.
MAX_LEASES_PER_CHUNK = 2

#: A chunk failing on this many distinct leases fails the sweep (a
#: deterministic execution error will not heal by reassignment).
MAX_CHUNK_ATTEMPTS = 3


@dataclass(frozen=True)
class WorkChunk:
    """One leased unit: replay ``seeds`` through the cell ``cell_key``."""

    index: int
    cell_key: str
    seeds: Tuple[int, ...]


@dataclass
class _Lease:
    id: int
    chunk: int
    worker: str
    deadline: float


class _WorkerLink:
    """Per-connection state: the socket and the uniquified worker name."""

    def __init__(self, name: str, sock: socket.socket) -> None:
        self.name = name
        self.sock = sock


class FleetSweep:
    """Handle on one submitted batch of chunks.

    ``completions`` yields ``(chunk_index, results)`` in completion order;
    a ``None`` sentinel means the sweep failed and :attr:`error` says why.
    """

    def __init__(self, chunks: List[WorkChunk]) -> None:
        self.chunks = chunks
        self.pending: deque = deque(range(len(chunks)))
        self.chunk_leases: Dict[int, Set[int]] = {}
        self.attempts: List[int] = [0] * len(chunks)
        self.done: Set[int] = set()
        self.completions: "Queue[Optional[Tuple[int, list]]]" = Queue()
        self.error: Optional[FleetError] = None

    @property
    def remaining(self) -> int:
        return len(self.chunks) - len(self.done)


class FleetCoordinator:
    """Serve ``(cell, seed-chunk)`` leases to fleet workers.

    Parameters
    ----------
    host, port:
        Bind address; port ``0`` picks a free port (see :attr:`address`).
    lease_timeout:
        Seconds before an unanswered lease expires and its chunk is
        reassigned.  Worker *disconnects* release leases immediately; the
        timeout only covers workers that hang while staying connected.
    poll:
        Idle-worker re-poll interval, also the reaper scan period.
    heartbeat_timeout:
        Read timeout on worker connections; a connection silent this long
        is dropped and its leases released (0 disables — never idle out).
    quarantine_after / quarantine_period:
        Circuit breaker: after this many reported lease failures a worker
        is served ``wait`` instead of leases for this many seconds
        (``quarantine_after=0`` disables the breaker).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
                 poll: float = DEFAULT_POLL,
                 heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
                 quarantine_after: int = DEFAULT_QUARANTINE_AFTER,
                 quarantine_period: float = DEFAULT_QUARANTINE_PERIOD) -> None:
        if lease_timeout <= 0:
            raise FleetError("lease timeout must be positive")
        if heartbeat_timeout < 0 or quarantine_after < 0 \
                or quarantine_period < 0:
            raise FleetError(
                "heartbeat timeout and quarantine settings must be >= 0")
        self.host = host
        self.port = port
        self.lease_timeout = float(lease_timeout)
        self.poll = float(poll)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.quarantine_after = int(quarantine_after)
        self.quarantine_period = float(quarantine_period)
        self._lock = threading.Lock()
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._links: Dict[str, _WorkerLink] = {}
        self._sweep: Optional[FleetSweep] = None
        self._leases: Dict[int, _Lease] = {}
        self._lease_counter = 0
        self._worker_counter = 0
        self._closing = False
        self._started = False
        # Cells available for shipping: live objects plus a pickled-frame
        # cache so a cell is pickled once per coordinator, not per worker.
        self._cells: Dict[str, Any] = {}
        self._cell_frames: Dict[str, str] = {}
        # Counters surfaced by stats().
        self._ships: Dict[Tuple[str, str], int] = {}
        self._workers_seen = 0
        self._chunks_done = 0
        self._chunks_stolen = 0
        self._leases_issued = 0
        self._leases_expired = 0
        self._duplicate_results = 0
        self._heartbeat_disconnects = 0
        self._workers_quarantined = 0
        # Per-worker accounting (persists across reconnects of one name):
        # chunks/seeds completed, reported failures, first-seen time for
        # throughput, and the quarantine deadline.
        self._worker_stats: Dict[str, Dict[str, float]] = {}
        self._quarantined_until: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "FleetCoordinator":
        """Bind, listen, and start the accept + reaper threads."""
        with self._lock:
            if self._started:
                return self
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            try:
                listener.bind((self.host, self.port))
            except OSError as error:
                listener.close()
                raise FleetError(
                    f"cannot bind fleet coordinator to "
                    f"{self.host}:{self.port}: {error}"
                ) from error
            listener.listen(64)
            self._listener = listener
            self.port = listener.getsockname()[1]
            self._started = True
        for target, name in ((self._accept_loop, "fleet-accept"),
                             (self._reaper_loop, "fleet-reaper")):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    @property
    def address(self) -> str:
        """The actual ``host:port`` the coordinator is (or will be) bound to."""
        return format_address((self.host, self.port))

    def worker_count(self) -> int:
        """Number of currently connected workers."""
        with self._lock:
            return len(self._links)

    def close(self) -> None:
        """Stop accepting, drop every worker connection, join the threads.

        Connected workers see EOF and fall back to their reconnect loop;
        in-flight sweep state is abandoned (callers drain or discard their
        :class:`FleetSweep` themselves).
        """
        with self._lock:
            if self._closing:
                return
            self._closing = True
            listener, self._listener = self._listener, None
            links = list(self._links.values())
            sweep = self._sweep
        if listener is not None:
            listener.close()
        for link in links:
            try:
                link.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            link.sock.close()
        if sweep is not None and sweep.remaining:
            sweep.error = FleetError("coordinator closed mid-sweep")
            sweep.completions.put(None)
        for thread in list(self._threads):
            thread.join(timeout=2.0)

    # ------------------------------------------------------------------
    # sweep submission
    # ------------------------------------------------------------------
    def submit(self, chunks: Sequence[Tuple[str, Sequence[int]]],
               cells: Mapping[str, Any]) -> FleetSweep:
        """Queue a sweep of ``(cell_key, seeds)`` chunks for the fleet.

        ``cells`` maps every referenced fingerprint to its compiled cell
        (shipped on demand to workers that lack it).  Only one sweep may
        be in flight per coordinator.
        """
        self.start()
        work = [WorkChunk(index, key, tuple(int(s) for s in seeds))
                for index, (key, seeds) in enumerate(chunks)]
        sweep = FleetSweep(work)
        with self._lock:
            if self._closing:
                raise FleetError("coordinator is closed")
            if self._sweep is not None and self._sweep.remaining \
                    and self._sweep.error is None:
                raise FleetError("a fleet sweep is already in flight")
            missing = {chunk.cell_key for chunk in work} - set(cells) \
                - set(self._cells)
            if missing:
                raise FleetError(
                    f"sweep references {len(missing)} cell(s) with no "
                    f"compiled artifact to ship"
                )
            self._cells.update(cells)
            self._sweep = sweep
            idle = not self._links
        if idle and work:
            print(
                f"fleet: no workers connected yet; waiting on {self.address} "
                f"(start one with `python -m repro worker "
                f"--connect {self.address}`)",
                file=sys.stderr,
            )
        return sweep

    def abort_sweep(self, sweep: FleetSweep) -> None:
        """Abandon ``sweep`` so a new one can be submitted.

        Called by the backend when the *consuming* side fails mid-sweep —
        e.g. the result sink's store raises ``ENOSPC`` — so the sweep in
        flight does not wedge the coordinator.  Outstanding leases are
        dropped; late results for the abandoned sweep are counted as
        duplicates and discarded.
        """
        with self._lock:
            if self._sweep is not sweep:
                return
            self._sweep = None
            self._leases.clear()

    def stats(self) -> Dict[str, Any]:
        """Counters for operators and the ship-at-most-once assertions.

        ``per_worker`` carries each worker's chunk/seed throughput
        (measured from its first connection) plus failure and quarantine
        state, so operators can spot a slow or flapping host from
        ``repro status``/``/healthz`` without reading coordinator logs.
        """
        with self._lock:
            now = time.monotonic()
            ships_by_worker: Dict[str, int] = {}
            for (worker, _key), count in self._ships.items():
                ships_by_worker[worker] = ships_by_worker.get(worker, 0) + count
            per_worker: Dict[str, Dict[str, Any]] = {}
            for name, acc in sorted(self._worker_stats.items()):
                elapsed = max(now - acc["since"], 1e-9)
                per_worker[name] = {
                    "connected": name in self._links,
                    "chunks": int(acc["chunks"]),
                    "seeds": int(acc["seeds"]),
                    "chunks_per_s": round(acc["chunks"] / elapsed, 3),
                    "seeds_per_s": round(acc["seeds"] / elapsed, 3),
                    "failures": int(acc["failures"]),
                    "quarantined":
                        self._quarantined_until.get(name, 0.0) > now,
                }
            return {
                "address": self.address,
                "workers": len(self._links),
                "workers_seen": self._workers_seen,
                "chunks_done": self._chunks_done,
                "chunks_stolen": self._chunks_stolen,
                "leases_issued": self._leases_issued,
                "leases_expired": self._leases_expired,
                "duplicate_results": self._duplicate_results,
                "heartbeat_disconnects": self._heartbeat_disconnects,
                "workers_quarantined": self._workers_quarantined,
                "quarantined_now": sorted(
                    name for name, until in self._quarantined_until.items()
                    if until > now),
                "per_worker": per_worker,
                "cells_shipped": sum(self._ships.values()),
                "ships_by_worker": ships_by_worker,
                "max_ships_per_cell_worker":
                    max(self._ships.values(), default=0),
            }

    def _worker_acc(self, name: str) -> Dict[str, float]:
        """The per-worker accumulator, created on first reference
        (call with ``self._lock`` held)."""
        acc = self._worker_stats.get(name)
        if acc is None:
            acc = {"chunks": 0.0, "seeds": 0.0, "failures": 0.0,
                   "since": time.monotonic()}
            self._worker_stats[name] = acc
        return acc

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            with self._lock:
                listener = self._listener
            if listener is None:
                return
            try:
                sock, _addr = listener.accept()
            except OSError:
                return  # listener closed
            failpoint("fleet.coordinator.accept")
            # Idle timeout: workers heartbeat even while executing, so a
            # read blocking this long means the peer is gone (partition,
            # SIGKILL without FIN) — drop it and release its leases now
            # instead of letting the lease reaper's deadline do it later.
            sock.settimeout(self.heartbeat_timeout or None)
            thread = threading.Thread(
                target=self._serve_connection, args=(sock,),
                name="fleet-conn", daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _serve_connection(self, sock: socket.socket) -> None:
        link: Optional[_WorkerLink] = None
        try:
            hello = recv_message(sock)
            if hello is None:
                return
            if hello.get("type") != protocol.HELLO:
                send_message(sock, {"type": protocol.ERROR,
                                    "reason": "expected hello"})
                return
            if hello.get("version") != protocol.PROTOCOL_VERSION:
                send_message(sock, {
                    "type": protocol.ERROR,
                    "reason": (
                        f"protocol version mismatch: coordinator speaks "
                        f"{protocol.PROTOCOL_VERSION}, worker sent "
                        f"{hello.get('version')!r}"
                    ),
                })
                return
            link = self._register(str(hello.get("worker") or "worker"), sock)
            send_message(sock, {
                "type": protocol.WELCOME,
                "version": protocol.PROTOCOL_VERSION,
                "worker": link.name,
                "coordinator": f"{os.getpid()}@{self.address}",
            })
            while True:
                message = recv_message(sock)
                if message is None:
                    return
                kind = message["type"]
                if kind == protocol.READY:
                    send_message(sock, self._assignment(link))
                elif kind == protocol.HEARTBEAT:
                    continue  # one-way liveness; resets the idle timeout
                elif kind == protocol.CELL_REQUEST:
                    send_message(
                        sock, self._cell_frame(link, str(message.get("cell"))))
                elif kind == protocol.RESULT:
                    self._complete(message)
                    send_message(sock, self._assignment(link))
                elif kind == protocol.FAILURE:
                    self._failure(message)
                    send_message(sock, self._assignment(link))
                else:
                    raise FleetError(f"unexpected message type {kind!r}")
        except socket.timeout:
            # Connected-but-silent past the heartbeat deadline: declared
            # dead; _unregister below releases the leases immediately.
            with self._lock:
                self._heartbeat_disconnects += 1
        except (OSError, FleetError):
            pass  # connection-level failure: leases are released below
        finally:
            if link is not None:
                self._unregister(link)
            sock.close()

    def _register(self, requested: str, sock: socket.socket) -> _WorkerLink:
        with self._lock:
            name = requested
            while name in self._links:
                self._worker_counter += 1
                name = f"{requested}~{self._worker_counter}"
            link = _WorkerLink(name, sock)
            self._links[name] = link
            self._workers_seen += 1
            self._worker_acc(name)
            return link

    def _unregister(self, link: _WorkerLink) -> None:
        with self._lock:
            if self._links.get(link.name) is link:
                del self._links[link.name]
            # A vanished worker's leases are released immediately — this,
            # not the deadline, is the fast path for SIGKILLed workers.
            for lease in [l for l in self._leases.values()
                          if l.worker == link.name]:
                self._release_lease(lease)

    # ------------------------------------------------------------------
    # lease table (all methods below called with or taking self._lock)
    # ------------------------------------------------------------------
    def _release_lease(self, lease: _Lease) -> None:
        """Drop ``lease`` and requeue its chunk if nobody else holds it."""
        self._leases.pop(lease.id, None)
        sweep = self._sweep
        if sweep is None or lease.chunk in sweep.done:
            return
        holders = sweep.chunk_leases.get(lease.chunk)
        if holders is not None:
            holders.discard(lease.id)
        if not holders and lease.chunk not in sweep.pending:
            sweep.pending.appendleft(lease.chunk)

    def _assignment(self, link: _WorkerLink) -> Dict[str, Any]:
        failpoint("fleet.coordinator.assign")  # stall outside the lock
        with self._lock:
            if self._closing:
                return {"type": protocol.SHUTDOWN}
            sweep = self._sweep
            if sweep is None or sweep.error is not None or not sweep.remaining:
                return {"type": protocol.WAIT, "poll": self.poll}
            if self._quarantined_until.get(link.name, 0.0) > time.monotonic():
                # Circuit breaker open: the worker keeps polling but gets
                # no leases until its quarantine period lapses.
                return {"type": protocol.WAIT, "poll": self.poll}
            stolen = False
            if sweep.pending:
                index = sweep.pending.popleft()
            else:
                # Tail stealing: duplicate-lease the least-covered chunk
                # still in flight, so a slow or dying worker's chunk is
                # recomputed instead of serializing the whole sweep tail.
                candidates = [
                    i for i in range(len(sweep.chunks))
                    if i not in sweep.done
                    and len(sweep.chunk_leases.get(i, ()))
                    < MAX_LEASES_PER_CHUNK
                ]
                if not candidates:
                    return {"type": protocol.WAIT, "poll": self.poll}
                index = min(candidates, key=lambda i: (
                    len(sweep.chunk_leases.get(i, ())), i))
                stolen = True
                self._chunks_stolen += 1
            self._lease_counter += 1
            lease = _Lease(
                id=self._lease_counter,
                chunk=index,
                worker=link.name,
                deadline=time.monotonic() + self.lease_timeout,
            )
            self._leases[lease.id] = lease
            sweep.chunk_leases.setdefault(index, set()).add(lease.id)
            self._leases_issued += 1
            chunk = sweep.chunks[index]
            return {
                "type": protocol.LEASE,
                "lease": lease.id,
                "chunk": index,
                "cell": chunk.cell_key,
                "seeds": list(chunk.seeds),
                "deadline": self.lease_timeout,
                "stolen": stolen,
            }

    def _cell_frame(self, link: _WorkerLink, key: str) -> Dict[str, Any]:
        with self._lock:
            frame = self._cell_frames.get(key)
            cell = self._cells.get(key)
        if frame is None:
            if cell is None:
                return {"type": protocol.ERROR,
                        "reason": f"unknown cell {key[:12]}…"}
            frame = protocol.pack_payload(cell)  # pickle outside the lock
        with self._lock:
            self._cell_frames[key] = frame
            pair = (link.name, key)
            self._ships[pair] = self._ships.get(pair, 0) + 1
        return {"type": protocol.CELL, "cell": key, "payload": frame}

    def _complete(self, message: Mapping[str, Any]) -> None:
        results = protocol.unpack_payload(message["payload"])
        with self._lock:
            lease = self._leases.pop(int(message.get("lease", -1)), None)
            sweep = self._sweep
            index = int(message["chunk"])
            if sweep is None or not 0 <= index < len(sweep.chunks):
                self._duplicate_results += 1
                return
            if lease is not None:
                holders = sweep.chunk_leases.get(lease.chunk)
                if holders is not None:
                    holders.discard(lease.id)
            if index in sweep.done:
                # First result won already (stolen or expired-then-finished
                # lease) — drop; RunStore commits are idempotent anyway.
                self._duplicate_results += 1
                return
            expected = len(sweep.chunks[index].seeds)
            if len(results) != expected:
                raise FleetError(
                    f"chunk {index}: worker returned {len(results)} results "
                    f"for {expected} seeds"
                )
            sweep.done.add(index)
            self._chunks_done += 1
            if lease is not None:
                acc = self._worker_acc(lease.worker)
                acc["chunks"] += 1
                acc["seeds"] += expected
            # Retire every other lease on this chunk; late duplicates hit
            # the `index in sweep.done` branch above.
            for other in sweep.chunk_leases.pop(index, set()):
                self._leases.pop(other, None)
            sweep.completions.put((index, results))

    def _failure(self, message: Mapping[str, Any]) -> None:
        with self._lock:
            lease = self._leases.pop(int(message.get("lease", -1)), None)
            if lease is not None:
                acc = self._worker_acc(lease.worker)
                acc["failures"] += 1
                if self.quarantine_after \
                        and acc["failures"] % self.quarantine_after == 0:
                    # Circuit breaker: repeated failures bench the worker
                    # so it cannot burn every chunk's attempt budget.
                    self._quarantined_until[lease.worker] = (
                        time.monotonic() + self.quarantine_period)
                    self._workers_quarantined += 1
            sweep = self._sweep
            index = int(message.get("chunk", -1))
            if sweep is None or not 0 <= index < len(sweep.chunks) \
                    or index in sweep.done:
                return
            sweep.attempts[index] += 1
            if lease is not None:
                holders = sweep.chunk_leases.get(index)
                if holders is not None:
                    holders.discard(lease.id)
            if sweep.attempts[index] >= MAX_CHUNK_ATTEMPTS:
                sweep.error = FleetError(
                    f"chunk {index} failed {sweep.attempts[index]} times "
                    f"across workers; last error: {message.get('message')}"
                )
                sweep.completions.put(None)
            elif not sweep.chunk_leases.get(index) \
                    and index not in sweep.pending:
                sweep.pending.appendleft(index)

    def _reaper_loop(self) -> None:
        while True:
            time.sleep(self.poll)
            with self._lock:
                if self._closing:
                    return
                now = time.monotonic()
                for lease in [l for l in self._leases.values()
                              if l.deadline <= now]:
                    self._leases_expired += 1
                    self._release_lease(lease)
