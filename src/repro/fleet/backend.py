"""`FleetBackend`: the distributed :class:`ExecutionBackend`.

This is the thin end of the fleet: it adapts the engine's streaming
``execute(tasks, sink)`` contract onto a :class:`FleetCoordinator`.  Tasks
are coalesced into ``(cell, seed-chunk)`` batches exactly like the process
pool (same :func:`chunk_tasks`, same sink-granularity hint, same
oversubscription factor), submitted as one sweep, and reassembled
positionally — so fleet results are identical, dataclass for dataclass,
to :class:`~repro.engine.backends.SerialBackend` on the same task list.
The sink observes chunks in completion order, which is what lets a
:class:`~repro.study.store.RunStore` persist fleet progress durably; and
because store commits are idempotent, a chunk a dying worker and its
thief both execute commits once.

The coordinator is started lazily on the first :meth:`execute` (or
eagerly via :meth:`start`, which the service scheduler uses so workers
can join before the first job) and survives across calls: workers stay
connected between sweeps and keep their cell caches warm.
"""

from __future__ import annotations

import math
import os
from queue import Empty
from typing import Any, Dict, List, Optional, Sequence

from repro.engine.backends import (
    _CHUNKS_PER_WORKER,
    _sink_chunk_hint,
    ExecutionBackend,
    ExecutionTask,
    ResultSink,
    chunk_tasks,
)
from repro.exceptions import ConfigurationError, FleetError
from repro.fleet.coordinator import DEFAULT_LEASE_TIMEOUT, FleetCoordinator
from repro.fleet.protocol import parse_address
from repro.runtime.metrics import ExecutionResult

__all__ = ["FleetBackend", "FLEET_ADDR_ENV_VAR", "DEFAULT_FLEET_PORT"]

#: Environment variable supplying the coordinator bind address when the
#: backend is selected by name (``REPRO_BACKEND=fleet``).
FLEET_ADDR_ENV_VAR = "REPRO_FLEET_ADDR"

#: Default coordinator port (loopback-only by default; see protocol docs).
DEFAULT_FLEET_PORT = 8766

#: Environment override for the coordinator's connection idle timeout
#: (seconds); the chaos soak shortens it so silent-worker recovery is
#: observable in seconds rather than half a minute.
HEARTBEAT_TIMEOUT_ENV_VAR = "REPRO_FLEET_HEARTBEAT_TIMEOUT"


class FleetBackend(ExecutionBackend):
    """Fan seed-chunks out to socket-connected worker processes.

    Parameters
    ----------
    listen:
        ``host:port`` the coordinator binds; defaults to
        ``$REPRO_FLEET_ADDR`` and then ``127.0.0.1:8766``.  Port ``0``
        picks a free port (read it back from :attr:`address`).
    lease_timeout:
        Backstop seconds before a silent worker's chunk is reassigned.
    chunksize:
        Fixed seeds-per-chunk; by default sized like the process pool
        (``ceil(tasks / (workers * 4))``, connected workers counting).
    poll:
        Idle-worker poll interval, forwarded to the coordinator.
    heartbeat_timeout:
        Connection idle timeout, forwarded to the coordinator; defaults
        to ``$REPRO_FLEET_HEARTBEAT_TIMEOUT`` and then the coordinator's
        own default.
    quarantine_after / quarantine_period:
        Per-worker circuit-breaker settings, forwarded to the coordinator.
    """

    name = "fleet"

    def __init__(self, listen: Optional[str] = None, *,
                 lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
                 chunksize: Optional[int] = None,
                 poll: Optional[float] = None,
                 heartbeat_timeout: Optional[float] = None,
                 quarantine_after: Optional[int] = None,
                 quarantine_period: Optional[float] = None) -> None:
        if chunksize is not None and chunksize < 1:
            raise ConfigurationError("chunksize must be positive")
        resolved = listen or os.environ.get(FLEET_ADDR_ENV_VAR) \
            or f"127.0.0.1:{DEFAULT_FLEET_PORT}"
        self._host, self._port = parse_address(resolved)
        self.lease_timeout = float(lease_timeout)
        self.chunksize = chunksize
        self.poll = poll
        if heartbeat_timeout is None:
            env = os.environ.get(HEARTBEAT_TIMEOUT_ENV_VAR)
            heartbeat_timeout = float(env) if env else None
        self.heartbeat_timeout = heartbeat_timeout
        self.quarantine_after = quarantine_after
        self.quarantine_period = quarantine_period
        self._coordinator: Optional[FleetCoordinator] = None

    # ------------------------------------------------------------------
    @property
    def coordinator(self) -> FleetCoordinator:
        """The (lazily started) coordinator serving this backend's leases."""
        if self._coordinator is None:
            kwargs: Dict[str, Any] = {"lease_timeout": self.lease_timeout}
            if self.poll is not None:
                kwargs["poll"] = self.poll
            if self.heartbeat_timeout is not None:
                kwargs["heartbeat_timeout"] = self.heartbeat_timeout
            if self.quarantine_after is not None:
                kwargs["quarantine_after"] = self.quarantine_after
            if self.quarantine_period is not None:
                kwargs["quarantine_period"] = self.quarantine_period
            self._coordinator = FleetCoordinator(
                self._host, self._port, **kwargs)
        return self._coordinator

    def start(self) -> "FleetBackend":
        """Bind the coordinator now so workers can join before a sweep."""
        self.coordinator.start()
        return self

    @property
    def address(self) -> str:
        """The coordinator's ``host:port`` (actual port once started)."""
        return self.coordinator.address

    def workers_connected(self) -> int:
        """Connected worker count (0 before the coordinator starts)."""
        if self._coordinator is None:
            return 0
        return self._coordinator.worker_count()

    def stats(self) -> Dict[str, Any]:
        """Coordinator counters (ships per worker/cell, steals, expiries)."""
        return self.coordinator.stats()

    # ------------------------------------------------------------------
    def _chunk_size(self, num_tasks: int, workers: int) -> int:
        if self.chunksize is not None:
            return self.chunksize
        return max(1, math.ceil(
            num_tasks / (max(workers, 1) * _CHUNKS_PER_WORKER)))

    def execute(self, tasks: Sequence[ExecutionTask],
                sink: Optional[ResultSink] = None) -> List[ExecutionResult]:
        tasks = list(tasks)
        if not tasks:
            return []
        coordinator = self.coordinator.start()
        chunk_size = self._chunk_size(len(tasks), coordinator.worker_count())
        hint = _sink_chunk_hint(sink)
        if hint is not None:
            chunk_size = min(chunk_size, hint)
        chunks = chunk_tasks(tasks, chunk_size)
        starts: List[int] = []
        offset = 0
        for _cell, seeds in chunks:
            starts.append(offset)
            offset += len(seeds)
        cells = {cell.cache_key: cell for cell, _seeds in chunks}
        sweep = coordinator.submit(
            [(cell.cache_key, seeds) for cell, seeds in chunks], cells)
        collected: Dict[int, List[ExecutionResult]] = {}
        try:
            while len(collected) < len(chunks):
                try:
                    item = sweep.completions.get(timeout=1.0)
                except Empty:
                    if sweep.error is not None:
                        raise sweep.error
                    continue
                if item is None:
                    raise sweep.error or FleetError("fleet sweep failed")
                index, batch = item
                if sink is not None:
                    sink(starts[index], batch)
                collected[index] = batch
        except BaseException:
            # The consuming side failed mid-sweep (a sink store error, an
            # interrupt): abandon the sweep so the coordinator can accept
            # the retry instead of reporting "already in flight" forever.
            coordinator.abort_sweep(sweep)
            raise
        results: List[ExecutionResult] = []
        for index in range(len(chunks)):
            results.extend(collected[index])
        return results

    def close(self) -> None:
        """Shut the coordinator down; connected workers fall back to their
        reconnect loops and exit when their retry windows lapse."""
        if self._coordinator is not None:
            self._coordinator.close()
            self._coordinator = None
