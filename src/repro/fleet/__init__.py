"""Worker-fleet execution: multi-machine sweeps over stdlib sockets.

The package splits along the roles of the system:

* :mod:`repro.fleet.protocol` — length-prefixed JSON frames, versioned
  message types, pickle payload helpers.
* :mod:`repro.fleet.coordinator` — the lease table: chunk assignment,
  deadline expiry, disconnect release, tail stealing, ship accounting.
* :mod:`repro.fleet.worker` — the ``repro worker`` process: pull leases,
  execute through the stock cores, cache cells by fingerprint.
* :mod:`repro.fleet.backend` — :class:`FleetBackend`, the
  :class:`~repro.engine.backends.ExecutionBackend` adapter that makes all
  of the above look like any other backend to `Study.run` and the CLI.

See ``docs/fleet.md`` for the protocol and lifecycle reference plus a
localhost walkthrough.
"""

from repro.fleet.backend import (  # noqa: F401
    DEFAULT_FLEET_PORT,
    FLEET_ADDR_ENV_VAR,
    FleetBackend,
)
from repro.fleet.coordinator import FleetCoordinator, FleetSweep  # noqa: F401
from repro.fleet.protocol import PROTOCOL_VERSION  # noqa: F401
from repro.fleet.worker import FleetWorker  # noqa: F401

__all__ = [
    "FleetBackend",
    "FleetCoordinator",
    "FleetSweep",
    "FleetWorker",
    "FLEET_ADDR_ENV_VAR",
    "DEFAULT_FLEET_PORT",
    "PROTOCOL_VERSION",
]
