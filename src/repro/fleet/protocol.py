"""Wire protocol of the worker fleet: length-prefixed JSON frames.

Every message on a fleet connection is one *frame*: a 4-byte big-endian
unsigned length followed by that many bytes of UTF-8 JSON encoding a single
object with a ``"type"`` key.  Framing over a stream socket is what keeps
the protocol stdlib-only — no HTTP, no serialization dependency — while
staying debuggable (``recv`` a frame, read the JSON).

The conversation is strictly worker-driven request/response:

==============  ===========================  ==============================
worker sends    coordinator replies          meaning
==============  ===========================  ==============================
``hello``       ``welcome`` / ``error``      version handshake, worker name
``ready``       ``lease``/``wait``/           ask for work
                ``shutdown``
``cell-request``  ``cell`` / ``error``       fetch a compiled cell once
``result``      ``lease``/``wait``/           deliver a chunk, ask again
                ``shutdown``
``failure``     ``lease``/``wait``/           report a chunk error, ask again
                ``shutdown``
``heartbeat``   *(no reply)*                 liveness while executing a lease
==============  ===========================  ==============================

``heartbeat`` is the one exception to request/response: a worker's
heartbeat thread sends it while a lease executes, and the coordinator
consumes it silently.  It exists for the coordinator's idle timeout — a
connection that stays silent past the heartbeat deadline is declared
dead and its leases are released immediately, long before the lease
reaper's deadline would fire.

Version skew is rejected at the ``hello`` exchange: both sides speak
exactly :data:`PROTOCOL_VERSION` and a mismatch earns an ``error`` frame
and a closed connection, never a silently wrong sweep.

Compiled cells and result batches travel as pickle payloads (base64 inside
the JSON frame).  Pickle is what guarantees the tier-1 bit-identity
contract across the wire — ``ExecutionResult`` floats round-trip exactly —
but it also means a fleet port trusts its workers and its network:
**bind coordinators to loopback or a private network only**.
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
import struct
from typing import Any, Mapping, Optional, Tuple

from repro.exceptions import ConfigurationError, FleetError
from repro.faults import failpoint

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "send_message",
    "recv_message",
    "pack_payload",
    "unpack_payload",
    "parse_address",
    "format_address",
]

#: Protocol revision; bumped on any incompatible frame or message change.
#: Version 2 added the one-way ``heartbeat`` message.
PROTOCOL_VERSION = 2

#: Upper bound on a single frame.  A frame holds at most one pickled
#: ``(cell)`` or one chunk's result batch; anything past this is a corrupt
#: length prefix (e.g. a stray HTTP client), not a real payload.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_HEADER = struct.Struct("!I")

# Message type constants — the ``"type"`` field of every frame.
HELLO = "hello"
WELCOME = "welcome"
ERROR = "error"
READY = "ready"
LEASE = "lease"
WAIT = "wait"
SHUTDOWN = "shutdown"
CELL_REQUEST = "cell-request"
CELL = "cell"
RESULT = "result"
FAILURE = "failure"
HEARTBEAT = "heartbeat"


def send_message(sock: socket.socket, message: Mapping[str, Any]) -> None:
    """Encode ``message`` as one length-prefixed JSON frame and send it.

    Failpoint ``fleet.frame.send`` can drop the frame silently (the peer
    sees nothing and its idle/reply timeout must recover), send a
    truncated prefix and fail (the peer sees a mid-frame EOF when the
    connection closes), delay it, or fail the write outright.
    """
    data = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise FleetError(
            f"refusing to send a {len(data)}-byte frame "
            f"(limit {MAX_FRAME_BYTES})"
        )
    frame = _HEADER.pack(len(data)) + data
    action = failpoint("fleet.frame.send")
    if action is not None:
        if action.kind == "drop":
            return
        if action.kind == "truncate":
            sock.sendall(frame[: max(1, len(frame) // 2)])
            raise action.error()
    sock.sendall(frame)


def recv_message(sock: socket.socket) -> Optional[dict]:
    """Receive one frame; ``None`` on clean EOF before a frame starts.

    Raises :class:`FleetError` for truncated frames, oversized length
    prefixes, or payloads that are not a JSON object with a ``"type"``.
    Failpoint ``fleet.frame.recv`` can delay or fail the read.
    """
    failpoint("fleet.frame.recv")
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FleetError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte limit "
            f"(corrupt stream or non-fleet client)"
        )
    data = _recv_exact(sock, length)
    if data is None:
        raise FleetError("connection closed mid-frame")
    try:
        message = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise FleetError(f"undecodable frame: {error}") from error
    if not isinstance(message, dict) or not isinstance(message.get("type"), str):
        raise FleetError("frame is not a typed message object")
    return message


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; ``None`` if EOF arrives first byte."""
    parts = []
    remaining = count
    while remaining:
        part = sock.recv(min(remaining, 1 << 20))
        if not part:
            if remaining == count:
                return None
            raise FleetError("connection closed mid-frame")
        parts.append(part)
        remaining -= len(part)
    return b"".join(parts)


def pack_payload(obj: Any) -> str:
    """Pickle ``obj`` and return it base64-encoded for a JSON frame."""
    return base64.b64encode(pickle.dumps(obj, protocol=4)).decode("ascii")


def unpack_payload(text: str) -> Any:
    """Inverse of :func:`pack_payload`."""
    try:
        return pickle.loads(base64.b64decode(text.encode("ascii")))
    except Exception as error:
        raise FleetError(f"undecodable payload: {error}") from error


def parse_address(text: str) -> Tuple[str, int]:
    """Parse ``"host:port"`` (or bare ``":port"`` meaning all interfaces)."""
    host, sep, port = str(text).rpartition(":")
    if not sep:
        raise ConfigurationError(
            f"fleet address {text!r} is not of the form host:port"
        )
    try:
        number = int(port)
    except ValueError:
        raise ConfigurationError(
            f"fleet address {text!r} has a non-numeric port"
        ) from None
    if not 0 <= number <= 65535:
        raise ConfigurationError(f"fleet port {number} out of range")
    return (host or "0.0.0.0", number)


def format_address(address: Tuple[str, int]) -> str:
    """Inverse of :func:`parse_address` for display."""
    return f"{address[0]}:{address[1]}"
