"""Multilevel graph partitioning (METIS-style).

The paper's baseline partitions the qubit-interaction graph with METIS.
METIS is a multilevel scheme: (1) *coarsen* the graph by collapsing a
heavy-edge matching until it is small, (2) compute an *initial partition* of
the coarsest graph, and (3) *uncoarsen*, projecting the partition back level
by level and refining it with FM/KL moves at each level.  This module
implements that scheme for bisection and extends it to k-way partitioning by
recursive bisection.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.partitioning.fiduccia_mattheyses import fm_refine
from repro.partitioning.interaction_graph import InteractionGraph
from repro.partitioning.kernighan_lin import kl_refine
from repro.partitioning.partition import Partition
from repro.partitioning.spectral import spectral_bisection
from repro.exceptions import PartitionError

__all__ = ["MultilevelPartitioner", "multilevel_bisection", "partition_graph"]


@dataclass
class _CoarseLevel:
    """One level of the coarsening hierarchy."""

    graph: InteractionGraph
    # Mapping from each coarse vertex to the fine vertices it represents.
    fine_vertices: Dict[int, List[int]]


def _heavy_edge_matching(graph: InteractionGraph, seed: int) -> List[Tuple[int, int]]:
    """Greedy heavy-edge matching: visit vertices in random order and match
    each unmatched vertex with its heaviest unmatched neighbour."""
    rng = random.Random(seed)
    order = list(range(graph.num_vertices))
    rng.shuffle(order)
    matched: set = set()
    matching: List[Tuple[int, int]] = []
    adjacency = graph.adjacency()
    for vertex in order:
        if vertex in matched:
            continue
        candidates = [
            (weight, neighbor)
            for neighbor, weight in adjacency[vertex].items()
            if neighbor not in matched
        ]
        if not candidates:
            continue
        candidates.sort(key=lambda item: (-item[0], item[1]))
        _, partner = candidates[0]
        matching.append((vertex, partner))
        matched.add(vertex)
        matched.add(partner)
    return matching


def _coarsen_once(graph: InteractionGraph, seed: int) -> Tuple[InteractionGraph, Dict[int, List[int]]]:
    """Collapse a heavy-edge matching into super-vertices."""
    matching = _heavy_edge_matching(graph, seed)
    merged_with: Dict[int, int] = {}
    for a, b in matching:
        merged_with[a] = b
        merged_with[b] = a

    coarse_index: Dict[int, int] = {}
    fine_vertices: Dict[int, List[int]] = {}
    next_index = 0
    for vertex in range(graph.num_vertices):
        if vertex in coarse_index:
            continue
        group = [vertex]
        partner = merged_with.get(vertex)
        if partner is not None and partner not in coarse_index:
            group.append(partner)
        for member in group:
            coarse_index[member] = next_index
        fine_vertices[next_index] = sorted(group)
        next_index += 1

    weights: Dict[Tuple[int, int], float] = {}
    vertex_weights: Dict[int, float] = {i: 0.0 for i in range(next_index)}
    for vertex, members in fine_vertices.items():
        vertex_weights[vertex] = sum(graph.vertex_weights[m] for m in members)
    for (a, b), weight in graph.weights.items():
        ca, cb = coarse_index[a], coarse_index[b]
        if ca == cb:
            continue
        key = (min(ca, cb), max(ca, cb))
        weights[key] = weights.get(key, 0.0) + weight

    coarse = InteractionGraph(next_index, weights, vertex_weights)
    return coarse, fine_vertices


class MultilevelPartitioner:
    """METIS-style multilevel bisection / k-way partitioner.

    Parameters
    ----------
    coarsen_until:
        Stop coarsening when the graph has at most this many vertices.
    balance_tolerance:
        Allowed relative imbalance of each side during FM refinement.
    initial_method:
        ``"spectral"`` (default) or ``"random"`` initial partition of the
        coarsest graph.
    refine_method:
        ``"fm"`` (default) or ``"kl"`` refinement at each uncoarsening level.
    seed:
        Seed controlling matching order and random initial partitions.
    """

    def __init__(
        self,
        coarsen_until: int = 16,
        balance_tolerance: float = 0.1,
        initial_method: str = "spectral",
        refine_method: str = "fm",
        seed: int = 0,
    ) -> None:
        if initial_method not in {"spectral", "random"}:
            raise PartitionError(f"unknown initial method {initial_method!r}")
        if refine_method not in {"fm", "kl"}:
            raise PartitionError(f"unknown refine method {refine_method!r}")
        self.coarsen_until = max(4, coarsen_until)
        self.balance_tolerance = balance_tolerance
        self.initial_method = initial_method
        self.refine_method = refine_method
        self.seed = seed

    # ------------------------------------------------------------------
    def bisect(self, graph: InteractionGraph) -> Partition:
        """Bisect ``graph`` into two balanced blocks minimising the cut."""
        if graph.num_vertices < 2:
            raise PartitionError("cannot bisect fewer than 2 vertices")

        # 1. Coarsening phase.
        levels: List[_CoarseLevel] = []
        current = graph
        level_seed = self.seed
        while current.num_vertices > self.coarsen_until:
            coarse, fine_vertices = _coarsen_once(current, level_seed)
            if coarse.num_vertices == current.num_vertices:
                break  # matching made no progress (e.g. no edges)
            levels.append(_CoarseLevel(graph=current, fine_vertices=fine_vertices))
            current = coarse
            level_seed += 1

        # 2. Initial partition of the coarsest graph.
        partition = self._initial_partition(current)
        partition = self._refine(current, partition)

        # 3. Uncoarsening with refinement.
        for level in reversed(levels):
            projected: Dict[int, int] = {}
            for coarse_vertex, block in partition.assignment.items():
                for fine_vertex in level.fine_vertices[coarse_vertex]:
                    projected[fine_vertex] = block
            partition = Partition(projected, 2, method="multilevel-projected")
            partition = self._refine(level.graph, partition)

        return partition.renamed("multilevel")

    # ------------------------------------------------------------------
    def k_way(self, graph: InteractionGraph, num_blocks: int) -> Partition:
        """Partition into ``num_blocks`` blocks by recursive bisection.

        Any ``num_blocks >= 1`` is supported: even splits recurse on the
        balanced bisection directly (bit-identical to the historical
        power-of-two path), while odd splits rebalance the bisection to the
        proportional ``k1 : k2`` vertex ratio before recursing, as METIS
        does for non-power-of-two k.
        """
        if num_blocks < 1:
            raise PartitionError("need at least one block")
        if num_blocks == 1:
            return Partition({v: 0 for v in range(graph.num_vertices)}, 1,
                             method="multilevel")

        assignment: Dict[int, int] = {}
        self._recursive_bisect(graph, list(range(graph.num_vertices)),
                               0, num_blocks, assignment)
        return Partition(assignment, num_blocks, method="multilevel")

    def _recursive_bisect(self, graph: InteractionGraph, vertices: List[int],
                          block_offset: int, num_blocks: int,
                          assignment: Dict[int, int]) -> None:
        if num_blocks == 1:
            for vertex in vertices:
                assignment[vertex] = block_offset
            return
        subgraph, back_map = graph.subgraph(set(vertices))
        bisection = self.bisect(subgraph)
        left_blocks = num_blocks // 2
        right_blocks = num_blocks - left_blocks
        if left_blocks != right_blocks:
            # Odd split: the balanced bisection must shed vertices to the
            # proportional k1:k2 ratio so downstream blocks end up even.
            from repro.partitioning.assigner import rebalance_partition

            left_target = round(len(vertices) * left_blocks / num_blocks)
            targets = [left_target, len(vertices) - left_target]
            if bisection.block_sizes() != targets:
                bisection = rebalance_partition(subgraph, bisection, targets)
        left = [back_map[v] for v in bisection.block_members(0)]
        right = [back_map[v] for v in bisection.block_members(1)]
        self._recursive_bisect(graph, left, block_offset, left_blocks,
                               assignment)
        self._recursive_bisect(graph, right, block_offset + left_blocks,
                               right_blocks, assignment)

    # ------------------------------------------------------------------
    def _initial_partition(self, graph: InteractionGraph) -> Partition:
        if graph.num_vertices < 2:
            return Partition({0: 0}, 2, method="initial")
        if self.initial_method == "spectral" and graph.num_edges > 0:
            return spectral_bisection(graph)
        rng = random.Random(self.seed)
        vertices = list(range(graph.num_vertices))
        rng.shuffle(vertices)
        half = graph.num_vertices // 2
        return Partition.from_blocks(
            [sorted(vertices[:half]), sorted(vertices[half:])], method="random"
        )

    def _refine(self, graph: InteractionGraph, partition: Partition) -> Partition:
        if self.refine_method == "kl":
            return kl_refine(graph, partition)
        return fm_refine(graph, partition,
                         balance_tolerance=self.balance_tolerance)


def multilevel_bisection(graph: InteractionGraph, seed: int = 0,
                         balance_tolerance: float = 0.1) -> Partition:
    """Convenience wrapper: METIS-style bisection with default settings."""
    partitioner = MultilevelPartitioner(seed=seed,
                                        balance_tolerance=balance_tolerance)
    return partitioner.bisect(graph)


def partition_graph(graph: InteractionGraph, num_blocks: int = 2,
                    seed: int = 0, method: str = "multilevel") -> Partition:
    """Partition a graph with the requested algorithm.

    A convenience front-end to the partitioner registry
    (:mod:`repro.partitioning.registry`): ``method`` is any registered name
    or alias — ``"multilevel"`` (default, METIS substitute),
    ``"kernighan_lin"`` / ``"kl"``, ``"fiduccia_mattheyses"`` / ``"fm"``,
    ``"spectral"``, ``"contiguous"`` — or a :class:`Partitioner` instance.
    ``multilevel`` and ``contiguous`` support any ``num_blocks``; the
    bisection-only algorithms reject ``num_blocks != 2``.
    """
    from repro.partitioning.registry import get_partitioner

    return get_partitioner(method).partition(graph, num_blocks=num_blocks,
                                             seed=seed)
