"""Fiduccia–Mattheyses (FM) bisection refinement.

FM improves on KL by moving one vertex at a time (instead of swapping pairs)
using a gain-bucket structure, subject to a balance constraint.  It is the
refinement engine used at every level of the multilevel partitioner, which
mirrors how METIS refines its coarsened graphs.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

from repro.partitioning.interaction_graph import InteractionGraph
from repro.partitioning.partition import Partition
from repro.exceptions import PartitionError

__all__ = ["fm_refine", "fm_bisection"]


class _GainBuckets:
    """Bucket list keyed by (rounded) gain for O(1) best-vertex selection.

    Gains in this problem are sums of integer-ish edge weights, so bucketing
    by rounded gain is exact for integer weights and a good approximation for
    fractional ones.
    """

    def __init__(self) -> None:
        self._buckets: Dict[int, Set[int]] = defaultdict(set)
        self._gain_of: Dict[int, float] = {}

    def insert(self, vertex: int, gain: float) -> None:
        self._gain_of[vertex] = gain
        self._buckets[self._key(gain)].add(vertex)

    def remove(self, vertex: int) -> None:
        gain = self._gain_of.pop(vertex, None)
        if gain is None:
            return
        key = self._key(gain)
        self._buckets[key].discard(vertex)
        if not self._buckets[key]:
            del self._buckets[key]

    def update(self, vertex: int, new_gain: float) -> None:
        self.remove(vertex)
        self.insert(vertex, new_gain)

    def gain(self, vertex: int) -> float:
        return self._gain_of[vertex]

    def pop_best(self, allowed: Set[int]) -> Optional[int]:
        """Return (without removing) the allowed vertex with maximal gain."""
        for key in sorted(self._buckets, reverse=True):
            candidates = self._buckets[key] & allowed
            if candidates:
                # Deterministic tie-break by vertex index.
                return min(candidates)
        return None

    def __contains__(self, vertex: int) -> bool:
        return vertex in self._gain_of

    @staticmethod
    def _key(gain: float) -> int:
        return int(round(gain))


def _move_gain(graph: InteractionGraph, vertex: int,
               assignment: Dict[int, int]) -> float:
    """Cut-weight reduction from moving ``vertex`` to the other side."""
    own = assignment[vertex]
    external = 0.0
    internal = 0.0
    for neighbor, weight in graph.neighbors(vertex).items():
        if assignment[neighbor] == own:
            internal += weight
        else:
            external += weight
    return external - internal


def _balance_ok(block_weights: Dict[int, float], moving_from: int, moving_to: int,
                vertex_weight: float, max_weights: Tuple[float, float]) -> bool:
    """Whether moving a vertex keeps both sides within their capacity."""
    new_to = block_weights[moving_to] + vertex_weight
    return new_to <= max_weights[moving_to] + 1e-9


def fm_refine(graph: InteractionGraph, partition: Partition,
              balance_tolerance: float = 0.1,
              max_passes: int = 10) -> Partition:
    """Refine a bisection with FM passes under a balance constraint.

    Parameters
    ----------
    graph:
        Graph being partitioned.
    partition:
        Initial bisection (2 blocks).
    balance_tolerance:
        Each side may hold at most ``(1 + tolerance) * total_weight / 2``
        vertex weight.
    max_passes:
        Maximum number of full FM passes.
    """
    if partition.num_blocks != 2:
        raise PartitionError("FM refinement only supports bisections")

    assignment = dict(partition.assignment)
    total_weight = graph.total_vertex_weight
    max_side = (1.0 + balance_tolerance) * total_weight / 2.0
    max_weights = (max_side, max_side)

    for _ in range(max_passes):
        block_weights = {
            0: sum(graph.vertex_weights[v] for v, b in assignment.items() if b == 0),
            1: sum(graph.vertex_weights[v] for v, b in assignment.items() if b == 1),
        }
        buckets = _GainBuckets()
        for vertex in range(graph.num_vertices):
            buckets.insert(vertex, _move_gain(graph, vertex, assignment))
        unlocked: Set[int] = set(range(graph.num_vertices))

        move_sequence: List[int] = []
        gain_sequence: List[float] = []
        trial_assignment = dict(assignment)
        trial_block_weights = dict(block_weights)

        while unlocked:
            candidate = None
            # Find the best-gain vertex whose move keeps balance.
            allowed = {
                v for v in unlocked
                if _balance_ok(
                    trial_block_weights, trial_assignment[v],
                    1 - trial_assignment[v], graph.vertex_weights[v], max_weights
                )
            }
            if not allowed:
                break
            candidate = buckets.pop_best(allowed)
            if candidate is None:
                break

            gain = buckets.gain(candidate)
            source = trial_assignment[candidate]
            destination = 1 - source
            trial_assignment[candidate] = destination
            trial_block_weights[source] -= graph.vertex_weights[candidate]
            trial_block_weights[destination] += graph.vertex_weights[candidate]
            move_sequence.append(candidate)
            gain_sequence.append(gain)
            unlocked.discard(candidate)
            buckets.remove(candidate)

            # Update gains of unlocked neighbours.
            for neighbor in graph.neighbors(candidate):
                if neighbor in unlocked:
                    buckets.update(
                        neighbor, _move_gain(graph, neighbor, trial_assignment)
                    )

        # Apply the best prefix of moves.
        best_total = 0.0
        best_k = 0
        running = 0.0
        for k, gain in enumerate(gain_sequence, start=1):
            running += gain
            if running > best_total + 1e-12:
                best_total = running
                best_k = k
        if best_k == 0:
            break
        for vertex in move_sequence[:best_k]:
            assignment[vertex] = 1 - assignment[vertex]

    return Partition(assignment, 2, method="fiduccia-mattheyses")


def fm_bisection(graph: InteractionGraph, seed: Optional[int] = 0,
                 balance_tolerance: float = 0.1,
                 max_passes: int = 10) -> Partition:
    """Bisect a graph: contiguous start followed by FM refinement."""
    import random

    vertices = list(range(graph.num_vertices))
    rng = random.Random(seed)
    rng.shuffle(vertices)
    half = graph.num_vertices // 2
    start = Partition.from_blocks(
        [sorted(vertices[:half]), sorted(vertices[half:])], method="fm-start"
    )
    return fm_refine(graph, start, balance_tolerance=balance_tolerance,
                     max_passes=max_passes)
