"""Partition results and quality metrics.

A :class:`Partition` assigns every qubit (graph vertex) to a block (QPU
node).  It records cut weight and balance metrics so the different
partitioning algorithms (KL, FM, multilevel, spectral) can be compared on a
common footing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set

from repro.partitioning.interaction_graph import InteractionGraph
from repro.exceptions import PartitionError

__all__ = ["Partition"]


@dataclass
class Partition:
    """Assignment of vertices to blocks.

    Attributes
    ----------
    assignment:
        Mapping of vertex index to block index ``0 .. num_blocks-1``.
    num_blocks:
        Number of blocks (QPU nodes).
    method:
        Name of the algorithm that produced the partition (for reports).
    """

    assignment: Dict[int, int]
    num_blocks: int
    method: str = "unknown"

    def __post_init__(self) -> None:
        if self.num_blocks < 1:
            raise PartitionError("partition needs at least one block")
        for vertex, block in self.assignment.items():
            if not (0 <= block < self.num_blocks):
                raise PartitionError(
                    f"vertex {vertex} assigned to invalid block {block}"
                )

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of assigned vertices."""
        return len(self.assignment)

    def block_of(self, vertex: int) -> int:
        """Block index of a vertex."""
        try:
            return self.assignment[vertex]
        except KeyError as exc:
            raise PartitionError(f"vertex {vertex} is not assigned") from exc

    def block_members(self, block: int) -> List[int]:
        """Sorted vertices assigned to ``block``."""
        return sorted(v for v, b in self.assignment.items() if b == block)

    def blocks(self) -> List[List[int]]:
        """All blocks as lists of vertices."""
        return [self.block_members(b) for b in range(self.num_blocks)]

    def block_sizes(self) -> List[int]:
        """Number of vertices per block."""
        return [len(self.block_members(b)) for b in range(self.num_blocks)]

    def is_crossing(self, vertex_a: int, vertex_b: int) -> bool:
        """Whether an edge between the two vertices crosses blocks."""
        return self.block_of(vertex_a) != self.block_of(vertex_b)

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def cut_weight(self, graph: InteractionGraph) -> float:
        """Total weight of cut edges for a given interaction graph."""
        return graph.cut_weight(self.assignment)

    def imbalance(self) -> float:
        """Relative imbalance: ``max_block / ideal_block - 1`` (0 = perfect)."""
        sizes = self.block_sizes()
        ideal = self.num_vertices / self.num_blocks
        if ideal == 0:
            return 0.0
        return max(sizes) / ideal - 1.0

    def satisfies_capacity(self, capacities: Sequence[int]) -> bool:
        """Whether every block fits within the given per-block capacities."""
        if len(capacities) != self.num_blocks:
            raise PartitionError("capacity list length must equal num_blocks")
        return all(
            size <= capacity
            for size, capacity in zip(self.block_sizes(), capacities)
        )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_blocks(cls, blocks: Sequence[Sequence[int]],
                    method: str = "explicit") -> "Partition":
        """Build a partition from explicit per-block vertex lists."""
        assignment: Dict[int, int] = {}
        for block_index, members in enumerate(blocks):
            for vertex in members:
                if vertex in assignment:
                    raise PartitionError(f"vertex {vertex} appears in two blocks")
                assignment[vertex] = block_index
        return cls(assignment, len(blocks), method=method)

    @classmethod
    def contiguous(cls, num_vertices: int, num_blocks: int,
                   method: str = "contiguous") -> "Partition":
        """Split ``0..num_vertices-1`` into contiguous equal chunks.

        This is the natural partition for linear-connectivity circuits such
        as TLIM and a useful deterministic baseline in tests.
        """
        if num_vertices % num_blocks != 0:
            raise PartitionError(
                f"{num_vertices} vertices cannot be split evenly into "
                f"{num_blocks} blocks"
            )
        per_block = num_vertices // num_blocks
        assignment = {v: v // per_block for v in range(num_vertices)}
        return cls(assignment, num_blocks, method=method)

    def renamed(self, method: str) -> "Partition":
        """Copy with a different ``method`` label."""
        return Partition(dict(self.assignment), self.num_blocks, method=method)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        return (
            self.assignment == other.assignment
            and self.num_blocks == other.num_blocks
        )
