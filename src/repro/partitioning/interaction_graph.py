"""Weighted qubit-interaction graph of a circuit.

Following the baseline of the paper (METIS partitioning of the circuit's
qubit-interaction graph, as in Davis et al.), each qubit is a vertex and
every two-qubit gate adds unit weight to the edge between its operands.  A
partition of this graph into QPU nodes that minimises the cut weight
minimises the number of remote two-qubit gates.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

import networkx as nx

from repro.circuits.circuit import QuantumCircuit
from repro.exceptions import PartitionError

__all__ = ["InteractionGraph"]

Edge = Tuple[int, int]


def _normalise(a: int, b: int) -> Edge:
    return (a, b) if a < b else (b, a)


@dataclass
class InteractionGraph:
    """Undirected weighted graph over qubit indices.

    Attributes
    ----------
    num_vertices:
        Number of vertices (qubits); vertices are ``0 .. num_vertices-1``
        even if some have no incident edges.
    weights:
        Mapping from normalised ``(a, b)`` pairs (``a < b``) to positive edge
        weights.
    vertex_weights:
        Optional per-vertex weights (defaults to 1 for every vertex); used by
        the multilevel coarsening to keep partitions balanced in terms of the
        original qubits.
    """

    num_vertices: int
    weights: Dict[Edge, float] = field(default_factory=dict)
    vertex_weights: Dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_vertices < 1:
            raise PartitionError("interaction graph needs at least one vertex")
        for vertex in range(self.num_vertices):
            self.vertex_weights.setdefault(vertex, 1.0)
        for (a, b), weight in list(self.weights.items()):
            if not (0 <= a < self.num_vertices and 0 <= b < self.num_vertices):
                raise PartitionError(f"edge ({a}, {b}) out of range")
            if a == b:
                raise PartitionError("self-loops are not allowed")
            if weight <= 0:
                raise PartitionError("edge weights must be positive")

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_circuit(cls, circuit: QuantumCircuit) -> "InteractionGraph":
        """Build the interaction graph of a circuit (one unit per 2Q gate)."""
        weights: Dict[Edge, float] = defaultdict(float)
        for gate in circuit.gates:
            if gate.is_two_qubit:
                weights[_normalise(*gate.qubits)] += 1.0
        return cls(circuit.num_qubits, dict(weights))

    @classmethod
    def from_edges(cls, num_vertices: int,
                   edges: Iterable[Tuple[int, int]],
                   weight: float = 1.0) -> "InteractionGraph":
        """Build a graph from an unweighted edge list (each edge gets ``weight``)."""
        weights: Dict[Edge, float] = defaultdict(float)
        for a, b in edges:
            weights[_normalise(a, b)] += weight
        return cls(num_vertices, dict(weights))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of distinct weighted edges."""
        return len(self.weights)

    @property
    def total_edge_weight(self) -> float:
        """Sum of all edge weights (total two-qubit gate count)."""
        return sum(self.weights.values())

    @property
    def total_vertex_weight(self) -> float:
        """Sum of all vertex weights."""
        return sum(self.vertex_weights.values())

    def weight(self, a: int, b: int) -> float:
        """Weight of edge (a, b), or 0 if absent."""
        return self.weights.get(_normalise(a, b), 0.0)

    def neighbors(self, vertex: int) -> Dict[int, float]:
        """Mapping of neighbours of ``vertex`` to edge weights."""
        result: Dict[int, float] = {}
        for (a, b), weight in self.weights.items():
            if a == vertex:
                result[b] = weight
            elif b == vertex:
                result[a] = weight
        return result

    def degree(self, vertex: int) -> float:
        """Weighted degree of a vertex."""
        return sum(self.neighbors(vertex).values())

    def adjacency(self) -> Dict[int, Dict[int, float]]:
        """Full adjacency structure (vertex -> neighbour -> weight)."""
        adj: Dict[int, Dict[int, float]] = {v: {} for v in range(self.num_vertices)}
        for (a, b), weight in self.weights.items():
            adj[a][b] = weight
            adj[b][a] = weight
        return adj

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate over (a, b, weight) triples with a < b."""
        for (a, b), weight in sorted(self.weights.items()):
            yield a, b, weight

    def cut_weight(self, assignment: Mapping[int, int]) -> float:
        """Total weight of edges whose endpoints lie in different blocks."""
        cut = 0.0
        for (a, b), weight in self.weights.items():
            if assignment[a] != assignment[b]:
                cut += weight
        return cut

    def block_weights(self, assignment: Mapping[int, int]) -> Dict[int, float]:
        """Total vertex weight assigned to each block."""
        totals: Dict[int, float] = defaultdict(float)
        for vertex in range(self.num_vertices):
            totals[assignment[vertex]] += self.vertex_weights[vertex]
        return dict(totals)

    def to_networkx(self) -> nx.Graph:
        """Convert to a :class:`networkx.Graph` (for validation and plotting)."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_vertices))
        for (a, b), weight in self.weights.items():
            graph.add_edge(a, b, weight=weight)
        return graph

    def laplacian(self):
        """Weighted graph Laplacian as a dense :class:`numpy.ndarray`."""
        import numpy as np

        matrix = np.zeros((self.num_vertices, self.num_vertices))
        for (a, b), weight in self.weights.items():
            matrix[a, b] -= weight
            matrix[b, a] -= weight
            matrix[a, a] += weight
            matrix[b, b] += weight
        return matrix

    def subgraph(self, vertices: Set[int]) -> Tuple["InteractionGraph", Dict[int, int]]:
        """Induced subgraph on ``vertices``.

        Returns the subgraph (with vertices renumbered ``0..k-1``) and the
        mapping from new indices back to original vertex ids.
        """
        ordered = sorted(vertices)
        new_index = {old: new for new, old in enumerate(ordered)}
        weights = {
            (new_index[a], new_index[b]): weight
            for (a, b), weight in self.weights.items()
            if a in vertices and b in vertices
        }
        vertex_weights = {new_index[v]: self.vertex_weights[v] for v in ordered}
        sub = InteractionGraph(len(ordered), weights, vertex_weights)
        back_map = {new: old for old, new in new_index.items()}
        return sub, back_map
