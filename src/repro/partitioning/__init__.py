"""Graph-partitioning substrate (METIS substitute) and circuit distribution."""

from repro.partitioning.registry import (
    Partitioner,
    PrecomputedPartitioner,
    get_partitioner,
    list_partitioners,
    register_partitioner,
)
from repro.partitioning.assigner import (
    DistributedProgram,
    distribute_circuit,
    label_remote_gates,
    rebalance_partition,
)
from repro.partitioning.fiduccia_mattheyses import fm_bisection, fm_refine
from repro.partitioning.interaction_graph import InteractionGraph
from repro.partitioning.kernighan_lin import kernighan_lin_bisection, kl_refine
from repro.partitioning.multilevel import (
    MultilevelPartitioner,
    multilevel_bisection,
    partition_graph,
)
from repro.partitioning.partition import Partition
from repro.partitioning.spectral import fiedler_vector, spectral_bisection

__all__ = [
    "InteractionGraph",
    "Partition",
    "Partitioner",
    "PrecomputedPartitioner",
    "get_partitioner",
    "list_partitioners",
    "register_partitioner",
    "kernighan_lin_bisection",
    "kl_refine",
    "fm_bisection",
    "fm_refine",
    "spectral_bisection",
    "fiedler_vector",
    "MultilevelPartitioner",
    "multilevel_bisection",
    "partition_graph",
    "DistributedProgram",
    "distribute_circuit",
    "label_remote_gates",
    "rebalance_partition",
]
