"""Pluggable partitioner registry.

The codebase ships four partitioning algorithms (multilevel METIS-style,
Kernighan-Lin, Fiduccia-Mattheyses, spectral) plus the contiguous baseline,
but before this registry only ``"multilevel"`` was reachable from the
configuration surface.  :class:`Partitioner` is the strategy ABC —
``partition(graph, num_blocks, seed) -> Partition`` — and the string-keyed
registry follows the idiom of :mod:`repro.benchmarks.registry` and
:mod:`repro.runtime.designs`: built-ins resolve by canonical name (with the
historical ``"kl"`` / ``"fm"`` short names as aliases), and third parties
plug in via :func:`register_partitioner` (re-exported by :mod:`repro.api`),
after which the name works everywhere — ``SystemConfig(partition_method=…)``,
study axes, and the CLI.

``"precomputed"`` is the passthrough strategy: it carries an explicit
:class:`~repro.partitioning.partition.Partition` instead of computing one,
which is how externally computed partitions (e.g. from a real METIS run)
enter the same pipeline.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence, Union

from repro.exceptions import PartitionError
from repro.partitioning.fiduccia_mattheyses import fm_bisection
from repro.partitioning.interaction_graph import InteractionGraph
from repro.partitioning.kernighan_lin import kernighan_lin_bisection
from repro.partitioning.multilevel import MultilevelPartitioner
from repro.partitioning.partition import Partition
from repro.partitioning.spectral import spectral_bisection

__all__ = [
    "Partitioner",
    "PrecomputedPartitioner",
    "PARTITIONERS",
    "get_partitioner",
    "list_partitioners",
    "register_partitioner",
]


class Partitioner(ABC):
    """Strategy interface of the partitioning stage.

    Subclasses set :attr:`name` (the registry key), :attr:`supports_k_way`
    (whether ``num_blocks > 2`` is accepted), and implement
    :meth:`partition`.  Instances are stateless and shared; calling one is
    equivalent to calling :meth:`partition`.

    Example
    -------
    ::

        class Halves(Partitioner):
            name = "halves"
            supports_k_way = False
            description = "first half / second half"

            def partition(self, graph, num_blocks=2, seed=0):
                self._require_bisection(num_blocks)
                half = graph.num_vertices // 2
                return Partition({v: int(v >= half)
                                  for v in range(graph.num_vertices)}, 2)
    """

    #: Registry key (lower-case canonical form).
    name: str = "?"
    #: Whether the algorithm accepts ``num_blocks != 2``.
    supports_k_way: bool = False
    #: One-line human description (shown by ``repro list-partitioners``).
    description: str = ""

    @abstractmethod
    def partition(self, graph: InteractionGraph, num_blocks: int = 2,
                  seed: int = 0) -> Partition:
        """Partition ``graph`` into ``num_blocks`` blocks."""

    def cache_token(self) -> str:
        """Token identifying this strategy's output in compile-cache keys.

        Stateless strategies are fully identified by their name; strategies
        whose output depends on carried state (e.g.
        :class:`PrecomputedPartitioner`) must fold that state in, or two
        instances sharing a name would collide in a shared artifact cache.
        """
        return self.name

    def __call__(self, graph: InteractionGraph, num_blocks: int = 2,
                 seed: int = 0) -> Partition:
        return self.partition(graph, num_blocks=num_blocks, seed=seed)

    def _require_bisection(self, num_blocks: int) -> None:
        if num_blocks != 2:
            raise PartitionError(
                f"partitioner {self.name!r} only supports bisection "
                f"(2 blocks), got num_blocks={num_blocks}; use 'multilevel' "
                f"(or 'contiguous') for k-way partitioning"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class _MultilevelMethod(Partitioner):
    name = "multilevel"
    supports_k_way = True
    description = "METIS-style coarsen/bisect/refine (paper baseline)"

    def partition(self, graph: InteractionGraph, num_blocks: int = 2,
                  seed: int = 0) -> Partition:
        return MultilevelPartitioner(seed=seed).k_way(graph, num_blocks)


class _KernighanLinMethod(Partitioner):
    name = "kernighan_lin"
    description = "classic KL pair-swap bisection"

    def partition(self, graph: InteractionGraph, num_blocks: int = 2,
                  seed: int = 0) -> Partition:
        self._require_bisection(num_blocks)
        return kernighan_lin_bisection(graph, seed=seed)


class _FiducciaMattheysesMethod(Partitioner):
    name = "fiduccia_mattheyses"
    description = "FM single-vertex-move bisection with gain buckets"

    def partition(self, graph: InteractionGraph, num_blocks: int = 2,
                  seed: int = 0) -> Partition:
        self._require_bisection(num_blocks)
        return fm_bisection(graph, seed=seed)


class _SpectralMethod(Partitioner):
    name = "spectral"
    description = "Fiedler-vector bisection (deterministic, seed ignored)"

    def partition(self, graph: InteractionGraph, num_blocks: int = 2,
                  seed: int = 0) -> Partition:
        self._require_bisection(num_blocks)
        return spectral_bisection(graph, seed=seed)


class _ContiguousMethod(Partitioner):
    name = "contiguous"
    supports_k_way = True
    description = "index-contiguous chunks (deterministic baseline)"

    def partition(self, graph: InteractionGraph, num_blocks: int = 2,
                  seed: int = 0) -> Partition:
        return Partition.contiguous(graph.num_vertices, num_blocks)


class PrecomputedPartitioner(Partitioner):
    """Passthrough strategy carrying an externally computed partition.

    ``PrecomputedPartitioner(partition)`` returns ``partition`` unchanged
    (after checking it matches the graph), so external tools' partitions run
    through the same distribution pipeline as the built-in algorithms.  The
    registry entry ``"precomputed"`` holds no partition and exists so the
    name is discoverable; using it directly raises a clear error pointing at
    the two ways to supply the partition.
    """

    name = "precomputed"
    supports_k_way = True
    description = "passthrough for an externally supplied Partition"

    def __init__(self, partition: Optional[Partition] = None) -> None:
        self._partition = partition

    def cache_token(self) -> str:
        if self._partition is None:
            return self.name
        assignment = sorted(self._partition.assignment.items())
        return (f"{self.name}:{self._partition.num_blocks}:{assignment!r}")

    def partition(self, graph: InteractionGraph, num_blocks: int = 2,
                  seed: int = 0) -> Partition:
        if self._partition is None:
            raise PartitionError(
                "the 'precomputed' partitioner carries no partition; pass "
                "partition=... to distribute_circuit or use "
                "PrecomputedPartitioner(partition) directly"
            )
        if self._partition.num_vertices != graph.num_vertices:
            raise PartitionError(
                f"precomputed partition covers {self._partition.num_vertices} "
                f"vertices but the graph has {graph.num_vertices}"
            )
        if self._partition.num_blocks != num_blocks:
            raise PartitionError(
                f"precomputed partition has {self._partition.num_blocks} "
                f"blocks but {num_blocks} were requested"
            )
        return self._partition


PARTITIONERS: Dict[str, Partitioner] = {}

#: Historical short names accepted everywhere a canonical name is.
_ALIASES: Dict[str, str] = {}


def register_partitioner(partitioner: Partitioner,
                         aliases: Sequence[str] = (),
                         overwrite: bool = False) -> Partitioner:
    """Register a partitioner under its (lower-cased) name.

    The entry-point for third-party algorithms: once registered, the name is
    usable everywhere a built-in is.  Returns the partitioner for chaining.

    Example
    -------
    ::

        from repro import api

        class Annealed(api.Partitioner):
            name = "annealed"
            supports_k_way = True
            description = "simulated-annealing refinement"

            def partition(self, graph, num_blocks=2, seed=0):
                ...

        api.register_partitioner(Annealed(), aliases=("sa",))
        SystemConfig(partition_method="annealed")   # now a valid name
    """
    key = partitioner.name.lower()
    if not overwrite and key in PARTITIONERS:
        raise PartitionError(
            f"partitioner {partitioner.name!r} is already registered; pass "
            f"overwrite=True to replace it"
        )
    PARTITIONERS[key] = partitioner
    for alias in aliases:
        _ALIASES[alias.lower()] = key
    return partitioner


def get_partitioner(method: Union[str, Partitioner]) -> Partitioner:
    """Resolve a partitioner by (case-insensitive) name or pass one through.

    Accepts canonical names, registered aliases (``"kl"``, ``"fm"``), and
    :class:`Partitioner` instances (returned unchanged), so every API taking
    ``method`` transparently supports ad-hoc strategy objects.

    Example
    -------
    >>> from repro.partitioning.registry import get_partitioner
    >>> get_partitioner("kl").name
    'kernighan_lin'
    """
    if isinstance(method, Partitioner):
        return method
    key = str(method).lower()
    key = _ALIASES.get(key, key)
    partitioner = PARTITIONERS.get(key)
    if partitioner is None:
        raise PartitionError(
            f"unknown partitioning method {method!r}; registered: "
            f"{', '.join(PARTITIONERS)} (aliases: "
            f"{', '.join(sorted(_ALIASES))})"
        )
    return partitioner


def list_partitioners() -> List[str]:
    """Canonical names of the registered partitioners, in registration order.

    Example
    -------
    >>> from repro.partitioning.registry import list_partitioners
    >>> "multilevel" in list_partitioners()
    True
    """
    return list(PARTITIONERS)


register_partitioner(_MultilevelMethod())
register_partitioner(_KernighanLinMethod(), aliases=("kl",))
register_partitioner(_FiducciaMattheysesMethod(), aliases=("fm",))
register_partitioner(_SpectralMethod())
register_partitioner(_ContiguousMethod())
register_partitioner(PrecomputedPartitioner())
