"""Kernighan–Lin graph bisection.

Classic KL refinement: starting from an initial balanced bisection, repeated
passes greedily select pairs of vertices to swap between the two halves so as
to maximise the cumulative gain (reduction in cut weight), then apply the
best prefix of swaps.  Used both as a standalone bisection algorithm and as a
refinement step inside the multilevel partitioner.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set, Tuple

from repro.partitioning.interaction_graph import InteractionGraph
from repro.partitioning.partition import Partition
from repro.exceptions import PartitionError

__all__ = ["kernighan_lin_bisection", "kl_refine"]


def _initial_split(num_vertices: int, seed: Optional[int]) -> Tuple[Set[int], Set[int]]:
    """Random balanced split of vertex indices into two halves."""
    vertices = list(range(num_vertices))
    rng = random.Random(seed)
    rng.shuffle(vertices)
    half = num_vertices // 2
    return set(vertices[:half]), set(vertices[half:])


def _external_internal(graph: InteractionGraph, vertex: int,
                       own: Set[int]) -> Tuple[float, float]:
    """External and internal connection weights of ``vertex`` w.r.t. its side."""
    external = 0.0
    internal = 0.0
    for neighbor, weight in graph.neighbors(vertex).items():
        if neighbor in own:
            internal += weight
        else:
            external += weight
    return external, internal


def _d_values(graph: InteractionGraph, side_a: Set[int],
              side_b: Set[int]) -> Dict[int, float]:
    """D(v) = external(v) - internal(v) for every vertex."""
    values: Dict[int, float] = {}
    for vertex in side_a:
        external, internal = _external_internal(graph, vertex, side_a)
        values[vertex] = external - internal
    for vertex in side_b:
        external, internal = _external_internal(graph, vertex, side_b)
        values[vertex] = external - internal
    return values


def _kl_pass(graph: InteractionGraph, side_a: Set[int],
             side_b: Set[int]) -> Tuple[float, List[Tuple[int, int]]]:
    """One KL pass.

    Returns the best cumulative gain and the list of swaps realising it.
    """
    a = set(side_a)
    b = set(side_b)
    d_values = _d_values(graph, a, b)
    unlocked_a = set(a)
    unlocked_b = set(b)
    gains: List[float] = []
    swaps: List[Tuple[int, int]] = []

    while unlocked_a and unlocked_b:
        best_gain = None
        best_pair = None
        for va in unlocked_a:
            neighbors_va = graph.neighbors(va)
            for vb in unlocked_b:
                gain = d_values[va] + d_values[vb] - 2.0 * neighbors_va.get(vb, 0.0)
                if best_gain is None or gain > best_gain:
                    best_gain = gain
                    best_pair = (va, vb)
        assert best_pair is not None and best_gain is not None
        va, vb = best_pair
        gains.append(best_gain)
        swaps.append(best_pair)
        unlocked_a.discard(va)
        unlocked_b.discard(vb)
        # Update D values of remaining unlocked vertices as if swapped.
        for vertex in list(unlocked_a):
            d_values[vertex] += 2.0 * graph.weight(vertex, va) - 2.0 * graph.weight(vertex, vb)
        for vertex in list(unlocked_b):
            d_values[vertex] += 2.0 * graph.weight(vertex, vb) - 2.0 * graph.weight(vertex, va)

    # Best prefix of swaps.
    best_total = 0.0
    best_k = 0
    running = 0.0
    for k, gain in enumerate(gains, start=1):
        running += gain
        if running > best_total + 1e-12:
            best_total = running
            best_k = k
    return best_total, swaps[:best_k]


def kl_refine(graph: InteractionGraph, partition: Partition,
              max_passes: int = 10) -> Partition:
    """Refine a bisection in place with repeated KL passes.

    The input partition must have exactly two blocks; block sizes are
    preserved (KL swaps pairs).
    """
    if partition.num_blocks != 2:
        raise PartitionError("KL refinement only supports bisections")
    side_a = set(partition.block_members(0))
    side_b = set(partition.block_members(1))
    for _ in range(max_passes):
        gain, swaps = _kl_pass(graph, side_a, side_b)
        if gain <= 1e-12 or not swaps:
            break
        for va, vb in swaps:
            side_a.discard(va)
            side_a.add(vb)
            side_b.discard(vb)
            side_b.add(va)
    return Partition.from_blocks([sorted(side_a), sorted(side_b)],
                                 method="kernighan-lin")


def kernighan_lin_bisection(graph: InteractionGraph, seed: Optional[int] = 0,
                            max_passes: int = 10,
                            restarts: int = 3) -> Partition:
    """Bisect a graph with Kernighan–Lin from random balanced starts.

    Parameters
    ----------
    graph:
        Interaction graph to bisect.
    seed:
        Base seed; each restart perturbs it deterministically.
    max_passes:
        Maximum KL passes per restart.
    restarts:
        Number of random restarts; the lowest-cut result is returned.
    """
    if graph.num_vertices < 2:
        raise PartitionError("cannot bisect a graph with fewer than 2 vertices")
    best: Optional[Partition] = None
    best_cut = float("inf")
    for restart in range(max(1, restarts)):
        restart_seed = None if seed is None else seed + restart * 7919
        side_a, side_b = _initial_split(graph.num_vertices, restart_seed)
        start = Partition.from_blocks([sorted(side_a), sorted(side_b)],
                                      method="kl-start")
        refined = kl_refine(graph, start, max_passes=max_passes)
        cut = refined.cut_weight(graph)
        if cut < best_cut:
            best_cut = cut
            best = refined
    assert best is not None
    return best
