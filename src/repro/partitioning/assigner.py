"""Circuit-to-node assignment and remote-gate labelling.

Bridges the partitioning substrate and the runtime: given a circuit and a
partition of its qubits into QPU nodes, :func:`distribute_circuit` produces a
:class:`DistributedProgram` whose gates are labelled ``"remote"`` when their
operands live on different nodes.  This is the object that the scheduling
and execution layers consume, and its local/remote gate counts reproduce the
corresponding columns of Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.circuits.circuit import QuantumCircuit
from repro.partitioning.interaction_graph import InteractionGraph
from repro.partitioning.partition import Partition
from repro.partitioning.registry import Partitioner, get_partitioner
from repro.exceptions import PartitionError

__all__ = [
    "DistributedProgram",
    "distribute_circuit",
    "label_remote_gates",
    "rebalance_partition",
]


@dataclass
class DistributedProgram:
    """A circuit bound to a qubit partition.

    Attributes
    ----------
    circuit:
        Circuit whose two-qubit gates crossing the partition are labelled
        ``"remote"``.
    partition:
        The qubit-to-node assignment used for labelling.
    name:
        Program name (inherited from the source circuit).
    """

    circuit: QuantumCircuit
    partition: Partition
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            self.name = self.circuit.name

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of QPU nodes the program is distributed over."""
        return self.partition.num_blocks

    @property
    def num_qubits(self) -> int:
        """Number of data qubits in the program."""
        return self.circuit.num_qubits

    def node_of(self, qubit: int) -> int:
        """Node index hosting a given data qubit."""
        return self.partition.block_of(qubit)

    def qubits_on_node(self, node: int) -> List[int]:
        """Data qubits assigned to a node."""
        return self.partition.block_members(node)

    # ------------------------------------------------------------------
    # gate statistics (Table I columns)
    # ------------------------------------------------------------------
    def remote_gate_count(self) -> int:
        """Number of two-qubit gates whose operands live on different nodes."""
        return sum(1 for gate in self.circuit.gates if gate.is_remote)

    def local_two_qubit_count(self) -> int:
        """Number of two-qubit gates entirely within one node."""
        return sum(
            1 for gate in self.circuit.gates
            if gate.is_two_qubit and not gate.is_remote
        )

    def single_qubit_count(self) -> int:
        """Number of single-qubit gates."""
        return self.circuit.num_single_qubit_gates()

    def remote_fraction(self) -> float:
        """Fraction of two-qubit gates that are remote."""
        total = self.circuit.num_two_qubit_gates()
        return self.remote_gate_count() / total if total else 0.0

    def remote_pairs(self) -> List[Tuple[int, int]]:
        """Node pairs (a < b) of every remote gate, in program order."""
        pairs = []
        for gate in self.circuit.gates:
            if gate.is_remote:
                node_a = self.node_of(gate.qubits[0])
                node_b = self.node_of(gate.qubits[1])
                pairs.append((min(node_a, node_b), max(node_a, node_b)))
        return pairs

    def properties(self) -> Dict[str, int]:
        """Structural summary used by the Table I report."""
        return {
            "qubits": self.num_qubits,
            "local_2q": self.local_two_qubit_count(),
            "remote_2q": self.remote_gate_count(),
            "single_q": self.single_qubit_count(),
            "depth": int(self.circuit.depth()),
        }


def label_remote_gates(circuit: QuantumCircuit, partition: Partition) -> QuantumCircuit:
    """Return a copy of ``circuit`` with cross-partition 2Q gates labelled remote."""
    labels: Dict[int, Optional[str]] = {}
    for index, gate in enumerate(circuit.gates):
        if gate.is_two_qubit:
            node_a = partition.block_of(gate.qubits[0])
            node_b = partition.block_of(gate.qubits[1])
            labels[index] = "remote" if node_a != node_b else None
        elif gate.label == "remote":
            labels[index] = None  # stale label from a previous partition
    return circuit.relabel_gates(labels)


def rebalance_partition(graph: InteractionGraph, partition: Partition,
                        target_sizes: List[int]) -> Partition:
    """Move vertices between blocks until each block has its target size.

    The multilevel partitioner tolerates a small imbalance (like METIS), but
    the DQC architecture hosts an exact number of data qubits per node, so
    oversized blocks must shed vertices.  Vertices are moved greedily from
    oversized to undersized blocks choosing, at every step, the move with the
    smallest cut-weight increase.
    """
    if len(target_sizes) != partition.num_blocks:
        raise PartitionError("target_sizes length must equal num_blocks")
    if sum(target_sizes) != partition.num_vertices:
        raise PartitionError("target sizes must sum to the number of vertices")

    assignment = dict(partition.assignment)

    def block_sizes() -> List[int]:
        sizes = [0] * partition.num_blocks
        for block in assignment.values():
            sizes[block] += 1
        return sizes

    def move_cost(vertex: int, destination: int) -> float:
        source = assignment[vertex]
        delta = 0.0
        for neighbor, weight in graph.neighbors(vertex).items():
            if assignment[neighbor] == source:
                delta += weight
            elif assignment[neighbor] == destination:
                delta -= weight
        return delta

    sizes = block_sizes()
    while any(size > target for size, target in zip(sizes, target_sizes)):
        oversized = [b for b in range(partition.num_blocks)
                     if sizes[b] > target_sizes[b]]
        undersized = [b for b in range(partition.num_blocks)
                      if sizes[b] < target_sizes[b]]
        best: Optional[Tuple[float, int, int]] = None
        for source in oversized:
            for vertex, block in assignment.items():
                if block != source:
                    continue
                for destination in undersized:
                    cost = move_cost(vertex, destination)
                    candidate = (cost, vertex, destination)
                    if best is None or candidate < best:
                        best = candidate
        if best is None:
            raise PartitionError("rebalancing failed to find a legal move")
        _, vertex, destination = best
        assignment[vertex] = destination
        sizes = block_sizes()

    return Partition(assignment, partition.num_blocks,
                     method=f"{partition.method}+rebalance")


def distribute_circuit(
    circuit: QuantumCircuit,
    num_nodes: int = 2,
    partition: Optional[Partition] = None,
    method: Union[str, Partitioner] = "multilevel",
    seed: int = 0,
    exact_balance: bool = True,
) -> DistributedProgram:
    """Partition a circuit's qubits over QPU nodes and label remote gates.

    Parameters
    ----------
    circuit:
        Input circuit (not modified).
    num_nodes:
        Number of QPU nodes; ignored when ``partition`` is given.
    partition:
        Pre-computed partition to use (the ``"precomputed"`` passthrough);
        when omitted, the interaction graph is partitioned with ``method``.
    method:
        Partitioning strategy: a name registered in
        :mod:`repro.partitioning.registry` (``"multilevel"`` reproduces the
        METIS baseline of the paper) or a :class:`Partitioner` instance.
    seed:
        Seed for the partitioner.
    exact_balance:
        If ``True`` (default), the partition is rebalanced so every node
        hosts exactly ``num_qubits / num_nodes`` data qubits (rounded as
        evenly as possible), matching the paper's symmetric node capacity.
    """
    if partition is None:
        partitioner = get_partitioner(method)
        graph = InteractionGraph.from_circuit(circuit)
        partition = partitioner.partition(graph, num_blocks=num_nodes,
                                          seed=seed)
        if exact_balance:
            base = circuit.num_qubits // num_nodes
            remainder = circuit.num_qubits % num_nodes
            targets = [base + (1 if index < remainder else 0)
                       for index in range(num_nodes)]
            if partition.block_sizes() != targets:
                partition = rebalance_partition(graph, partition, targets)
    if partition.num_vertices != circuit.num_qubits:
        raise PartitionError(
            "partition size does not match circuit register "
            f"({partition.num_vertices} vs {circuit.num_qubits})"
        )
    labelled = label_remote_gates(circuit, partition)
    return DistributedProgram(circuit=labelled, partition=partition)
