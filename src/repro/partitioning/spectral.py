"""Spectral graph bisection (Fiedler vector).

The second-smallest eigenvector of the graph Laplacian provides a relaxation
of the minimum-cut bisection problem; thresholding it at its median yields a
balanced split.  Used as an alternative initial partitioner for the
multilevel algorithm and as a cross-check in tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.partitioning.interaction_graph import InteractionGraph
from repro.partitioning.partition import Partition
from repro.exceptions import PartitionError

__all__ = ["spectral_bisection", "fiedler_vector"]


def fiedler_vector(graph: InteractionGraph) -> np.ndarray:
    """Return the Fiedler vector (eigenvector of the 2nd smallest eigenvalue).

    For graphs with isolated vertices or several connected components the
    Laplacian has a degenerate null space; in that case the returned vector
    is still a valid eigenvector orthogonal to the constant vector and the
    thresholding in :func:`spectral_bisection` remains well defined.
    """
    if graph.num_vertices < 2:
        raise PartitionError("need at least 2 vertices for a Fiedler vector")
    laplacian = graph.laplacian()
    eigenvalues, eigenvectors = np.linalg.eigh(laplacian)
    order = np.argsort(eigenvalues)
    return np.asarray(eigenvectors[:, order[1]], dtype=float)


def spectral_bisection(graph: InteractionGraph,
                       seed: Optional[int] = None) -> Partition:
    """Balanced bisection by thresholding the Fiedler vector at its median.

    Exactly half of the vertices (rounding down) are placed in block 0 —
    those with the smallest Fiedler components — and the rest in block 1.
    Ties are broken by vertex index for determinism; ``seed`` is accepted for
    interface compatibility with the other partitioners and ignored.
    """
    vector = fiedler_vector(graph)
    order = sorted(range(graph.num_vertices), key=lambda v: (vector[v], v))
    half = graph.num_vertices // 2
    block0 = sorted(order[:half])
    block1 = sorted(order[half:])
    return Partition.from_blocks([block0, block1], method="spectral")
