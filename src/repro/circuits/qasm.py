"""Minimal OpenQASM 2.0 export / import.

The reproduction does not depend on external toolchains, but an OpenQASM
round trip makes it easy to inspect benchmark circuits with third-party
viewers and to feed externally produced circuits into the co-design
pipeline.  Only the gate set used by this package is supported.
"""

from __future__ import annotations

import re
from typing import List

from repro.circuits.circuit import QuantumCircuit
from repro.exceptions import CircuitError

__all__ = ["to_qasm", "from_qasm"]

_SUPPORTED_EXPORT = {
    "id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx",
    "rx", "ry", "rz", "p", "u3", "cx", "cz", "cp", "rzz", "swap",
    "measure", "reset", "barrier",
}

_HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'


def to_qasm(circuit: QuantumCircuit) -> str:
    """Serialise a circuit to OpenQASM 2.0 text."""
    lines: List[str] = [_HEADER.rstrip("\n")]
    lines.append(f"qreg q[{circuit.num_qubits}];")
    lines.append(f"creg c[{circuit.num_qubits}];")
    for gate in circuit.gates:
        if gate.name not in _SUPPORTED_EXPORT:
            raise CircuitError(f"cannot export gate {gate.name!r} to QASM")
        operands = ",".join(f"q[{q}]" for q in gate.qubits)
        if gate.name == "measure":
            qubit = gate.qubits[0]
            lines.append(f"measure q[{qubit}] -> c[{qubit}];")
        elif gate.name == "barrier":
            lines.append(f"barrier {operands};")
        elif gate.params:
            params = ",".join(f"{p:.12g}" for p in gate.params)
            lines.append(f"{gate.name}({params}) {operands};")
        else:
            lines.append(f"{gate.name} {operands};")
    return "\n".join(lines) + "\n"


_GATE_LINE = re.compile(
    r"^(?P<name>[a-z_][a-z0-9_]*)\s*(\((?P<params>[^)]*)\))?\s+(?P<args>.+);$"
)
_MEASURE_LINE = re.compile(r"^measure\s+q\[(?P<q>\d+)\]\s*->\s*c\[\d+\];$")
_QREG_LINE = re.compile(r"^qreg\s+q\[(?P<n>\d+)\];$")


def from_qasm(text: str) -> QuantumCircuit:
    """Parse OpenQASM 2.0 text produced by :func:`to_qasm`.

    The parser supports a single quantum register named ``q`` and the gate
    set exported by this package.  Anything else raises
    :class:`~repro.exceptions.CircuitError`.
    """
    circuit: QuantumCircuit | None = None
    for raw_line in text.splitlines():
        line = raw_line.split("//", 1)[0].strip()
        if not line:
            continue
        if line.startswith("OPENQASM") or line.startswith("include"):
            continue
        if line.startswith("creg"):
            continue
        qreg_match = _QREG_LINE.match(line)
        if qreg_match:
            circuit = QuantumCircuit(int(qreg_match.group("n")), name="qasm")
            continue
        if circuit is None:
            raise CircuitError("QASM gate encountered before qreg declaration")
        measure_match = _MEASURE_LINE.match(line)
        if measure_match:
            circuit.measure(int(measure_match.group("q")))
            continue
        gate_match = _GATE_LINE.match(line)
        if not gate_match:
            raise CircuitError(f"cannot parse QASM line: {raw_line!r}")
        name = gate_match.group("name")
        params_text = gate_match.group("params")
        params = tuple(
            float(eval(p, {"__builtins__": {}}, {"pi": 3.141592653589793}))
            for p in params_text.split(",")
        ) if params_text else ()
        qubits = tuple(
            int(match.group(1))
            for match in re.finditer(r"q\[(\d+)\]", gate_match.group("args"))
        )
        if name == "barrier":
            for qubit in qubits:
                circuit.barrier(qubit)
            continue
        circuit.add_gate(name, qubits, params)
    if circuit is None:
        raise CircuitError("QASM text contains no qreg declaration")
    return circuit
