"""Quantum circuit container.

:class:`QuantumCircuit` is a thin, ordered list of :class:`~repro.circuits.gate.Gate`
objects over an integer-indexed qubit register.  It deliberately mirrors the
small subset of Qiskit's / pytket's circuit API that the paper's pipeline
needs:

* builder methods for the gates used by the benchmarks (``h``, ``rx``, ``rz``,
  ``cx``, ``cz``, ``rzz``, ``cp``, ``swap``, ``measure``),
* structural queries (gate counts, two-qubit gate list, depth),
* composition, slicing, and qubit remapping used by the partitioner and the
  segment-variant compiler.
"""

from __future__ import annotations

import copy as _copy
from collections import Counter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.circuits.gate import Gate, gate_spec
from repro.exceptions import CircuitError

__all__ = ["QuantumCircuit"]


class QuantumCircuit:
    """An ordered sequence of gates acting on ``num_qubits`` qubits.

    Parameters
    ----------
    num_qubits:
        Size of the qubit register.  Qubit indices are ``0 .. num_qubits-1``.
    name:
        Optional human-readable circuit name (used by the benchmark registry).

    Examples
    --------
    >>> circuit = QuantumCircuit(2, name="bell")
    >>> circuit.h(0)
    >>> circuit.cx(0, 1)
    >>> circuit.num_gates
    2
    >>> circuit.depth()
    2
    """

    def __init__(self, num_qubits: int, name: Optional[str] = None) -> None:
        if num_qubits < 1:
            raise CircuitError("a circuit needs at least one qubit")
        self._num_qubits = int(num_qubits)
        self.name = name or "circuit"
        self._gates: List[Gate] = []

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        """Number of qubits in the register."""
        return self._num_qubits

    @property
    def gates(self) -> Tuple[Gate, ...]:
        """The gates of the circuit in program order (immutable view)."""
        return tuple(self._gates)

    @property
    def num_gates(self) -> int:
        """Total number of gates including directives."""
        return len(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, index):
        if isinstance(index, slice):
            sub = QuantumCircuit(self._num_qubits, name=f"{self.name}[{index}]")
            sub._gates = list(self._gates[index])
            return sub
        return self._gates[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        return (
            self._num_qubits == other._num_qubits and self._gates == other._gates
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuantumCircuit(name={self.name!r}, num_qubits={self._num_qubits}, "
            f"num_gates={self.num_gates})"
        )

    # ------------------------------------------------------------------
    # gate application
    # ------------------------------------------------------------------
    def append(self, gate: Gate) -> Gate:
        """Append a pre-built :class:`Gate`, validating qubit bounds."""
        if any(q >= self._num_qubits for q in gate.qubits):
            raise CircuitError(
                f"gate {gate.name!r} on {gate.qubits} exceeds register size "
                f"{self._num_qubits}"
            )
        self._gates.append(gate)
        return gate

    def extend(self, gates: Iterable[Gate]) -> None:
        """Append several gates in order."""
        for gate in gates:
            self.append(gate)

    def add_gate(
        self,
        name: str,
        qubits: Sequence[int],
        params: Sequence[float] = (),
        label: Optional[str] = None,
    ) -> Gate:
        """Build a gate from its name and append it."""
        return self.append(Gate(name, tuple(qubits), tuple(params), label))

    # --- single-qubit builders -----------------------------------------
    def h(self, qubit: int) -> Gate:
        """Apply a Hadamard gate."""
        return self.add_gate("h", (qubit,))

    def x(self, qubit: int) -> Gate:
        """Apply a Pauli-X gate."""
        return self.add_gate("x", (qubit,))

    def y(self, qubit: int) -> Gate:
        """Apply a Pauli-Y gate."""
        return self.add_gate("y", (qubit,))

    def z(self, qubit: int) -> Gate:
        """Apply a Pauli-Z gate."""
        return self.add_gate("z", (qubit,))

    def s(self, qubit: int) -> Gate:
        """Apply an S (phase) gate."""
        return self.add_gate("s", (qubit,))

    def t(self, qubit: int) -> Gate:
        """Apply a T gate."""
        return self.add_gate("t", (qubit,))

    def rx(self, theta: float, qubit: int) -> Gate:
        """Apply an X-rotation by angle ``theta``."""
        return self.add_gate("rx", (qubit,), (theta,))

    def ry(self, theta: float, qubit: int) -> Gate:
        """Apply a Y-rotation by angle ``theta``."""
        return self.add_gate("ry", (qubit,), (theta,))

    def rz(self, theta: float, qubit: int) -> Gate:
        """Apply a Z-rotation by angle ``theta``."""
        return self.add_gate("rz", (qubit,), (theta,))

    def p(self, theta: float, qubit: int) -> Gate:
        """Apply a phase gate with angle ``theta``."""
        return self.add_gate("p", (qubit,), (theta,))

    # --- two-qubit builders ---------------------------------------------
    def cx(self, control: int, target: int) -> Gate:
        """Apply a CNOT with the given control and target."""
        return self.add_gate("cx", (control, target))

    def cz(self, qubit_a: int, qubit_b: int) -> Gate:
        """Apply a controlled-Z gate."""
        return self.add_gate("cz", (qubit_a, qubit_b))

    def cp(self, theta: float, qubit_a: int, qubit_b: int) -> Gate:
        """Apply a controlled-phase gate with angle ``theta``."""
        return self.add_gate("cp", (qubit_a, qubit_b), (theta,))

    def rzz(self, theta: float, qubit_a: int, qubit_b: int) -> Gate:
        """Apply an Ising ZZ interaction ``exp(-i theta/2 Z⊗Z)``."""
        return self.add_gate("rzz", (qubit_a, qubit_b), (theta,))

    def swap(self, qubit_a: int, qubit_b: int) -> Gate:
        """Apply a SWAP gate."""
        return self.add_gate("swap", (qubit_a, qubit_b))

    # --- directives -------------------------------------------------------
    def measure(self, qubit: int) -> Gate:
        """Measure a qubit in the computational basis."""
        return self.add_gate("measure", (qubit,))

    def measure_all(self) -> None:
        """Measure every qubit in the register."""
        for qubit in range(self._num_qubits):
            self.measure(qubit)

    def barrier(self, qubit: int) -> Gate:
        """Insert a scheduling barrier on a qubit."""
        return self.add_gate("barrier", (qubit,))

    # ------------------------------------------------------------------
    # structural queries
    # ------------------------------------------------------------------
    def count_ops(self) -> Dict[str, int]:
        """Return a histogram of gate names."""
        return dict(Counter(gate.name for gate in self._gates))

    def num_single_qubit_gates(self) -> int:
        """Number of single-qubit unitary gates."""
        return sum(1 for gate in self._gates if gate.is_single_qubit)

    def num_two_qubit_gates(self) -> int:
        """Number of two-qubit unitary gates."""
        return sum(1 for gate in self._gates if gate.is_two_qubit)

    def two_qubit_gates(self) -> List[Gate]:
        """Return the two-qubit unitary gates in program order."""
        return [gate for gate in self._gates if gate.is_two_qubit]

    def num_measurements(self) -> int:
        """Number of measurement directives."""
        return sum(1 for gate in self._gates if gate.is_measurement)

    def qubits_used(self) -> Tuple[int, ...]:
        """Sorted tuple of qubit indices that appear in at least one gate."""
        used = set()
        for gate in self._gates:
            used.update(gate.qubits)
        return tuple(sorted(used))

    def interactions(self) -> List[Tuple[int, int]]:
        """Return the (unordered) qubit pairs of every two-qubit gate."""
        pairs = []
        for gate in self._gates:
            if gate.is_two_qubit:
                a, b = gate.qubits
                pairs.append((min(a, b), max(a, b)))
        return pairs

    def depth(self, weights: Optional[Dict[str, float]] = None) -> float:
        """Return the circuit depth.

        Without ``weights``, each gate contributes 1 to the depth of every
        qubit it acts on, and the depth is the maximum over qubits (the usual
        unit-depth).  With ``weights`` (mapping gate name to a latency), the
        depth is the critical-path latency, which is how the paper expresses
        depth in units of a local CNOT.
        """
        finish: Dict[int, float] = {}
        for gate in self._gates:
            duration = 1.0 if weights is None else float(weights.get(gate.name, 1.0))
            start = max((finish.get(q, 0.0) for q in gate.qubits), default=0.0)
            for q in gate.qubits:
                finish[q] = start + duration
        return max(finish.values(), default=0.0)

    # ------------------------------------------------------------------
    # composition / transformation
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "QuantumCircuit":
        """Return a deep copy (gates are immutable so the list is copied)."""
        new = QuantumCircuit(self._num_qubits, name=name or self.name)
        new._gates = list(self._gates)
        return new

    def compose(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """Return a new circuit that applies ``self`` then ``other``.

        The register sizes must match.
        """
        if other.num_qubits != self._num_qubits:
            raise CircuitError(
                "cannot compose circuits with different register sizes "
                f"({self._num_qubits} vs {other.num_qubits})"
            )
        combined = self.copy(name=f"{self.name}+{other.name}")
        combined.extend(other.gates)
        return combined

    def remap_qubits(self, mapping: Dict[int, int],
                     num_qubits: Optional[int] = None) -> "QuantumCircuit":
        """Return a circuit with qubit indices remapped through ``mapping``."""
        size = num_qubits if num_qubits is not None else self._num_qubits
        new = QuantumCircuit(size, name=self.name)
        for gate in self._gates:
            new.append(gate.remap(mapping))
        return new

    def relabel_gates(self, labels: Dict[int, Optional[str]]) -> "QuantumCircuit":
        """Return a copy where gate ``i`` gets label ``labels[i]`` if present."""
        new = QuantumCircuit(self._num_qubits, name=self.name)
        for index, gate in enumerate(self._gates):
            if index in labels:
                gate = gate.with_label(labels[index])
            new.append(gate)
        return new

    def without_directives(self) -> "QuantumCircuit":
        """Return a copy with measurements, resets, and barriers removed."""
        new = QuantumCircuit(self._num_qubits, name=self.name)
        new._gates = [g for g in self._gates if not g.is_directive]
        return new

    def inverse(self) -> "QuantumCircuit":
        """Return the inverse circuit (reversed order, parameters negated).

        Only unitary gates are supported; directives raise
        :class:`CircuitError`.
        """
        new = QuantumCircuit(self._num_qubits, name=f"{self.name}_dg")
        for gate in reversed(self._gates):
            if gate.is_directive:
                raise CircuitError("cannot invert a circuit with directives")
            spec = gate.spec
            if spec.num_params:
                new.append(Gate(gate.name, gate.qubits,
                                tuple(-p for p in gate.params), gate.label))
            elif spec.self_inverse:
                new.append(gate)
            elif gate.name == "s":
                new.add_gate("sdg", gate.qubits)
            elif gate.name == "sdg":
                new.add_gate("s", gate.qubits)
            elif gate.name == "t":
                new.add_gate("tdg", gate.qubits)
            elif gate.name == "tdg":
                new.add_gate("t", gate.qubits)
            else:
                raise CircuitError(f"cannot invert gate {gate.name!r}")
        return new

    def __deepcopy__(self, memo) -> "QuantumCircuit":
        new = QuantumCircuit(self._num_qubits, name=self.name)
        new._gates = _copy.deepcopy(self._gates, memo)
        return new

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check internal consistency; raise :class:`CircuitError` if broken."""
        for gate in self._gates:
            gate_spec(gate.name)
            if any(q >= self._num_qubits or q < 0 for q in gate.qubits):
                raise CircuitError(
                    f"gate {gate.name!r} on {gate.qubits} out of range for "
                    f"{self._num_qubits} qubits"
                )
