"""Dependency DAG of a quantum circuit.

The discrete-event executor and the adaptive scheduler both operate on the
gate dependency graph rather than on the flat gate list: a gate becomes
*ready* when all of its qubit-predecessors have finished.  The DAG also
provides ASAP/ALAP levelling, which is used by the segment-variant compiler
and by tests that validate schedule legality.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gate import Gate
from repro.exceptions import DAGError

__all__ = ["DAGNode", "CircuitDAG"]


@dataclass
class DAGNode:
    """A gate occurrence inside a :class:`CircuitDAG`.

    Attributes
    ----------
    index:
        Position of the gate in the originating circuit's program order.
        Node indices are unique within a DAG.
    gate:
        The gate payload.
    predecessors / successors:
        Indices of directly dependent nodes (sharing at least one qubit with
        no other gate in between on that qubit).
    """

    index: int
    gate: Gate
    predecessors: Set[int] = field(default_factory=set)
    successors: Set[int] = field(default_factory=set)

    @property
    def is_remote(self) -> bool:
        """``True`` if the payload gate is labelled remote."""
        return self.gate.is_remote


class CircuitDAG:
    """Gate dependency DAG built from a :class:`QuantumCircuit`.

    Two gates are connected by a directed edge if they share a qubit and are
    adjacent on that qubit in program order.  The DAG therefore encodes
    exactly the data dependencies that constrain any legal schedule of the
    circuit.
    """

    def __init__(self, circuit: QuantumCircuit) -> None:
        self._circuit = circuit
        self._nodes: Dict[int, DAGNode] = {}
        self._build()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        last_on_qubit: Dict[int, int] = {}
        for index, gate in enumerate(self._circuit.gates):
            node = DAGNode(index=index, gate=gate)
            self._nodes[index] = node
            for qubit in gate.qubits:
                if qubit in last_on_qubit:
                    pred = last_on_qubit[qubit]
                    node.predecessors.add(pred)
                    self._nodes[pred].successors.add(index)
                last_on_qubit[qubit] = index

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def circuit(self) -> QuantumCircuit:
        """The circuit this DAG was built from."""
        return self._circuit

    @property
    def num_nodes(self) -> int:
        """Number of gate nodes."""
        return len(self._nodes)

    def node(self, index: int) -> DAGNode:
        """Return the node with the given gate index."""
        try:
            return self._nodes[index]
        except KeyError as exc:
            raise DAGError(f"no DAG node with index {index}") from exc

    def nodes(self) -> Iterator[DAGNode]:
        """Iterate over nodes in program order."""
        for index in sorted(self._nodes):
            yield self._nodes[index]

    def gate(self, index: int) -> Gate:
        """Return the gate payload of a node."""
        return self.node(index).gate

    def predecessors(self, index: int) -> Set[int]:
        """Direct predecessors of a node."""
        return set(self.node(index).predecessors)

    def successors(self, index: int) -> Set[int]:
        """Direct successors of a node."""
        return set(self.node(index).successors)

    def roots(self) -> List[int]:
        """Nodes with no predecessors (initially ready gates)."""
        return [i for i, n in self._nodes.items() if not n.predecessors]

    def leaves(self) -> List[int]:
        """Nodes with no successors."""
        return [i for i, n in self._nodes.items() if not n.successors]

    def remote_nodes(self) -> List[int]:
        """Indices of gates labelled as remote, in program order."""
        return [i for i in sorted(self._nodes) if self._nodes[i].is_remote]

    # ------------------------------------------------------------------
    # orderings and layers
    # ------------------------------------------------------------------
    def topological_order(self) -> List[int]:
        """Return node indices in a topological order (Kahn's algorithm).

        Ties are broken by program order so the result is deterministic.
        """
        indegree = {i: len(n.predecessors) for i, n in self._nodes.items()}
        ready = sorted(i for i, d in indegree.items() if d == 0)
        queue = deque(ready)
        order: List[int] = []
        while queue:
            current = queue.popleft()
            order.append(current)
            for successor in sorted(self._nodes[current].successors):
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    queue.append(successor)
        if len(order) != len(self._nodes):
            raise DAGError("dependency graph contains a cycle")
        return order

    def layers(self) -> List[List[int]]:
        """Group nodes into dependency layers (unit-latency ASAP levels).

        Layer ``k`` contains the gates whose longest dependency chain from a
        root has length ``k``.  The number of layers equals the unit depth of
        the circuit.
        """
        level: Dict[int, int] = {}
        for index in self.topological_order():
            preds = self._nodes[index].predecessors
            level[index] = 0 if not preds else 1 + max(level[p] for p in preds)
        grouped: Dict[int, List[int]] = defaultdict(list)
        for index, lev in level.items():
            grouped[lev].append(index)
        return [sorted(grouped[k]) for k in sorted(grouped)]

    def asap_levels(
        self, durations: Optional[Dict[str, float]] = None
    ) -> Dict[int, float]:
        """Earliest start time of each gate under unlimited parallelism.

        ``durations`` maps gate names to latencies; missing names default to
        1.0.  Without ``durations`` all gates take one time unit.
        """
        start: Dict[int, float] = {}
        for index in self.topological_order():
            node = self._nodes[index]
            if not node.predecessors:
                start[index] = 0.0
            else:
                start[index] = max(
                    start[p] + self._duration(self._nodes[p].gate, durations)
                    for p in node.predecessors
                )
        return start

    def alap_levels(
        self, durations: Optional[Dict[str, float]] = None
    ) -> Dict[int, float]:
        """Latest start time of each gate that preserves the critical path."""
        asap = self.asap_levels(durations)
        makespan = max(
            (asap[i] + self._duration(self._nodes[i].gate, durations)
             for i in self._nodes),
            default=0.0,
        )
        finish: Dict[int, float] = {}
        for index in reversed(self.topological_order()):
            node = self._nodes[index]
            if not node.successors:
                finish[index] = makespan
            else:
                finish[index] = min(
                    finish[s] - self._duration(self._nodes[s].gate, durations)
                    for s in node.successors
                )
        return {
            i: finish[i] - self._duration(self._nodes[i].gate, durations)
            for i in self._nodes
        }

    def critical_path_length(
        self, durations: Optional[Dict[str, float]] = None
    ) -> float:
        """Length of the critical path (weighted depth)."""
        asap = self.asap_levels(durations)
        return max(
            (asap[i] + self._duration(self._nodes[i].gate, durations)
             for i in self._nodes),
            default=0.0,
        )

    def slack(self, durations: Optional[Dict[str, float]] = None) -> Dict[int, float]:
        """Scheduling slack (ALAP − ASAP start) of each gate."""
        asap = self.asap_levels(durations)
        alap = self.alap_levels(durations)
        return {i: alap[i] - asap[i] for i in self._nodes}

    @staticmethod
    def _duration(gate: Gate, durations: Optional[Dict[str, float]]) -> float:
        if durations is None:
            return 1.0
        return float(durations.get(gate.name, 1.0))

    # ------------------------------------------------------------------
    # reachability / ancestry
    # ------------------------------------------------------------------
    def ancestors(self, index: int) -> Set[int]:
        """All transitive predecessors of a node."""
        seen: Set[int] = set()
        stack = list(self.node(index).predecessors)
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._nodes[current].predecessors)
        return seen

    def descendants(self, index: int) -> Set[int]:
        """All transitive successors of a node."""
        seen: Set[int] = set()
        stack = list(self.node(index).successors)
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._nodes[current].successors)
        return seen

    def is_legal_order(self, order: Sequence[int]) -> bool:
        """Check that ``order`` is a topological order of this DAG."""
        if sorted(order) != sorted(self._nodes):
            return False
        position = {node: pos for pos, node in enumerate(order)}
        for index, node in self._nodes.items():
            for pred in node.predecessors:
                if position[pred] > position[index]:
                    return False
        return True

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_circuit(self, order: Optional[Sequence[int]] = None) -> QuantumCircuit:
        """Rebuild a circuit from this DAG in the given (topological) order."""
        if order is None:
            order = self.topological_order()
        elif not self.is_legal_order(order):
            raise DAGError("provided order violates DAG dependencies")
        new = QuantumCircuit(self._circuit.num_qubits, name=self._circuit.name)
        for index in order:
            new.append(self._nodes[index].gate)
        return new

    def edges(self) -> List[Tuple[int, int]]:
        """Return all dependency edges as (predecessor, successor) pairs."""
        result = []
        for index, node in self._nodes.items():
            for successor in node.successors:
                result.append((index, successor))
        return sorted(result)
