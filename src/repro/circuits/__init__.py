"""Quantum-circuit IR substrate.

Exports the core circuit types used throughout the package: gates, circuits,
the dependency DAG, commutation analysis, and the segment rewrites that power
adaptive scheduling.
"""

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.commutation import CommutationTable, commutes_with_all, gates_commute
from repro.circuits.dag import CircuitDAG, DAGNode
from repro.circuits.drawer import draw_circuit
from repro.circuits.gate import GATE_LIBRARY, Gate, GateSpec, gate_spec
from repro.circuits.qasm import from_qasm, to_qasm
from repro.circuits.transforms import (
    alap_variant,
    asap_variant,
    move_gates_earlier,
    move_gates_later,
    reorder_is_equivalent,
)

__all__ = [
    "QuantumCircuit",
    "Gate",
    "GateSpec",
    "GATE_LIBRARY",
    "gate_spec",
    "CircuitDAG",
    "DAGNode",
    "gates_commute",
    "commutes_with_all",
    "CommutationTable",
    "draw_circuit",
    "to_qasm",
    "from_qasm",
    "asap_variant",
    "alap_variant",
    "move_gates_earlier",
    "move_gates_later",
    "reorder_is_equivalent",
]
