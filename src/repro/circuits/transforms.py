"""Circuit-level transformations used by the adaptive scheduler.

The paper pre-compiles each circuit segment into an *ASAP* variant (remote
gates pulled as early as their dependencies and commutation relations allow)
and an *ALAP* variant (remote gates pushed as late as possible).  Both
variants are equivalent circuits: they only reorder gates that commute.

These rewrites are expressed here as pure functions on
:class:`~repro.circuits.circuit.QuantumCircuit` so they can be tested in
isolation from the runtime.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.commutation import gates_commute
from repro.circuits.dag import CircuitDAG
from repro.circuits.gate import Gate
from repro.exceptions import SchedulingError

__all__ = [
    "move_gates_earlier",
    "move_gates_later",
    "asap_variant",
    "alap_variant",
    "reorder_is_equivalent",
    "canonical_gate_multiset",
]


def _default_is_remote(gate: Gate) -> bool:
    return gate.is_remote


def move_gates_earlier(
    circuit: QuantumCircuit,
    selector: Optional[Callable[[Gate], bool]] = None,
    max_passes: int = 0,
) -> QuantumCircuit:
    """Bubble selected gates toward the front of the circuit.

    A selected gate is swapped with its immediate predecessor in program
    order whenever the two gates commute.  The process repeats until a fixed
    point (or ``max_passes`` passes, if positive) is reached.  The result is
    an equivalent circuit in which the selected gates appear as early as
    commutation allows.

    Parameters
    ----------
    circuit:
        Input circuit (not modified).
    selector:
        Predicate choosing which gates to move; defaults to remote-labelled
        gates.
    max_passes:
        Optional safety bound on the number of full passes (0 = unbounded,
        the loop always terminates because each swap strictly decreases the
        sum of selected-gate positions).
    """
    selector = selector or _default_is_remote
    gates: List[Gate] = list(circuit.gates)
    passes = 0
    changed = True
    while changed:
        changed = False
        for position in range(1, len(gates)):
            gate = gates[position]
            previous = gates[position - 1]
            if not selector(gate) or selector(previous):
                continue
            if gates_commute(gate, previous):
                gates[position - 1], gates[position] = gate, previous
                changed = True
        passes += 1
        if max_passes and passes >= max_passes:
            break
    result = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}_asap")
    result.extend(gates)
    return result


def move_gates_later(
    circuit: QuantumCircuit,
    selector: Optional[Callable[[Gate], bool]] = None,
    max_passes: int = 0,
) -> QuantumCircuit:
    """Bubble selected gates toward the end of the circuit.

    Mirror image of :func:`move_gates_earlier`.
    """
    selector = selector or _default_is_remote
    gates: List[Gate] = list(circuit.gates)
    passes = 0
    changed = True
    while changed:
        changed = False
        for position in range(len(gates) - 2, -1, -1):
            gate = gates[position]
            following = gates[position + 1]
            if not selector(gate) or selector(following):
                continue
            if gates_commute(gate, following):
                gates[position], gates[position + 1] = following, gate
                changed = True
        passes += 1
        if max_passes and passes >= max_passes:
            break
    result = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}_alap")
    result.extend(gates)
    return result


def asap_variant(circuit: QuantumCircuit,
                 selector: Optional[Callable[[Gate], bool]] = None) -> QuantumCircuit:
    """ASAP segment variant: remote gates as early as commutation allows."""
    return move_gates_earlier(circuit, selector)


def alap_variant(circuit: QuantumCircuit,
                 selector: Optional[Callable[[Gate], bool]] = None) -> QuantumCircuit:
    """ALAP segment variant: remote gates as late as commutation allows."""
    return move_gates_later(circuit, selector)


def canonical_gate_multiset(circuit: QuantumCircuit) -> List[tuple]:
    """Sorted multiset of (name, qubits, params, label) tuples.

    Two reorderings of the same circuit must have identical multisets; used
    as a cheap equivalence pre-check.
    """
    return sorted(
        (gate.name, gate.qubits, gate.params, gate.label or "")
        for gate in circuit.gates
    )


def reorder_is_equivalent(original: QuantumCircuit,
                          reordered: QuantumCircuit) -> bool:
    """Check that ``reordered`` is a commutation-legal reordering of ``original``.

    The check verifies (1) both circuits contain the same gate multiset and
    (2) for every pair of gates whose relative order differs between the two
    circuits, the two gates commute.  This is sufficient for equivalence of
    the implemented rewrites, which only ever swap adjacent commuting gates.
    """
    if original.num_qubits != reordered.num_qubits:
        return False
    if canonical_gate_multiset(original) != canonical_gate_multiset(reordered):
        return False

    # Match occurrences of identical gates between the two circuits in order.
    def occurrence_keys(circuit: QuantumCircuit) -> List[tuple]:
        seen: dict = {}
        keys = []
        for gate in circuit.gates:
            base = (gate.name, gate.qubits, gate.params, gate.label or "")
            count = seen.get(base, 0)
            seen[base] = count + 1
            keys.append((base, count))
        return keys

    original_keys = occurrence_keys(original)
    reordered_keys = occurrence_keys(reordered)
    position_in_reordered = {key: pos for pos, key in enumerate(reordered_keys)}

    original_gates = list(original.gates)
    for i in range(len(original_gates)):
        for j in range(i + 1, len(original_gates)):
            pos_i = position_in_reordered[original_keys[i]]
            pos_j = position_in_reordered[original_keys[j]]
            if pos_i > pos_j:  # relative order flipped
                if not gates_commute(original_gates[i], original_gates[j]):
                    return False
    return True


def split_by_gate_indices(circuit: QuantumCircuit,
                          boundaries: Sequence[int]) -> List[QuantumCircuit]:
    """Split a circuit into contiguous chunks at the given gate indices.

    ``boundaries`` are exclusive end indices of each chunk except the last,
    e.g. ``boundaries=[3, 7]`` on a 10-gate circuit produces chunks
    ``[0:3]``, ``[3:7]``, ``[7:10]``.
    """
    previous = 0
    chunks: List[QuantumCircuit] = []
    for boundary in list(boundaries) + [circuit.num_gates]:
        if boundary < previous or boundary > circuit.num_gates:
            raise SchedulingError(f"invalid split boundary {boundary}")
        chunk = QuantumCircuit(circuit.num_qubits,
                               name=f"{circuit.name}_seg{len(chunks)}")
        chunk.extend(circuit.gates[previous:boundary])
        chunks.append(chunk)
        previous = boundary
    return chunks


def schedule_order_from_dag(circuit: QuantumCircuit,
                            priority: Callable[[Gate], float]) -> QuantumCircuit:
    """List-schedule the circuit greedily by a per-gate priority.

    At each step all ready gates (dependencies satisfied) are candidates and
    the one with the smallest priority value is emitted first.  The output
    is a dependency-legal reordering of the input; it is used as a reference
    scheduler in tests and ablations.
    """
    dag = CircuitDAG(circuit)
    indegree = {i: len(dag.predecessors(i)) for i in range(dag.num_nodes)}
    ready = [i for i, d in indegree.items() if d == 0]
    emitted: List[int] = []
    while ready:
        ready.sort(key=lambda i: (priority(dag.gate(i)), i))
        current = ready.pop(0)
        emitted.append(current)
        for successor in sorted(dag.successors(current)):
            indegree[successor] -= 1
            if indegree[successor] == 0:
                ready.append(successor)
    if len(emitted) != dag.num_nodes:
        raise SchedulingError("list scheduling failed to emit all gates")
    return dag.to_circuit(emitted)
