"""Gate commutation analysis.

The adaptive scheduler of the paper creates ASAP and ALAP variants of a
circuit segment by *commuting remote gates* past neighbouring gates.  This
module decides whether two gates commute.  It uses fast symbolic rules for
the common cases that appear in the benchmarks (diagonal ZZ/CP interactions,
CNOTs sharing controls or targets, Z-like and X-like single-qubit rotations)
and falls back to an exact unitary check on the joint support for anything
else.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, FrozenSet, Sequence, Tuple

import numpy as np

from repro.circuits.gate import Gate
from repro.exceptions import GateError

__all__ = [
    "gates_commute",
    "commutes_with_all",
    "CommutationTable",
]

# Single-qubit gates diagonal in the Z basis (commute with CX controls and
# with any diagonal two-qubit gate).
_Z_LIKE = frozenset({"id", "z", "s", "sdg", "t", "tdg", "rz", "p"})
# Single-qubit gates diagonal in the X basis (commute with CX targets).
_X_LIKE = frozenset({"id", "x", "rx"})


def _qubit_role(gate: Gate, qubit: int) -> str:
    """Return 'control', 'target', or 'both' for the given qubit of a gate."""
    if gate.name == "cx":
        return "control" if gate.qubits[0] == qubit else "target"
    return "both"


def _symbolic_commute(gate_a: Gate, gate_b: Gate) -> Tuple[bool, bool]:
    """Try to decide commutation by rules.

    Returns ``(decided, commutes)``.  When ``decided`` is False the caller
    should fall back to the exact matrix check.
    """
    shared = set(gate_a.qubits) & set(gate_b.qubits)
    if not shared:
        return True, True

    # Both diagonal in computational basis -> always commute.
    if gate_a.is_diagonal and gate_b.is_diagonal:
        return True, True

    # Identical gates always commute with themselves.
    if (
        gate_a.name == gate_b.name
        and gate_a.qubits == gate_b.qubits
        and gate_a.params == gate_b.params
    ):
        return True, True

    # CX / CX rules.
    if gate_a.name == "cx" and gate_b.name == "cx":
        roles = {( _qubit_role(gate_a, q), _qubit_role(gate_b, q)) for q in shared}
        # Commute iff on every shared qubit the roles match (control-control
        # or target-target).
        commutes = all(role_a == role_b for role_a, role_b in roles)
        return True, commutes

    # Single-qubit vs CX.
    for one_q, cx in ((gate_a, gate_b), (gate_b, gate_a)):
        if one_q.is_single_qubit and cx.name == "cx":
            qubit = one_q.qubits[0]
            role = _qubit_role(cx, qubit)
            if role == "control" and one_q.name in _Z_LIKE:
                return True, True
            if role == "target" and one_q.name in _X_LIKE:
                return True, True
            return True, False

    # Single-qubit vs diagonal two-qubit gate (cz / cp / rzz): commutes iff
    # the single-qubit gate is Z-like.
    for one_q, two_q in ((gate_a, gate_b), (gate_b, gate_a)):
        if one_q.is_single_qubit and two_q.is_two_qubit and two_q.is_diagonal:
            return True, one_q.name in _Z_LIKE

    # CX vs diagonal two-qubit gate: commutes iff the shared qubits are all
    # controls of the CX (diagonal gates act like Z-like on each qubit).
    for cx, diag in ((gate_a, gate_b), (gate_b, gate_a)):
        if cx.name == "cx" and diag.is_two_qubit and diag.is_diagonal:
            commutes = all(_qubit_role(cx, q) == "control" for q in shared)
            return True, commutes

    return False, False


def _embed(matrix: np.ndarray, gate_qubits: Sequence[int],
           all_qubits: Sequence[int]) -> np.ndarray:
    """Embed a 1- or 2-qubit unitary into the joint space of ``all_qubits``.

    Qubit ordering follows ``all_qubits`` with the first entry as the most
    significant bit; only used internally for the exact commutation check so
    any consistent convention works.
    """
    index_of = {q: i for i, q in enumerate(all_qubits)}
    n = len(all_qubits)
    dim = 2 ** n
    full = np.zeros((dim, dim), dtype=complex)
    gate_positions = [index_of[q] for q in gate_qubits]
    other_positions = [i for i in range(n) if i not in gate_positions]
    for row in range(dim):
        row_bits = [(row >> (n - 1 - i)) & 1 for i in range(n)]
        for col in range(dim):
            col_bits = [(col >> (n - 1 - i)) & 1 for i in range(n)]
            if any(row_bits[i] != col_bits[i] for i in other_positions):
                continue
            sub_row = 0
            sub_col = 0
            for k, pos in enumerate(gate_positions):
                sub_row = (sub_row << 1) | row_bits[pos]
                sub_col = (sub_col << 1) | col_bits[pos]
            full[row, col] = matrix[sub_row, sub_col]
    return full


def _exact_commute(gate_a: Gate, gate_b: Gate) -> bool:
    """Exact check on the joint support (at most 4 qubits for 2Q gates)."""
    all_qubits = sorted(set(gate_a.qubits) | set(gate_b.qubits))
    matrix_a = _embed(gate_a.matrix(), gate_a.qubits, all_qubits)
    matrix_b = _embed(gate_b.matrix(), gate_b.qubits, all_qubits)
    commutator = matrix_a @ matrix_b - matrix_b @ matrix_a
    return bool(np.allclose(commutator, 0.0, atol=1e-9))


def gates_commute(gate_a: Gate, gate_b: Gate, exact_fallback: bool = True) -> bool:
    """Return ``True`` if the two gates commute as operators.

    Directives (measure / reset / barrier) never commute with gates that
    share a qubit, which keeps them as scheduling fences.

    Parameters
    ----------
    gate_a, gate_b:
        The gates to compare.
    exact_fallback:
        If ``True`` (default) an exact matrix check is used when no symbolic
        rule applies; otherwise undecided cases conservatively return
        ``False``.
    """
    if gate_a.is_directive or gate_b.is_directive:
        return not gate_a.shares_qubit(gate_b)
    decided, commutes = _symbolic_commute(gate_a, gate_b)
    if decided:
        return commutes
    if not exact_fallback:
        return False
    return _exact_commute(gate_a, gate_b)


def commutes_with_all(gate: Gate, others: Sequence[Gate]) -> bool:
    """Return ``True`` if ``gate`` commutes with every gate in ``others``."""
    return all(gates_commute(gate, other) for other in others)


class CommutationTable:
    """Memoised commutation oracle over a fixed gate list.

    The segment-variant compiler repeatedly asks whether gate ``i`` commutes
    with gate ``j`` while sliding remote gates through a segment; this class
    caches those answers.
    """

    def __init__(self, gates: Sequence[Gate]) -> None:
        self._gates: Tuple[Gate, ...] = tuple(gates)
        self._cache: Dict[FrozenSet[int], bool] = {}

    @property
    def gates(self) -> Tuple[Gate, ...]:
        """The gate list the table was built over."""
        return self._gates

    def commute(self, index_a: int, index_b: int) -> bool:
        """Whether gates at positions ``index_a`` and ``index_b`` commute."""
        if index_a == index_b:
            return True
        if not (0 <= index_a < len(self._gates)) or not (
            0 <= index_b < len(self._gates)
        ):
            raise GateError("commutation query out of range")
        key = frozenset((index_a, index_b))
        if key not in self._cache:
            self._cache[key] = gates_commute(
                self._gates[index_a], self._gates[index_b]
            )
        return self._cache[key]

    def can_move_before(self, index: int, barrier_indices: Sequence[int]) -> bool:
        """Whether gate ``index`` commutes with all gates in ``barrier_indices``."""
        return all(self.commute(index, other) for other in barrier_indices)

    @property
    def cache_size(self) -> int:
        """Number of cached pair decisions (used by tests)."""
        return len(self._cache)


@lru_cache(maxsize=4096)
def _cached_pair_commutes(name_a: str, qubits_a: Tuple[int, ...],
                          params_a: Tuple[float, ...], name_b: str,
                          qubits_b: Tuple[int, ...],
                          params_b: Tuple[float, ...]) -> bool:
    """Functional cache keyed by gate structure (helper for hot loops)."""
    return gates_commute(Gate(name_a, qubits_a, params_a),
                         Gate(name_b, qubits_b, params_b))
