"""Plain-text circuit drawer.

Produces a compact ASCII rendering of a :class:`QuantumCircuit`, one row per
qubit and one column per dependency layer.  Used by the examples and handy
when debugging scheduling transforms; it has no role in the simulation
itself.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import CircuitDAG

__all__ = ["draw_circuit"]

_MAX_LABEL = 7


def _gate_symbol(name: str, params, remote: bool) -> str:
    """Short printable symbol for one gate occurrence."""
    base = name.upper()
    if params:
        base = f"{base}({params[0]:.2f})"
    if remote:
        base = f"*{base}"
    if len(base) > _MAX_LABEL:
        base = base[:_MAX_LABEL]
    return base


def draw_circuit(circuit: QuantumCircuit, max_layers: Optional[int] = None) -> str:
    """Render the circuit as ASCII art.

    Parameters
    ----------
    circuit:
        Circuit to draw.
    max_layers:
        If given, only the first ``max_layers`` dependency layers are drawn
        and an ellipsis column is appended.

    Returns
    -------
    str
        Multi-line string with one row per qubit.  Remote-labelled gates are
        prefixed with ``*``; the second qubit of a two-qubit gate is shown as
        ``o`` connected implicitly by sharing a column.
    """
    dag = CircuitDAG(circuit)
    layers = dag.layers()
    truncated = False
    if max_layers is not None and len(layers) > max_layers:
        layers = layers[:max_layers]
        truncated = True

    columns: List[Dict[int, str]] = []
    for layer in layers:
        column: Dict[int, str] = {}
        for node_index in layer:
            gate = dag.gate(node_index)
            symbol = _gate_symbol(gate.name, gate.params, gate.is_remote)
            primary = gate.qubits[0]
            column[primary] = symbol
            for other in gate.qubits[1:]:
                column[other] = "o"
        columns.append(column)

    width_of = [max((len(v) for v in column.values()), default=1) for column in columns]
    lines = []
    for qubit in range(circuit.num_qubits):
        cells = []
        for column, width in zip(columns, width_of):
            cell = column.get(qubit, "-" * width)
            cells.append(cell.ljust(width, "-"))
        row = f"q{qubit:>3}: " + "--".join(cells) if cells else f"q{qubit:>3}: "
        if truncated:
            row += "--..."
        lines.append(row)
    header = f"{circuit.name} ({circuit.num_qubits} qubits, {circuit.num_gates} gates)"
    return header + "\n" + "\n".join(lines)
