"""Gate-level primitives of the circuit IR.

The paper's co-design framework reasons about circuits at the gate level: it
needs to know which gates are single-qubit, which two-qubit gates are *local*
(both operands on one QPU) versus *remote* (operands on different QPUs), and
which gates commute so that remote gates can be moved earlier (ASAP) or later
(ALAP) inside a circuit segment.

This module provides:

* :class:`GateSpec` — static metadata about a gate type (arity, whether the
  gate is diagonal in the computational basis, symmetry under qubit
  exchange, ...).  The metadata drives the commutation rules in
  :mod:`repro.circuits.commutation`.
* :class:`Gate` — an *instance* of a gate applied to specific qubits with
  concrete parameters.
* :data:`GATE_LIBRARY` — the registry of gate types used by the benchmark
  generators (H, X, Z, RX, RZ, CNOT, CZ, RZZ, CPHASE, SWAP, measurement, ...).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.exceptions import GateError

__all__ = [
    "GateSpec",
    "Gate",
    "GATE_LIBRARY",
    "gate_spec",
    "register_gate_spec",
    "is_two_qubit",
    "is_single_qubit",
]


@dataclass(frozen=True)
class GateSpec:
    """Static description of a gate type.

    Attributes
    ----------
    name:
        Canonical lower-case gate name (``"cx"``, ``"rz"``...).
    num_qubits:
        Arity of the gate.
    num_params:
        Number of real parameters (rotation angles).
    diagonal:
        ``True`` if the gate's unitary is diagonal in the computational
        basis.  Diagonal two-qubit gates (CZ, RZZ, CPHASE) commute with each
        other and with Z-like single-qubit gates, which is what makes the
        ASAP/ALAP segment variants of the paper non-trivial.
    symmetric:
        ``True`` if the gate is invariant under exchange of its two qubits
        (CZ, RZZ, SWAP).  Asymmetric gates (CNOT, CPHASE with explicit
        control) distinguish control and target.
    self_inverse:
        ``True`` if applying the gate twice is the identity (for zero-
        parameter gates only).
    hermitian:
        ``True`` if the unitary is Hermitian.
    clifford:
        ``True`` if the gate is a Clifford gate for all parameter values.
    directive:
        ``True`` for non-unitary circuit elements such as measurement and
        barrier pseudo-gates.
    """

    name: str
    num_qubits: int
    num_params: int = 0
    diagonal: bool = False
    symmetric: bool = False
    self_inverse: bool = False
    hermitian: bool = False
    clifford: bool = False
    directive: bool = False

    def __post_init__(self) -> None:
        if self.num_qubits < 1:
            raise GateError(f"gate {self.name!r} must act on >= 1 qubit")
        if self.num_params < 0:
            raise GateError(f"gate {self.name!r} cannot have negative params")


def _build_library() -> Dict[str, GateSpec]:
    """Construct the default gate library used throughout the package."""
    specs = [
        # --- single-qubit gates -------------------------------------------
        GateSpec("id", 1, diagonal=True, symmetric=True, self_inverse=True,
                 hermitian=True, clifford=True),
        GateSpec("x", 1, self_inverse=True, hermitian=True, clifford=True),
        GateSpec("y", 1, self_inverse=True, hermitian=True, clifford=True),
        GateSpec("z", 1, diagonal=True, self_inverse=True, hermitian=True,
                 clifford=True),
        GateSpec("h", 1, self_inverse=True, hermitian=True, clifford=True),
        GateSpec("s", 1, diagonal=True, clifford=True),
        GateSpec("sdg", 1, diagonal=True, clifford=True),
        GateSpec("t", 1, diagonal=True),
        GateSpec("tdg", 1, diagonal=True),
        GateSpec("sx", 1, clifford=True),
        GateSpec("rx", 1, num_params=1),
        GateSpec("ry", 1, num_params=1),
        GateSpec("rz", 1, num_params=1, diagonal=True),
        GateSpec("p", 1, num_params=1, diagonal=True),
        GateSpec("u3", 1, num_params=3),
        # --- two-qubit gates ----------------------------------------------
        GateSpec("cx", 2, self_inverse=True, hermitian=True, clifford=True),
        GateSpec("cz", 2, diagonal=True, symmetric=True, self_inverse=True,
                 hermitian=True, clifford=True),
        GateSpec("cp", 2, num_params=1, diagonal=True, symmetric=True),
        GateSpec("rzz", 2, num_params=1, diagonal=True, symmetric=True),
        GateSpec("swap", 2, symmetric=True, self_inverse=True, hermitian=True,
                 clifford=True),
        GateSpec("iswap", 2, symmetric=True, clifford=True),
        # --- directives ----------------------------------------------------
        GateSpec("measure", 1, directive=True),
        GateSpec("reset", 1, directive=True),
        GateSpec("barrier", 1, directive=True),
    ]
    return {spec.name: spec for spec in specs}


GATE_LIBRARY: Dict[str, GateSpec] = _build_library()


def register_gate_spec(spec: GateSpec, overwrite: bool = False) -> None:
    """Register a custom :class:`GateSpec` in the global library.

    Parameters
    ----------
    spec:
        The specification to register.
    overwrite:
        If ``False`` (default) registering a name that already exists raises
        :class:`~repro.exceptions.GateError`.
    """
    if spec.name in GATE_LIBRARY and not overwrite:
        raise GateError(f"gate spec {spec.name!r} already registered")
    GATE_LIBRARY[spec.name] = spec


def gate_spec(name: str) -> GateSpec:
    """Return the :class:`GateSpec` for ``name`` (case-insensitive)."""
    try:
        return GATE_LIBRARY[name.lower()]
    except KeyError as exc:
        raise GateError(f"unknown gate {name!r}") from exc


@dataclass(frozen=True)
class Gate:
    """A gate applied to concrete qubits.

    Qubits are referred to by integer indices into the circuit's register.
    ``Gate`` objects are immutable and hashable so they can be used as DAG
    node payloads and dictionary keys.

    Attributes
    ----------
    name:
        Gate type name; must exist in :data:`GATE_LIBRARY`.
    qubits:
        Tuple of qubit indices the gate acts on, in gate order (control
        first for controlled gates).
    params:
        Tuple of real parameters (rotation angles, radians).
    label:
        Optional free-form annotation (used e.g. to mark gates as
        ``"remote"`` after partitioning).
    """

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[float, ...] = field(default_factory=tuple)
    label: Optional[str] = None

    def __post_init__(self) -> None:
        spec = gate_spec(self.name)
        object.__setattr__(self, "name", self.name.lower())
        qubits = tuple(int(q) for q in self.qubits)
        params = tuple(float(p) for p in self.params)
        object.__setattr__(self, "qubits", qubits)
        object.__setattr__(self, "params", params)
        if len(qubits) != spec.num_qubits:
            raise GateError(
                f"gate {self.name!r} expects {spec.num_qubits} qubits, "
                f"got {len(qubits)}"
            )
        if len(set(qubits)) != len(qubits):
            raise GateError(f"gate {self.name!r} has duplicate qubits {qubits}")
        if any(q < 0 for q in qubits):
            raise GateError(f"gate {self.name!r} has negative qubit index")
        if len(params) != spec.num_params:
            raise GateError(
                f"gate {self.name!r} expects {spec.num_params} params, "
                f"got {len(params)}"
            )

    # -- convenience metadata accessors ------------------------------------
    @property
    def spec(self) -> GateSpec:
        """The static :class:`GateSpec` of this gate."""
        return gate_spec(self.name)

    @property
    def num_qubits(self) -> int:
        """Number of qubits the gate acts on."""
        return len(self.qubits)

    @property
    def is_two_qubit(self) -> bool:
        """``True`` for two-qubit unitary gates."""
        return self.num_qubits == 2 and not self.spec.directive

    @property
    def is_single_qubit(self) -> bool:
        """``True`` for single-qubit unitary gates."""
        return self.num_qubits == 1 and not self.spec.directive

    @property
    def is_directive(self) -> bool:
        """``True`` for measurement/reset/barrier pseudo-gates."""
        return self.spec.directive

    @property
    def is_measurement(self) -> bool:
        """``True`` only for measurement directives."""
        return self.name == "measure"

    @property
    def is_diagonal(self) -> bool:
        """``True`` if the gate is diagonal in the computational basis."""
        return self.spec.diagonal

    @property
    def is_remote(self) -> bool:
        """``True`` if this gate instance is labelled as a remote gate."""
        return self.label == "remote"

    # -- transformations ----------------------------------------------------
    def with_label(self, label: Optional[str]) -> "Gate":
        """Return a copy of this gate with a different label."""
        return Gate(self.name, self.qubits, self.params, label)

    def remap(self, mapping: Dict[int, int]) -> "Gate":
        """Return a copy with qubit indices remapped through ``mapping``.

        Qubits absent from ``mapping`` are left unchanged.
        """
        new_qubits = tuple(mapping.get(q, q) for q in self.qubits)
        return Gate(self.name, new_qubits, self.params, self.label)

    def on_qubit(self, qubit: int) -> bool:
        """Return ``True`` if the gate acts on ``qubit``."""
        return qubit in self.qubits

    def shares_qubit(self, other: "Gate") -> bool:
        """Return ``True`` if the two gates act on at least one common qubit."""
        return bool(set(self.qubits) & set(other.qubits))

    # -- linear algebra ------------------------------------------------------
    def matrix(self) -> np.ndarray:
        """Return the unitary matrix of the gate (little-endian qubit order).

        Directives have no matrix and raise :class:`GateError`.
        """
        if self.is_directive:
            raise GateError(f"directive {self.name!r} has no unitary matrix")
        return _gate_matrix(self.name, self.params)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = f", params={self.params}" if self.params else ""
        label = f", label={self.label!r}" if self.label else ""
        return f"Gate({self.name!r}, qubits={self.qubits}{params}{label})"


def is_two_qubit(gate: Gate) -> bool:
    """Module-level helper mirroring :attr:`Gate.is_two_qubit`."""
    return gate.is_two_qubit


def is_single_qubit(gate: Gate) -> bool:
    """Module-level helper mirroring :attr:`Gate.is_single_qubit`."""
    return gate.is_single_qubit


# ---------------------------------------------------------------------------
# Unitary matrices
# ---------------------------------------------------------------------------

_SQRT2_INV = 1.0 / math.sqrt(2.0)


def _rx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def _ry(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array([[c, -s], [s, c]], dtype=complex)


def _rz(theta: float) -> np.ndarray:
    return np.array(
        [[np.exp(-1j * theta / 2.0), 0.0], [0.0, np.exp(1j * theta / 2.0)]],
        dtype=complex,
    )


def _phase(theta: float) -> np.ndarray:
    return np.array([[1.0, 0.0], [0.0, np.exp(1j * theta)]], dtype=complex)


def _u3(theta: float, phi: float, lam: float) -> np.ndarray:
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array(
        [
            [c, -np.exp(1j * lam) * s],
            [np.exp(1j * phi) * s, np.exp(1j * (phi + lam)) * c],
        ],
        dtype=complex,
    )


_FIXED_1Q: Dict[str, np.ndarray] = {
    "id": np.eye(2, dtype=complex),
    "x": np.array([[0, 1], [1, 0]], dtype=complex),
    "y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "z": np.array([[1, 0], [0, -1]], dtype=complex),
    "h": np.array([[1, 1], [1, -1]], dtype=complex) * _SQRT2_INV,
    "s": np.array([[1, 0], [0, 1j]], dtype=complex),
    "sdg": np.array([[1, 0], [0, -1j]], dtype=complex),
    "t": np.array([[1, 0], [0, np.exp(1j * math.pi / 4)]], dtype=complex),
    "tdg": np.array([[1, 0], [0, np.exp(-1j * math.pi / 4)]], dtype=complex),
    "sx": 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex),
}

_FIXED_2Q: Dict[str, np.ndarray] = {
    "cx": np.array(
        [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
    ),
    "cz": np.diag([1, 1, 1, -1]).astype(complex),
    "swap": np.array(
        [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
    ),
    "iswap": np.array(
        [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]], dtype=complex
    ),
}


def _gate_matrix(name: str, params: Tuple[float, ...]) -> np.ndarray:
    """Return the unitary matrix for a gate type and parameters."""
    if name in _FIXED_1Q:
        return _FIXED_1Q[name].copy()
    if name in _FIXED_2Q:
        return _FIXED_2Q[name].copy()
    if name == "rx":
        return _rx(params[0])
    if name == "ry":
        return _ry(params[0])
    if name == "rz":
        return _rz(params[0])
    if name == "p":
        return _phase(params[0])
    if name == "u3":
        return _u3(*params)
    if name == "cp":
        mat = np.eye(4, dtype=complex)
        mat[3, 3] = np.exp(1j * params[0])
        return mat
    if name == "rzz":
        theta = params[0]
        phases = np.exp(
            -1j * theta / 2.0 * np.array([1.0, -1.0, -1.0, 1.0])
        )
        return np.diag(phases).astype(complex)
    raise GateError(f"no matrix implementation for gate {name!r}")


def controlled_phase_angle(gate: Gate) -> float:
    """Return the effective controlled-phase angle of a diagonal 2Q gate.

    Used by tests to verify commutation of diagonal gates.  Raises
    :class:`GateError` for gates that are not diagonal two-qubit gates.
    """
    if not (gate.is_two_qubit and gate.is_diagonal):
        raise GateError(f"{gate.name!r} is not a diagonal two-qubit gate")
    matrix = gate.matrix()
    return float(np.angle(matrix[3, 3] / matrix[0, 0]))


def gates_from_names(names: Iterable[str], qubit: int = 0) -> Tuple[Gate, ...]:
    """Build a tuple of single-qubit :class:`Gate` objects on one qubit.

    Convenience helper for tests and examples; parametric gates receive a
    default angle of ``pi / 4``.
    """
    gates = []
    for name in names:
        spec = gate_spec(name)
        params = tuple([math.pi / 4] * spec.num_params)
        if spec.num_qubits != 1:
            raise GateError(f"gates_from_names only supports 1Q gates, got {name!r}")
        gates.append(Gate(name, (qubit,), params))
    return tuple(gates)
