"""Stable extension facade: every pluggable registry behind one import.

The library is organised around five string-keyed registries — benchmarks,
designs, execution backends, partitioning strategies, and interconnect
topologies.  This module re-exports each registry's lookup / listing /
registration functions so third-party code has a single, entry-point-style
integration surface; every exported name carries a usage example in its
docstring, and ``docs/extending.md`` walks through a worked ``register_*``
call per registry::

    from repro import api

    class AnnealedPartitioner(api.Partitioner):
        name = "annealed"
        supports_k_way = True

        def partition(self, graph, num_blocks=2, seed=0):
            ...

    api.register_partitioner(AnnealedPartitioner())
    api.register_topology(api.Topology("dumbbell", my_links_builder))

Once registered, the names work everywhere a built-in does:
``SystemConfig(partition_method="annealed", topology="dumbbell")``, study
axes (``Axis("partition_method", [...])``), spec files, and the
``python -m repro`` CLI.

The ``REPRO_EXEC`` knob (``execution_mode`` / ``BATCHED`` / ``VECTOR`` /
``LEGACY``) selects between the three execution cores — all bit-identical
per seed — ``REPRO_BACKEND`` picks the default execution backend, and
``REPRO_CACHE_DIR`` (``default_cache`` / ``PersistentArtifactCache``)
persists compile artifacts on disk for cross-process reuse; see
``docs/architecture.md``.
"""

from repro.benchmarks.registry import (
    BenchmarkSpec,
    build_benchmark,
    get_benchmark,
    list_benchmarks,
    register_benchmark,
)
from repro.engine.backends import (
    ExecutionBackend,
    get_backend,
    list_backends,
    register_backend,
)
from repro.engine.cache import (
    CACHE_ENV_VAR,
    ArtifactCache,
    PersistentArtifactCache,
    default_cache,
    resolve_cache_dir,
)
from repro.hardware.topology import (
    Topology,
    get_topology,
    list_topologies,
    register_topology,
    validate_remote_pairs,
)
from repro.partitioning.registry import (
    Partitioner,
    PrecomputedPartitioner,
    get_partitioner,
    list_partitioners,
    register_partitioner,
)
from repro.runtime.designs import (
    DesignSpec,
    get_design,
    list_designs,
    register_design,
)
from repro.runtime.execmode import (
    BATCHED,
    EXEC_ENV_VAR,
    LEGACY,
    VECTOR,
    execution_mode,
)
from repro.fleet import (
    FleetBackend,
    FleetCoordinator,
    FleetWorker,
)
from repro.service import (
    ServiceClient,
    ServiceConfig,
    StudyDaemon,
)
from repro.faults import (
    FAULTS_ENV_VAR,
    SITES,
    InjectedFault,
    failpoint,
    fault_stats,
    install_faults,
    uninstall_faults,
)

__all__ = [
    # partitioners
    "Partitioner",
    "PrecomputedPartitioner",
    "get_partitioner",
    "list_partitioners",
    "register_partitioner",
    # topologies
    "Topology",
    "get_topology",
    "list_topologies",
    "register_topology",
    "validate_remote_pairs",
    # benchmarks
    "BenchmarkSpec",
    "get_benchmark",
    "build_benchmark",
    "list_benchmarks",
    "register_benchmark",
    # designs
    "DesignSpec",
    "get_design",
    "list_designs",
    "register_design",
    # execution backends
    "ExecutionBackend",
    "get_backend",
    "list_backends",
    "register_backend",
    # execution cores (REPRO_EXEC)
    "BATCHED",
    "LEGACY",
    "VECTOR",
    "EXEC_ENV_VAR",
    "execution_mode",
    # compile caches (REPRO_CACHE_DIR)
    "ArtifactCache",
    "PersistentArtifactCache",
    "default_cache",
    "resolve_cache_dir",
    "CACHE_ENV_VAR",
    # study service (repro serve / docs/service.md)
    "StudyDaemon",
    "ServiceConfig",
    "ServiceClient",
    # worker fleet (repro worker / docs/fleet.md)
    "FleetBackend",
    "FleetCoordinator",
    "FleetWorker",
    # deterministic fault injection (REPRO_FAULTS / docs/robustness.md)
    "FAULTS_ENV_VAR",
    "SITES",
    "InjectedFault",
    "failpoint",
    "fault_stats",
    "install_faults",
    "uninstall_faults",
]
