"""Operation latencies, fidelities, and physical constants.

This module encodes Table II of the paper (quantum operation properties) and
the system configuration of Sec. IV-A: entanglement-generation success
probability ``psucc = 0.4``, decoherence time ``1/kappa = 150 us``, and a
local CNOT time of 300 ns.  All latencies are expressed in units of the
local CNOT time (one "depth unit"), matching how the paper reports circuit
depth.

It also provides :class:`HeraldedLinkModel`, a small physical model of
heralded remote entanglement generation (Sec. III-A): photon–qubit
entanglement probability, fibre transmission efficiency, and Bell-state-
measurement efficiency combine into the per-attempt success probability,
while photon travel and classical feedback latency determine the attempt
cycle time.  The paper's evaluation fixes ``psucc`` and ``T_EG`` directly;
the physical model backs the ablation benchmarks and examples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict

from repro.exceptions import ConfigurationError

__all__ = [
    "OperationProperties",
    "OPERATION_TABLE",
    "GateTimes",
    "GateFidelities",
    "PhysicalConstants",
    "HeraldedLinkModel",
    "DEFAULT_GATE_TIMES",
    "DEFAULT_GATE_FIDELITIES",
    "DEFAULT_PHYSICS",
]


@dataclass(frozen=True)
class OperationProperties:
    """Latency (in local-CNOT units) and fidelity of one operation type."""

    name: str
    latency: float
    fidelity: float

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ConfigurationError(f"{self.name}: latency must be non-negative")
        if not (0.0 < self.fidelity <= 1.0):
            raise ConfigurationError(f"{self.name}: fidelity must be in (0, 1]")


#: Table II of the paper.
OPERATION_TABLE: Dict[str, OperationProperties] = {
    "single_qubit": OperationProperties("single_qubit", 0.1, 0.9999),
    "local_cnot": OperationProperties("local_cnot", 1.0, 0.999),
    "measurement": OperationProperties("measurement", 5.0, 0.998),
    "epr_preparation": OperationProperties("epr_preparation", 10.0, 0.99),
}


@dataclass(frozen=True)
class GateTimes:
    """Operation latencies in units of the local CNOT time.

    Attributes mirror Table II; ``swap`` is the latency of the local SWAP
    that moves a fresh EPR half from a communication qubit into a buffer
    qubit (three back-to-back CNOTs on typical hardware, but the paper's
    depth unit treats a compiled local 2Q interaction as one unit, so the
    default is one CNOT time).
    """

    single_qubit: float = 0.1
    local_cnot: float = 1.0
    measurement: float = 5.0
    epr_generation_cycle: float = 10.0
    swap: float = 1.0
    classical_feedback: float = 0.1
    pauli_frame_tracking: bool = True

    def __post_init__(self) -> None:
        for name, value in self.as_dict().items():
            if value < 0:
                raise ConfigurationError(f"gate time {name} must be non-negative")

    def as_dict(self) -> Dict[str, float]:
        """Return the latencies as a plain dictionary."""
        return {
            "single_qubit": self.single_qubit,
            "local_cnot": self.local_cnot,
            "measurement": self.measurement,
            "epr_generation_cycle": self.epr_generation_cycle,
            "swap": self.swap,
            "classical_feedback": self.classical_feedback,
        }

    def duration_of(self, gate_name: str) -> float:
        """Latency of a circuit gate by IR name."""
        if gate_name in {"measure", "reset"}:
            return self.measurement
        if gate_name == "barrier":
            return 0.0
        if gate_name == "swap":
            return self.swap
        # Any other two-qubit gate is compiled to a local CNOT-class
        # interaction; single-qubit gates share one latency.
        from repro.circuits.gate import gate_spec

        spec = gate_spec(gate_name)
        if spec.num_qubits == 1:
            return self.single_qubit
        return self.local_cnot

    def remote_gate_latency(self) -> float:
        """Latency a remote gate adds to the data qubits once an EPR pair is ready.

        Gate teleportation (Fig. 1(c)) applies a local CNOT on each side onto
        the entangled ancillas, measures the ancillas, and applies heralded
        Pauli corrections.  With Pauli-frame tracking (default) the data
        qubits only occupy the CNOT slot plus the classical feedback and a
        correction slot — the ancilla measurements proceed in parallel and
        the corrections are folded into the frame, which is why the paper's
        per-remote-gate depth overhead is close to one CNOT.  Without frame
        tracking the measurement latency lands on the data-qubit critical
        path as well.
        """
        latency = self.local_cnot + self.classical_feedback + self.single_qubit
        if not self.pauli_frame_tracking:
            latency += self.measurement
        return latency


@dataclass(frozen=True)
class GateFidelities:
    """Operation fidelities (Table II)."""

    single_qubit: float = 0.9999
    local_cnot: float = 0.999
    measurement: float = 0.998
    epr_pair: float = 0.99

    def __post_init__(self) -> None:
        for name, value in self.as_dict().items():
            if not (0.0 < value <= 1.0):
                raise ConfigurationError(f"fidelity {name} must be in (0, 1]")

    def as_dict(self) -> Dict[str, float]:
        """Return the fidelities as a plain dictionary."""
        return {
            "single_qubit": self.single_qubit,
            "local_cnot": self.local_cnot,
            "measurement": self.measurement,
            "epr_pair": self.epr_pair,
        }

    def fidelity_of(self, gate_name: str) -> float:
        """Fidelity of a circuit gate by IR name."""
        if gate_name in {"measure", "reset"}:
            return self.measurement
        if gate_name == "barrier":
            return 1.0
        from repro.circuits.gate import gate_spec

        spec = gate_spec(gate_name)
        if spec.num_qubits == 1:
            return self.single_qubit
        return self.local_cnot


@dataclass(frozen=True)
class PhysicalConstants:
    """Physical constants of the DQC system (Sec. IV-A).

    Attributes
    ----------
    local_cnot_time_ns:
        Wall-clock duration of one local CNOT (300 ns in the paper); converts
        depth units to seconds.
    decoherence_time_us:
        Qubit decoherence time ``1/kappa`` (150 us in the paper).
    epr_success_probability:
        Per-attempt success probability of heralded entanglement generation
        (``psucc = 0.4`` in the evaluation).
    """

    local_cnot_time_ns: float = 300.0
    decoherence_time_us: float = 150.0
    epr_success_probability: float = 0.4

    def __post_init__(self) -> None:
        if self.local_cnot_time_ns <= 0:
            raise ConfigurationError("local CNOT time must be positive")
        if self.decoherence_time_us <= 0:
            raise ConfigurationError("decoherence time must be positive")
        if not (0.0 < self.epr_success_probability <= 1.0):
            raise ConfigurationError("psucc must be in (0, 1]")

    @property
    def decoherence_rate_per_unit(self) -> float:
        """Decoherence rate ``kappa`` per depth unit (local CNOT time)."""
        return (self.local_cnot_time_ns * 1e-9) / (self.decoherence_time_us * 1e-6)

    def seconds(self, depth_units: float) -> float:
        """Convert a latency in depth units to seconds."""
        return depth_units * self.local_cnot_time_ns * 1e-9


@dataclass(frozen=True)
class HeraldedLinkModel:
    """Physical model of one heralded entanglement-generation attempt.

    Implements the success-probability and cycle-time decomposition of
    Sec. III-A:

    * ``p_succ = p_pq_a * p_pq_b * eta_a * eta_b * p_bsm`` where
      ``eta = exp(-L / L_att)`` is the fibre transmission efficiency, and
    * the cycle time is the photon-emission cutoff plus photon travel to the
      Bell-state-measurement station plus classical feedback of the outcome.

    Attributes
    ----------
    photon_qubit_probability:
        Probability that a communication qubit emits an entangled photon
        within the emission cutoff window (per side).
    fiber_length_m:
        One-way fibre length from a QPU to the BSM station (10 m for the
        data-centre scenario of the paper).
    attenuation_length_km:
        Characteristic fibre attenuation length (~20 km for telecom fibre).
    bsm_efficiency:
        Success probability of the photonic Bell-state measurement,
        upper-bounded by 1/2 for linear optics.
    emission_cutoff_ns:
        Photon-emission waiting cutoff per attempt.
    classical_latency_ns:
        Detector readout / classical feedforward latency per attempt.
    speed_of_light_fiber_m_per_s:
        Photon group velocity in fibre (2e8 m/s).
    """

    photon_qubit_probability: float = 0.95
    fiber_length_m: float = 10.0
    attenuation_length_km: float = 20.0
    bsm_efficiency: float = 0.45
    emission_cutoff_ns: float = 1000.0
    classical_latency_ns: float = 1900.0
    speed_of_light_fiber_m_per_s: float = 2.0e8

    def __post_init__(self) -> None:
        if not (0.0 < self.photon_qubit_probability <= 1.0):
            raise ConfigurationError("photon-qubit probability must be in (0, 1]")
        if not (0.0 < self.bsm_efficiency <= 0.5):
            raise ConfigurationError(
                "linear-optics BSM efficiency cannot exceed 1/2"
            )
        if self.fiber_length_m < 0 or self.attenuation_length_km <= 0:
            raise ConfigurationError("invalid fibre geometry")

    @property
    def transmission_efficiency(self) -> float:
        """One-sided fibre transmission efficiency ``exp(-L / L_att)``."""
        return math.exp(-self.fiber_length_m / (self.attenuation_length_km * 1000.0))

    @property
    def success_probability(self) -> float:
        """Per-attempt success probability (both photons must arrive)."""
        eta = self.transmission_efficiency
        return (
            self.photon_qubit_probability ** 2 * eta ** 2 * self.bsm_efficiency
        )

    @property
    def photon_travel_time_ns(self) -> float:
        """One-way photon travel time to the BSM station."""
        return self.fiber_length_m / self.speed_of_light_fiber_m_per_s * 1e9

    @property
    def cycle_time_ns(self) -> float:
        """Total duration of one attempt (emission cutoff + travel + feedback)."""
        return (
            self.emission_cutoff_ns
            + self.photon_travel_time_ns
            + self.classical_latency_ns
        )

    def cycle_time_units(self, constants: PhysicalConstants) -> float:
        """Cycle time expressed in local-CNOT depth units."""
        return self.cycle_time_ns / constants.local_cnot_time_ns


DEFAULT_GATE_TIMES = GateTimes()
DEFAULT_GATE_FIDELITIES = GateFidelities()
DEFAULT_PHYSICS = PhysicalConstants()
