"""A single QPU node of the distributed architecture.

Each node hosts three pools of physical qubits (data / communication /
buffer) as described in Sec. III-B of the paper.  The node tracks the data
qubits' availability during circuit execution and exposes the communication
and buffer pools to the entanglement-generation subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.hardware.qubit import PhysicalQubit, QubitRole
from repro.exceptions import ArchitectureError

__all__ = ["QPUNode"]


@dataclass
class QPUNode:
    """One quantum processing unit.

    Parameters
    ----------
    index:
        Node index within the architecture.
    num_data_qubits:
        Number of data qubits available for circuit evaluation.
    num_comm_qubits:
        Number of communication qubits used for entanglement generation.
    num_buffer_qubits:
        Number of buffer qubits used to store generated EPR-pair halves.
    """

    index: int
    num_data_qubits: int
    num_comm_qubits: int
    num_buffer_qubits: int
    data_qubits: List[PhysicalQubit] = field(init=False)
    comm_qubits: List[PhysicalQubit] = field(init=False)
    buffer_qubits: List[PhysicalQubit] = field(init=False)

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ArchitectureError("node index must be non-negative")
        if self.num_data_qubits < 1:
            raise ArchitectureError("a node needs at least one data qubit")
        if self.num_comm_qubits < 0 or self.num_buffer_qubits < 0:
            raise ArchitectureError("qubit counts must be non-negative")
        self.data_qubits = [
            PhysicalQubit(self.index, i, QubitRole.DATA)
            for i in range(self.num_data_qubits)
        ]
        self.comm_qubits = [
            PhysicalQubit(self.index, i, QubitRole.COMMUNICATION)
            for i in range(self.num_comm_qubits)
        ]
        self.buffer_qubits = [
            PhysicalQubit(self.index, i, QubitRole.BUFFER)
            for i in range(self.num_buffer_qubits)
        ]

    # ------------------------------------------------------------------
    @property
    def total_qubits(self) -> int:
        """Total number of physical qubits on the node."""
        return self.num_data_qubits + self.num_comm_qubits + self.num_buffer_qubits

    def data_qubit(self, index: int) -> PhysicalQubit:
        """Data qubit by local index."""
        try:
            return self.data_qubits[index]
        except IndexError as exc:
            raise ArchitectureError(
                f"node {self.index} has no data qubit {index}"
            ) from exc

    def reset_clocks(self) -> None:
        """Reset timing bookkeeping of all qubits (between simulation runs)."""
        for qubit in self.data_qubits + self.comm_qubits + self.buffer_qubits:
            qubit.reset_clock()

    def data_utilisation(self, makespan: float) -> float:
        """Average busy fraction of data qubits over a run of length ``makespan``."""
        if makespan <= 0:
            return 0.0
        busy = sum(q.total_busy_time for q in self.data_qubits)
        return busy / (makespan * self.num_data_qubits)

    def describe(self) -> Dict[str, int]:
        """Summary dictionary used in reports and tests."""
        return {
            "node": self.index,
            "data": self.num_data_qubits,
            "communication": self.num_comm_qubits,
            "buffer": self.num_buffer_qubits,
        }
