"""Multi-node DQC architecture description.

:class:`DQCArchitecture` bundles the QPU nodes, the interconnect between
them, and the timing / fidelity / physical parameters into a single object
consumed by the entanglement subsystem and the discrete-event executor.  The
paper's main configuration is the 2-node, 16-data-qubits-per-node machine
with 10 communication and 10 buffer qubits per node; helpers build that and
the larger 64-qubit variants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.hardware.node import QPUNode
from repro.hardware.parameters import (
    DEFAULT_GATE_FIDELITIES,
    DEFAULT_GATE_TIMES,
    DEFAULT_PHYSICS,
    GateFidelities,
    GateTimes,
    PhysicalConstants,
)
from repro.exceptions import ArchitectureError, TopologyError

__all__ = ["DQCArchitecture", "two_node_architecture"]

NodePair = Tuple[int, int]


@dataclass
class DQCArchitecture:
    """A distributed quantum computer: nodes plus interconnect parameters.

    Parameters
    ----------
    nodes:
        The QPU nodes.  Data qubits within a node are assumed fully
        connected (as in the paper's evaluation).
    gate_times:
        Operation latencies (Table II).
    fidelities:
        Operation fidelities (Table II).
    physics:
        Physical constants (CNOT time, decoherence time, psucc).
    links:
        Optional explicit list of node pairs that share an optical
        interconnect; ``None`` means all-to-all connectivity between nodes.
        Links are normalised at construction: reversed and duplicate pairs
        collapse into one sorted list of canonical ``(a, b)`` pairs with
        ``a < b``, so :meth:`node_pairs` and the entanglement service see a
        single representation.  A link list that leaves some node unreachable
        raises :class:`~repro.exceptions.TopologyError`.
    """

    nodes: List[QPUNode]
    gate_times: GateTimes = field(default_factory=GateTimes)
    fidelities: GateFidelities = field(default_factory=GateFidelities)
    physics: PhysicalConstants = field(default_factory=PhysicalConstants)
    links: Optional[List[NodePair]] = None

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ArchitectureError("architecture needs at least one node")
        indices = [node.index for node in self.nodes]
        if indices != list(range(len(self.nodes))):
            raise ArchitectureError("node indices must be 0..N-1 in order")
        if self.links is not None:
            canonical = set()
            for a, b in self.links:
                if a == b or not (0 <= a < len(self.nodes)) or not (
                    0 <= b < len(self.nodes)
                ):
                    raise ArchitectureError(f"invalid interconnect link ({a}, {b})")
                canonical.add((min(a, b), max(a, b)))
            self.links = sorted(canonical)
            self._check_connected()

    def _check_connected(self) -> None:
        """Reject link lists that leave part of the machine unreachable."""
        if len(self.nodes) < 2:
            return
        neighbors: Dict[int, List[int]] = {i: [] for i in range(len(self.nodes))}
        for a, b in self.links or ():
            neighbors[a].append(b)
            neighbors[b].append(a)
        reached = {0}
        frontier = [0]
        while frontier:
            node = frontier.pop()
            for peer in neighbors[node]:
                if peer not in reached:
                    reached.add(peer)
                    frontier.append(peer)
        unreachable = sorted(set(range(len(self.nodes))) - reached)
        if unreachable:
            raise TopologyError(
                f"interconnect is disconnected: node(s) {unreachable} are "
                f"unreachable from node 0 over links {self.links}"
            )

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of QPU nodes."""
        return len(self.nodes)

    @property
    def total_data_qubits(self) -> int:
        """Total data qubits across all nodes."""
        return sum(node.num_data_qubits for node in self.nodes)

    @property
    def total_comm_qubits(self) -> int:
        """Total communication qubits across all nodes."""
        return sum(node.num_comm_qubits for node in self.nodes)

    @property
    def total_buffer_qubits(self) -> int:
        """Total buffer qubits across all nodes."""
        return sum(node.num_buffer_qubits for node in self.nodes)

    @property
    def decoherence_rate(self) -> float:
        """Decoherence rate ``kappa`` per depth unit."""
        return self.physics.decoherence_rate_per_unit

    def node(self, index: int) -> QPUNode:
        """Node by index."""
        try:
            return self.nodes[index]
        except IndexError as exc:
            raise ArchitectureError(f"no node with index {index}") from exc

    def node_pairs(self) -> List[NodePair]:
        """All connected node pairs (a < b)."""
        if self.links is not None:
            return list(self.links)  # canonicalised in __post_init__
        return [
            (a, b)
            for a in range(self.num_nodes)
            for b in range(a + 1, self.num_nodes)
        ]

    def are_connected(self, node_a: int, node_b: int) -> bool:
        """Whether two nodes share an interconnect link."""
        if node_a == node_b:
            return False
        return (min(node_a, node_b), max(node_a, node_b)) in self.node_pairs()

    def comm_pairs_between(self, node_a: int, node_b: int) -> int:
        """Number of communication-qubit pairs usable between two nodes.

        With all-to-all node connectivity the paper dedicates each node's
        communication qubits to its single peer (2-node setting); for more
        nodes the qubits are divided evenly among the peers of each node.
        """
        if not self.are_connected(node_a, node_b):
            return 0
        pairs_per_node = []
        for index in (node_a, node_b):
            peers = sum(1 for pair in self.node_pairs() if index in pair)
            comm = self.node(index).num_comm_qubits
            pairs_per_node.append(comm // max(1, peers))
        return min(pairs_per_node)

    def buffer_capacity_between(self, node_a: int, node_b: int) -> int:
        """Number of EPR pairs storable between two nodes (buffer-limited)."""
        if not self.are_connected(node_a, node_b):
            return 0
        capacities = []
        for index in (node_a, node_b):
            peers = sum(1 for pair in self.node_pairs() if index in pair)
            buffer = self.node(index).num_buffer_qubits
            capacities.append(buffer // max(1, peers))
        return min(capacities)

    def reset_clocks(self) -> None:
        """Reset the timing state of every qubit (between simulation runs)."""
        for node in self.nodes:
            node.reset_clocks()

    def validate_capacity(self, qubits_per_node: List[int]) -> None:
        """Check that each node can host the requested number of data qubits."""
        if len(qubits_per_node) != self.num_nodes:
            raise ArchitectureError("qubits_per_node length must equal num_nodes")
        for node, demand in zip(self.nodes, qubits_per_node):
            if demand > node.num_data_qubits:
                raise ArchitectureError(
                    f"node {node.index} hosts only {node.num_data_qubits} data "
                    f"qubits but the program needs {demand}"
                )

    def describe(self) -> Dict[str, object]:
        """Summary dictionary for reports."""
        return {
            "nodes": [node.describe() for node in self.nodes],
            "psucc": self.physics.epr_success_probability,
            "kappa_per_unit": self.decoherence_rate,
            "epr_cycle": self.gate_times.epr_generation_cycle,
        }


def two_node_architecture(
    data_qubits_per_node: int = 16,
    comm_qubits_per_node: int = 10,
    buffer_qubits_per_node: int = 10,
    gate_times: Optional[GateTimes] = None,
    fidelities: Optional[GateFidelities] = None,
    physics: Optional[PhysicalConstants] = None,
    links: Optional[List[NodePair]] = None,
) -> DQCArchitecture:
    """Build the paper's 2-node evaluation architecture.

    Defaults correspond to the 32-data-qubit configuration of Sec. V-A
    (16 fully connected data qubits, 10 communication and 10 buffer qubits
    per node); the 64-qubit experiments of Sec. V-C use 32/20/20.
    ``links=None`` keeps the all-to-all encoding (for 2 nodes, equivalent to
    the single explicit link ``(0, 1)``).
    """
    nodes = [
        QPUNode(0, data_qubits_per_node, comm_qubits_per_node, buffer_qubits_per_node),
        QPUNode(1, data_qubits_per_node, comm_qubits_per_node, buffer_qubits_per_node),
    ]
    return DQCArchitecture(
        nodes=nodes,
        gate_times=gate_times or GateTimes(),
        fidelities=fidelities or GateFidelities(),
        physics=physics or PhysicalConstants(),
        links=links,
    )
