"""Physical qubit roles and bookkeeping.

The architecture of the paper distinguishes three qubit roles per QPU node
(Sec. III-B): *data* qubits evaluate the circuit, *communication* qubits run
heralded entanglement-generation attempts, and *buffer* qubits store the
halves of successfully generated EPR pairs after a local SWAP.  The runtime
tracks, for every physical qubit, when it becomes free and how long it has
idled (idling feeds the decoherence factor of the fidelity model).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import ArchitectureError

__all__ = ["QubitRole", "PhysicalQubit"]


class QubitRole(str, enum.Enum):
    """Role of a physical qubit within a QPU node."""

    DATA = "data"
    COMMUNICATION = "communication"
    BUFFER = "buffer"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class PhysicalQubit:
    """One physical qubit on a node.

    Attributes
    ----------
    node:
        Index of the hosting QPU node.
    index:
        Index of the qubit within its role group on that node.
    role:
        :class:`QubitRole` of the qubit.
    busy_until:
        Simulation time at which the qubit finishes its current operation.
    total_busy_time:
        Accumulated time spent executing operations (for utilisation stats).
    last_release_time:
        Time at which the qubit last became free (for idle accounting).
    """

    node: int
    index: int
    role: QubitRole
    busy_until: float = 0.0
    total_busy_time: float = 0.0
    last_release_time: float = 0.0

    def __post_init__(self) -> None:
        if self.node < 0 or self.index < 0:
            raise ArchitectureError("qubit node and index must be non-negative")

    @property
    def identifier(self) -> str:
        """Stable textual identifier, e.g. ``"n0/data3"``."""
        return f"n{self.node}/{self.role.value}{self.index}"

    def is_free(self, time: float) -> bool:
        """Whether the qubit is idle at the given simulation time."""
        return time >= self.busy_until - 1e-12

    def occupy(self, start: float, duration: float) -> float:
        """Mark the qubit busy for ``duration`` starting at ``start``.

        Returns the completion time.  Raises if the qubit is still busy at
        ``start`` (the executor must respect resource availability).
        """
        if duration < 0:
            raise ArchitectureError("operation duration must be non-negative")
        if not self.is_free(start):
            raise ArchitectureError(
                f"qubit {self.identifier} is busy until {self.busy_until}, "
                f"cannot start at {start}"
            )
        self.busy_until = start + duration
        self.total_busy_time += duration
        self.last_release_time = self.busy_until
        return self.busy_until

    def idle_time(self, until: float) -> float:
        """Idle time accumulated between the last release and ``until``."""
        return max(0.0, until - max(self.busy_until, self.last_release_time))

    def reset_clock(self) -> None:
        """Reset all timing bookkeeping (used between simulation runs)."""
        self.busy_until = 0.0
        self.total_busy_time = 0.0
        self.last_release_time = 0.0
