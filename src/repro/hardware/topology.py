"""Interconnect topology registry.

A :class:`Topology` names a rule for materialising the optical interconnect
``links`` of an N-node :class:`~repro.hardware.architecture.DQCArchitecture`.
The registry follows the string-keyed idiom of
:mod:`repro.benchmarks.registry` and :mod:`repro.runtime.designs`: the
built-in topologies (``all_to_all``, ``line``, ``ring``, ``star``) resolve by
name, the ``grid-RxC`` *family* synthesises rectangular meshes on demand
(``grid-2x3`` is a 2-row, 3-column mesh over 6 nodes), and third parties add
their own via :func:`register_topology` (re-exported by :mod:`repro.api`).

The paper's evaluation uses 2 nodes, where every topology degenerates to the
single link ``(0, 1)``; the registry is what lets studies sweep richer
interconnects at 3+ nodes.  :func:`validate_remote_pairs` is the companion
check used by the compile stage: a partitioned program is only executable if
every node pair its remote gates touch is actually linked.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import TopologyError

__all__ = [
    "Topology",
    "TOPOLOGIES",
    "get_topology",
    "list_topologies",
    "register_topology",
    "validate_remote_pairs",
]

NodePair = Tuple[int, int]


@dataclass(frozen=True)
class Topology:
    """One interconnect rule: node count in, canonical link list out.

    Attributes
    ----------
    name:
        Registry key (lower-case canonical form).
    builder:
        Callable mapping ``num_nodes`` to the link list, or to ``None`` for
        all-to-all connectivity (the architecture's native encoding of a
        complete interconnect).
    description:
        One-line human description (shown by ``repro list-topologies``).
    min_nodes:
        Smallest node count the rule is defined for.

    Example
    -------
    >>> chain = Topology("chain3", lambda n: [(i, i + 1) for i in range(n - 1)])
    >>> chain.links(3)
    [(0, 1), (1, 2)]
    """

    name: str
    builder: Callable[[int], Optional[List[NodePair]]]
    description: str = ""
    min_nodes: int = 2

    def links(self, num_nodes: int) -> Optional[List[NodePair]]:
        """Materialise the link list for ``num_nodes`` nodes.

        Returns ``None`` for all-to-all connectivity; otherwise a sorted list
        of canonical ``(a, b)`` pairs with ``a < b``.
        """
        if num_nodes < self.min_nodes:
            raise TopologyError(
                f"topology {self.name!r} needs at least {self.min_nodes} "
                f"nodes, got {num_nodes}"
            )
        links = self.builder(num_nodes)
        if links is None:
            return None
        return sorted({(min(a, b), max(a, b)) for a, b in links})


def _line_links(num_nodes: int) -> List[NodePair]:
    return [(index, index + 1) for index in range(num_nodes - 1)]


def _ring_links(num_nodes: int) -> List[NodePair]:
    links = _line_links(num_nodes)
    if num_nodes > 2:
        links.append((0, num_nodes - 1))
    return links


def _star_links(num_nodes: int) -> List[NodePair]:
    return [(0, index) for index in range(1, num_nodes)]


def _builtin_topologies() -> Dict[str, Topology]:
    return {
        "all_to_all": Topology(
            name="all_to_all",
            builder=lambda num_nodes: None,
            description="every node pair linked (paper evaluation setting)",
        ),
        "line": Topology(
            name="line",
            builder=_line_links,
            description="open chain 0-1-...-(N-1)",
        ),
        "ring": Topology(
            name="ring",
            builder=_ring_links,
            description="closed chain (equals all_to_all for N <= 3)",
        ),
        "star": Topology(
            name="star",
            builder=_star_links,
            description="node 0 is the hub, all others are leaves",
        ),
    }


TOPOLOGIES: Dict[str, Topology] = _builtin_topologies()

#: Synthesised ``grid-RxC`` specs, memoised like benchmark family specs.
_GRID_CACHE: Dict[str, Topology] = {}

_GRID_RE = re.compile(r"grid-(\d+)x(\d+)$")


def _grid_builder(rows: int, cols: int) -> Callable[[int], List[NodePair]]:
    def build(num_nodes: int) -> List[NodePair]:
        if num_nodes != rows * cols:
            raise TopologyError(
                f"topology 'grid-{rows}x{cols}' covers exactly "
                f"{rows * cols} nodes, got {num_nodes}"
            )
        links: List[NodePair] = []
        for row in range(rows):
            for col in range(cols):
                node = row * cols + col
                if col + 1 < cols:
                    links.append((node, node + 1))
                if row + 1 < rows:
                    links.append((node, node + cols))
        return links

    return build


def _grid_topology(name: str) -> Optional[Topology]:
    """Synthesise a ``grid-RxC`` family member, or ``None``."""
    key = name.lower()
    cached = _GRID_CACHE.get(key)
    if cached is not None:
        return cached
    match = _GRID_RE.fullmatch(key)
    if not match:
        return None
    rows, cols = int(match.group(1)), int(match.group(2))
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise TopologyError(f"grid topology {name!r} needs at least 2 nodes")
    topology = Topology(
        name=f"grid-{rows}x{cols}",
        builder=_grid_builder(rows, cols),
        description=f"{rows}x{cols} rectangular mesh ({rows * cols} nodes)",
    )
    return _GRID_CACHE.setdefault(key, topology)


def list_topologies() -> List[str]:
    """Names of the registered topologies (the ``grid-RxC`` family resolves
    on demand without appearing here, like benchmark family names).

    Example
    -------
    >>> from repro.hardware.topology import list_topologies
    >>> "all_to_all" in list_topologies()
    True
    """
    return list(TOPOLOGIES)


def get_topology(topology) -> Topology:
    """Resolve a topology by (case-insensitive) name, or pass one through.

    Registered names resolve to their registry entries; ``grid-RxC`` names
    are synthesised on demand.  :class:`Topology` instances pass through
    unchanged, so APIs taking ``topology`` accept both forms.

    Example
    -------
    >>> from repro.hardware.topology import get_topology
    >>> get_topology("grid-2x3").links(6)
    [(0, 1), (0, 3), (1, 2), (1, 4), (2, 5), (3, 4), (4, 5)]
    """
    if isinstance(topology, Topology):
        return topology
    key = str(topology).lower()
    registered = TOPOLOGIES.get(key)
    if registered is not None:
        return registered
    family = _grid_topology(key)
    if family is not None:
        return family
    raise TopologyError(
        f"unknown topology {topology!r}; registered: "
        f"{', '.join(TOPOLOGIES)} plus family names grid-RxC (e.g. grid-2x3)"
    )


def register_topology(topology: Topology, overwrite: bool = False) -> Topology:
    """Register a topology under its (lower-cased) name.

    The entry-point for third-party interconnects: once registered, the name
    is usable everywhere a built-in is — ``SystemConfig(topology=...)``,
    study axes, and the CLI.  Returns the topology for call-site chaining.

    Example
    -------
    ::

        from repro import api

        api.register_topology(api.Topology(
            "dumbbell", lambda n: [(0, 1)],
            description="two hubs joined by one link"))
        SystemConfig(num_nodes=2, topology="dumbbell")  # now a valid name
    """
    key = topology.name.lower()
    if not overwrite and key in TOPOLOGIES:
        raise TopologyError(
            f"topology {topology.name!r} is already registered; pass "
            f"overwrite=True to replace it"
        )
    TOPOLOGIES[key] = topology
    return topology


def validate_remote_pairs(architecture, remote_pairs: Sequence[NodePair],
                          context: str = "program") -> None:
    """Check that every remote-gate node pair is linked in ``architecture``.

    ``remote_pairs`` are canonical ``(a, b)`` pairs (``a < b``), e.g. from
    :meth:`~repro.partitioning.assigner.DistributedProgram.remote_pairs`.
    Raises :class:`TopologyError` naming the unlinked pairs — the compile
    stage calls this so an infeasible (topology, partition) combination
    fails with a clear message instead of deep inside the executor.

    Example
    -------
    ::

        architecture = SystemConfig(num_nodes=4, topology="ring").build_architecture()
        validate_remote_pairs(architecture, program.remote_pairs(),
                              context=f"program {program.name!r}")
    """
    linked = set(architecture.node_pairs())
    missing = sorted(set(remote_pairs) - linked)
    if missing:
        raise TopologyError(
            f"{context} needs entanglement between unlinked node pair(s) "
            f"{missing}; linked pairs: {sorted(linked)}. Use a topology that "
            f"links these nodes (e.g. 'all_to_all') or a partition whose "
            f"remote gates stay on linked pairs."
        )
