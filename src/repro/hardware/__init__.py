"""DQC hardware model: qubit roles, QPU nodes, architectures, parameters."""

from repro.hardware.architecture import DQCArchitecture, two_node_architecture
from repro.hardware.node import QPUNode
from repro.hardware.parameters import (
    DEFAULT_GATE_FIDELITIES,
    DEFAULT_GATE_TIMES,
    DEFAULT_PHYSICS,
    OPERATION_TABLE,
    GateFidelities,
    GateTimes,
    HeraldedLinkModel,
    OperationProperties,
    PhysicalConstants,
)
from repro.hardware.qubit import PhysicalQubit, QubitRole
from repro.hardware.topology import (
    Topology,
    get_topology,
    list_topologies,
    register_topology,
    validate_remote_pairs,
)

__all__ = [
    "DQCArchitecture",
    "two_node_architecture",
    "Topology",
    "get_topology",
    "list_topologies",
    "register_topology",
    "validate_remote_pairs",
    "QPUNode",
    "PhysicalQubit",
    "QubitRole",
    "GateTimes",
    "GateFidelities",
    "PhysicalConstants",
    "HeraldedLinkModel",
    "OperationProperties",
    "OPERATION_TABLE",
    "DEFAULT_GATE_TIMES",
    "DEFAULT_GATE_FIDELITIES",
    "DEFAULT_PHYSICS",
]
