"""DQC hardware model: qubit roles, QPU nodes, architectures, parameters."""

from repro.hardware.architecture import DQCArchitecture, two_node_architecture
from repro.hardware.node import QPUNode
from repro.hardware.parameters import (
    DEFAULT_GATE_FIDELITIES,
    DEFAULT_GATE_TIMES,
    DEFAULT_PHYSICS,
    OPERATION_TABLE,
    GateFidelities,
    GateTimes,
    HeraldedLinkModel,
    OperationProperties,
    PhysicalConstants,
)
from repro.hardware.qubit import PhysicalQubit, QubitRole

__all__ = [
    "DQCArchitecture",
    "two_node_architecture",
    "QPUNode",
    "PhysicalQubit",
    "QubitRole",
    "GateTimes",
    "GateFidelities",
    "PhysicalConstants",
    "HeraldedLinkModel",
    "OperationProperties",
    "OPERATION_TABLE",
    "DEFAULT_GATE_TIMES",
    "DEFAULT_GATE_FIDELITIES",
    "DEFAULT_PHYSICS",
]
