"""Compile-once / execute-many experiment engine.

The engine splits the simulation pipeline into two explicit stages:

* **compile** (:mod:`repro.engine.compiler`) — deterministic per
  (benchmark, design) cell: build the circuit, partition it, resolve the
  design, pre-build the schedule lookup table; cached by configuration
  fingerprint (:mod:`repro.engine.cache`).
* **execute** (:mod:`repro.engine.backends`) — stochastic per seed: replay
  a compiled cell through a pluggable :class:`ExecutionBackend`, serially
  or across a process pool.  Backends dispatch ``(cell, seed-chunk)``
  batches to the trajectory-batched execution core
  (:class:`~repro.runtime.batched.BatchedExecutor`); set
  ``REPRO_EXEC=vector`` for the cross-seed vectorized core
  (:class:`~repro.runtime.vectorized.VectorizedExecutor`) or
  ``REPRO_EXEC=legacy`` for the reference
  :class:`~repro.runtime.executor.DesignExecutor`.

The compile cache can persist across processes: point ``REPRO_CACHE_DIR``
(or pass ``cache_dir`` / a :class:`PersistentArtifactCache`) at a directory
and compiled artifacts are pickled there keyed by their configuration
fingerprints, so a fresh process starts sweeps with compilation already
paid.

:class:`~repro.engine.pipeline.ExperimentEngine` ties the stages together
for full benchmarks × designs × seeds grids.
"""

from repro.engine.backends import (
    ExecutionBackend,
    ExecutionTask,
    ProcessPoolBackend,
    SerialBackend,
    chunk_tasks,
    get_backend,
    list_backends,
    register_backend,
)
from repro.engine.cache import (
    CACHE_ENV_VAR,
    ArtifactCache,
    PersistentArtifactCache,
    default_cache,
    fingerprint,
    resolve_cache_dir,
)
from repro.engine.compiler import CellCompiler, CompiledCell
from repro.engine.pipeline import ExperimentEngine

__all__ = [
    "ArtifactCache",
    "PersistentArtifactCache",
    "default_cache",
    "resolve_cache_dir",
    "CACHE_ENV_VAR",
    "fingerprint",
    "CellCompiler",
    "CompiledCell",
    "ExecutionTask",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "chunk_tasks",
    "get_backend",
    "register_backend",
    "list_backends",
    "ExperimentEngine",
]
