"""Compile-once / execute-many experiment engine.

The engine splits the simulation pipeline into two explicit stages:

* **compile** (:mod:`repro.engine.compiler`) — deterministic per
  (benchmark, design) cell: build the circuit, partition it, resolve the
  design, pre-build the schedule lookup table; cached by configuration
  fingerprint (:mod:`repro.engine.cache`).
* **execute** (:mod:`repro.engine.backends`) — stochastic per seed: replay
  a compiled cell through a pluggable :class:`ExecutionBackend`, serially
  or across a process pool.  Backends dispatch ``(cell, seed-chunk)``
  batches to the trajectory-batched execution core
  (:class:`~repro.runtime.batched.BatchedExecutor`); set
  ``REPRO_EXEC=legacy`` to replay through the reference
  :class:`~repro.runtime.executor.DesignExecutor` instead.

:class:`~repro.engine.pipeline.ExperimentEngine` ties the stages together
for full benchmarks × designs × seeds grids.
"""

from repro.engine.backends import (
    ExecutionBackend,
    ExecutionTask,
    ProcessPoolBackend,
    SerialBackend,
    chunk_tasks,
    get_backend,
    list_backends,
    register_backend,
)
from repro.engine.cache import ArtifactCache, fingerprint
from repro.engine.compiler import CellCompiler, CompiledCell
from repro.engine.pipeline import ExperimentEngine

__all__ = [
    "ArtifactCache",
    "fingerprint",
    "CellCompiler",
    "CompiledCell",
    "ExecutionTask",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "chunk_tasks",
    "get_backend",
    "register_backend",
    "list_backends",
    "ExperimentEngine",
]
