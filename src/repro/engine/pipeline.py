"""Staged experiment pipeline: compile once, execute many.

:class:`ExperimentEngine` is the orchestrator behind
:class:`~repro.core.experiment.ExperimentRunner`: it compiles every
(benchmark, design) cell of an :class:`~repro.core.config.ExperimentConfig`
exactly once (stage 1), expands the cells into the seed × cell task grid,
hands the grid to an :class:`~repro.engine.backends.ExecutionBackend`
(stage 2), and aggregates the per-seed results back into the
:class:`~repro.core.results.BenchmarkComparison` shape the analysis layer
consumes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import ExperimentConfig
from repro.core.results import BenchmarkComparison, DesignSummary
from repro.engine.backends import BackendLike, ExecutionTask, get_backend
from repro.engine.cache import ArtifactCache
from repro.engine.compiler import CellCompiler, CompiledCell
from repro.runtime.metrics import ExecutionResult

__all__ = ["ExperimentEngine"]


class ExperimentEngine:
    """Compile-once / execute-many driver for one experiment grid.

    Parameters
    ----------
    config:
        The experiment (benchmarks × designs × repetitions on one system).
    backend:
        Execute-stage strategy: an :class:`ExecutionBackend` instance, a
        registered name (``"serial"``, ``"process"``), or ``None`` for
        serial execution.
    compiler:
        Optional pre-configured compile stage; pass one to share compiled
        artifacts across engines (e.g. between sweep steps).
    cache:
        Artifact cache used when the engine builds its own compiler.
    cache_dir:
        Optional persistent-cache directory for the compiler the engine
        builds (a :class:`~repro.engine.cache.PersistentArtifactCache`
        spills compiled artifacts there for cross-process reuse; ignored
        when ``compiler`` or ``cache`` is passed).
    """

    def __init__(self, config: ExperimentConfig,
                 backend: BackendLike = None,
                 compiler: Optional[CellCompiler] = None,
                 cache: Optional[ArtifactCache] = None,
                 cache_dir=None) -> None:
        self.config = config
        self.compiler = compiler or CellCompiler(
            system=config.system,
            partition_seed=config.partition_seed,
            cache=cache,
            cache_dir=cache_dir,
        )
        self.backend = get_backend(backend)

    # ------------------------------------------------------------------
    # stage 1: compile
    # ------------------------------------------------------------------
    def compile_cell(self, benchmark: str, design: str) -> CompiledCell:
        """Compile (or fetch from cache) one cell of the grid."""
        return self.compiler.compile(benchmark, design)

    def compile_grid(self) -> List[CompiledCell]:
        """Compile every cell of the benchmarks × designs grid, in order."""
        return [
            self.compile_cell(benchmark, design)
            for benchmark in self.config.benchmarks
            for design in self.config.designs
        ]

    # ------------------------------------------------------------------
    # stage 2: execute
    # ------------------------------------------------------------------
    def execute_cells(
        self, cells: Sequence[CompiledCell],
        seeds: Optional[Sequence[int]] = None,
    ) -> List[List[ExecutionResult]]:
        """Replay every cell under every seed through the backend.

        Returns one result list per cell, in cell order, each in seed order
        — regardless of how the backend parallelised the flat task grid.
        The grid is submitted cell-major, so backends coalesce it into
        (cell, seed-chunk) batches for the trajectory-batched executor.
        """
        seeds = list(seeds) if seeds is not None else self.config.seeds()
        tasks = [
            ExecutionTask(cell, seed) for cell in cells for seed in seeds
        ]
        results = self.backend.execute(tasks)
        per_cell = len(seeds)
        return [
            results[index * per_cell:(index + 1) * per_cell]
            for index in range(len(cells))
        ]

    def run_cell(self, benchmark: str, design: str) -> List[ExecutionResult]:
        """All repetitions of one (benchmark, design) cell."""
        cell = self.compile_cell(benchmark, design)
        return self.execute_cells([cell])[0]

    def run_benchmark(self, benchmark: str) -> BenchmarkComparison:
        """All designs on one benchmark."""
        cells = [
            self.compile_cell(benchmark, design)
            for design in self.config.designs
        ]
        comparison = BenchmarkComparison(benchmark=benchmark)
        for results in self.execute_cells(cells):
            comparison.add(DesignSummary.from_results(results))
        return comparison

    def run(self) -> Dict[str, BenchmarkComparison]:
        """The full experiment, keyed by benchmark name.

        The whole seed × cell grid is submitted to the backend as one flat
        batch so a parallel backend can balance across every cell at once.
        """
        cells = self.compile_grid()
        cell_results = self.execute_cells(cells)
        comparisons: Dict[str, BenchmarkComparison] = {}
        index = 0
        for benchmark in self.config.benchmarks:
            comparison = BenchmarkComparison(benchmark=benchmark)
            for _design in self.config.designs:
                comparison.add(DesignSummary.from_results(cell_results[index]))
                index += 1
            comparisons[benchmark] = comparison
        return comparisons

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the backend's worker state (if any)."""
        self.backend.close()

    def __enter__(self) -> "ExperimentEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
