"""Execute stage: pluggable backends replaying compiled cells under seeds.

Following the ``Distributor`` idiom of pytket-dqc, every backend implements
one abstract operation — :meth:`ExecutionBackend.execute` — that maps an
ordered sequence of :class:`ExecutionTask` (one ``(CompiledCell, seed)``
pair each) to the matching ordered list of
:class:`~repro.runtime.metrics.ExecutionResult`.  Because a compiled cell is
replayed with a fresh, seed-deterministic entanglement process, every
backend must produce *identical* results for identical task lists; the
backends differ only in wall-clock strategy:

* :class:`SerialBackend` — runs tasks in order on the calling thread,
* :class:`ProcessPoolBackend` — fans tasks out over a process pool,
  preserving input order.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.engine.compiler import CompiledCell
from repro.exceptions import ConfigurationError
from repro.runtime.metrics import ExecutionResult

__all__ = [
    "ExecutionTask",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "get_backend",
    "register_backend",
    "list_backends",
]


@dataclass(frozen=True, eq=False)
class ExecutionTask:
    """One unit of execute-stage work: replay ``cell`` under ``seed``."""

    cell: CompiledCell
    seed: int

    def run(self) -> ExecutionResult:
        """Execute the task in the current process."""
        return self.cell.execute(seed=self.seed)


def _run_task(task: ExecutionTask) -> ExecutionResult:
    """Module-level task runner so process pools can pickle it."""
    return task.run()


class ExecutionBackend(ABC):
    """Strategy for running a batch of execution tasks.

    Subclasses must preserve task order and produce results identical to
    :class:`SerialBackend` for the same tasks (execution is deterministic
    per seed).  Backends are reusable across :meth:`execute` calls and
    usable as context managers; :meth:`close` releases any worker state.
    """

    name: str = "abstract"

    @abstractmethod
    def execute(self, tasks: Sequence[ExecutionTask]) -> List[ExecutionResult]:
        """Run every task and return results in task order."""

    def close(self) -> None:
        """Release backend resources (no-op by default)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """Run every task in order on the calling thread (the reference)."""

    name = "serial"

    def execute(self, tasks: Sequence[ExecutionTask]) -> List[ExecutionResult]:
        return [task.run() for task in tasks]


class ProcessPoolBackend(ExecutionBackend):
    """Fan tasks out over a :class:`~concurrent.futures.ProcessPoolExecutor`.

    Parameters
    ----------
    max_workers:
        Worker process count (defaults to the CPU count).
    chunksize:
        Tasks shipped per worker round-trip; by default one contiguous slice
        per worker, which keeps per-cell tasks on few processes and bounds
        pickling overhead.

    The pool is created lazily on the first :meth:`execute` call and reused
    until :meth:`close`, so sweeps pay the worker start-up cost once.
    """

    name = "process"

    def __init__(self, max_workers: Optional[int] = None,
                 chunksize: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError("process backend needs at least one worker")
        if chunksize is not None and chunksize < 1:
            raise ConfigurationError("chunksize must be positive")
        self.max_workers = max_workers
        self.chunksize = chunksize
        self._pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    def _workers(self) -> int:
        return self.max_workers or os.cpu_count() or 1

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self._workers())
        return self._pool

    def execute(self, tasks: Sequence[ExecutionTask]) -> List[ExecutionResult]:
        tasks = list(tasks)
        if not tasks:
            return []
        pool = self._ensure_pool()
        chunksize = self.chunksize or max(1, len(tasks) // self._workers())
        return list(pool.map(_run_task, tasks, chunksize=chunksize))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# ----------------------------------------------------------------------
# backend registry
# ----------------------------------------------------------------------
BackendLike = Union[None, str, ExecutionBackend]

_BACKENDS: Dict[str, Callable[[], ExecutionBackend]] = {
    "serial": SerialBackend,
    "process": ProcessPoolBackend,
    "processpool": ProcessPoolBackend,
}


def register_backend(name: str,
                     factory: Callable[[], ExecutionBackend]) -> None:
    """Register a custom backend factory under ``name``."""
    _BACKENDS[name.lower()] = factory


def list_backends() -> List[str]:
    """Registered backend names."""
    return sorted(_BACKENDS)


def get_backend(backend: BackendLike = None) -> ExecutionBackend:
    """Resolve a backend argument: instance, registered name, or ``None``.

    ``None`` resolves to a fresh :class:`SerialBackend`.
    """
    if backend is None:
        return SerialBackend()
    if isinstance(backend, ExecutionBackend):
        return backend
    if isinstance(backend, str):
        factory = _BACKENDS.get(backend.lower())
        if factory is None:
            raise ConfigurationError(
                f"unknown execution backend {backend!r}; "
                f"available: {', '.join(list_backends())}"
            )
        return factory()
    raise ConfigurationError(
        f"cannot interpret {type(backend).__name__} as an execution backend"
    )
