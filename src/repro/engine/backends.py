"""Execute stage: pluggable backends replaying compiled cells under seeds.

Following the ``Distributor`` idiom of pytket-dqc, every backend implements
one abstract operation — :meth:`ExecutionBackend.execute` — that maps an
ordered sequence of :class:`ExecutionTask` (one ``(CompiledCell, seed)``
pair each) to the matching ordered list of
:class:`~repro.runtime.metrics.ExecutionResult`.  Because a compiled cell is
replayed with a fresh, seed-deterministic entanglement process, every
backend must produce *identical* results for identical task lists; the
backends differ only in wall-clock strategy:

* :class:`SerialBackend` — runs tasks in order on the calling thread,
* :class:`ProcessPoolBackend` — fans tasks out over a process pool,
  preserving input order,
* ``"fleet"`` (:class:`~repro.fleet.backend.FleetBackend`) — fans
  seed-chunks out to socket-connected worker processes, possibly on other
  machines (registered here by name; the package imports lazily).

The unit of dispatch is **not** the single task: both backends coalesce
consecutive tasks of the same cell into ``(cell, seed-chunk)`` batches
(:func:`chunk_tasks`) and replay each batch through
:meth:`~repro.engine.compiler.CompiledCell.execute_batch`, so per-cell
artifacts — gate streams, lookup tables, static counts — are shared across
a whole chunk of seeds instead of being re-entered (and, for the process
pool, re-pickled) once per run.  Process workers are persistent and inherit
the compiled cells of the first batch through the pool initializer; chunks
then travel as ``(cache_key, seeds)`` pairs, a few bytes each.
"""

from __future__ import annotations

import math
import os
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.engine.compiler import CompiledCell
from repro.exceptions import ConfigurationError
from repro.runtime.metrics import ExecutionResult

__all__ = [
    "ExecutionTask",
    "ExecutionBackend",
    "ResultSink",
    "SerialBackend",
    "ProcessPoolBackend",
    "chunk_tasks",
    "get_backend",
    "register_backend",
    "list_backends",
    "BACKEND_ENV_VAR",
]

#: Environment variable consulted when no backend is specified.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Load-balancing oversubscription: aim for this many chunks per worker so
#: unevenly expensive cells (e.g. adaptive vs ideal designs) level out.
_CHUNKS_PER_WORKER = 4


@dataclass(frozen=True, eq=False)
class ExecutionTask:
    """One unit of execute-stage work: replay ``cell`` under ``seed``."""

    cell: CompiledCell
    seed: int

    def run(self) -> ExecutionResult:
        """Execute the task in the current process."""
        return self.cell.execute(seed=self.seed)


def chunk_tasks(tasks: Sequence[ExecutionTask],
                chunk_size: int) -> List[Tuple[CompiledCell, List[int]]]:
    """Coalesce consecutive same-cell tasks into ``(cell, seeds)`` chunks.

    Order is preserved: concatenating the chunks' seeds in output order
    reproduces the task order exactly, which is what lets backends replay
    chunks and still return results positionally.  Only *consecutive* runs
    of one cell are merged — interleaved cells stay separate chunks — and no
    chunk exceeds ``chunk_size`` seeds.
    """
    if chunk_size < 1:
        raise ConfigurationError("chunk size must be positive")
    chunks: List[Tuple[CompiledCell, List[int]]] = []
    current_cell: Optional[CompiledCell] = None
    current_seeds: List[int] = []
    for task in tasks:
        if task.cell is not current_cell or len(current_seeds) >= chunk_size:
            if current_seeds:
                chunks.append((current_cell, current_seeds))
            current_cell = task.cell
            current_seeds = []
        current_seeds.append(task.seed)
    if current_seeds:
        chunks.append((current_cell, current_seeds))
    return chunks


#: Streaming consumer of per-chunk results: called as ``sink(start, batch)``
#: where ``start`` is the index of the chunk's first task in the submitted
#: task list and ``batch`` the chunk's results in task order.  Chunks arrive
#: in *completion* order (parallel backends finish chunks out of order).  A
#: sink may expose a ``chunk_size`` attribute as a granularity hint, which
#: backends use to cap their internal chunking so streamed units align with
#: the consumer's (e.g. a run store's) durable chunk boundaries.
ResultSink = Callable[[int, List[ExecutionResult]], None]


def _sink_chunk_hint(sink: Optional[ResultSink]) -> Optional[int]:
    """The sink's preferred chunk granularity, if it declares one."""
    if sink is None:
        return None
    hint = getattr(sink, "chunk_size", None)
    return int(hint) if hint else None


class ExecutionBackend(ABC):
    """Strategy for running a batch of execution tasks.

    Subclasses must preserve task order and produce results identical to
    :class:`SerialBackend` for the same tasks (execution is deterministic
    per seed).  Backends are reusable across :meth:`execute` calls and
    usable as context managers; :meth:`close` releases any worker state.

    Besides returning the full ordered result list, backends *stream*: an
    optional ``sink`` receives every internal ``(cell, seed-chunk)`` batch
    as it completes, which is what lets a
    :class:`~repro.study.store.RunStore` persist progress incrementally and
    progress reporting observe a running study.  Streaming never changes
    the returned results — execution is deterministic per seed regardless
    of chunking.
    """

    name: str = "abstract"

    @abstractmethod
    def execute(self, tasks: Sequence[ExecutionTask],
                sink: Optional[ResultSink] = None) -> List[ExecutionResult]:
        """Run every task and return results in task order.

        When ``sink`` is given, additionally deliver each completed chunk
        to it (in completion order) before returning.
        """

    def close(self) -> None:
        """Release backend resources (no-op by default)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """Run every task in order on the calling thread (the reference).

    Consecutive same-cell tasks are replayed as one seed batch so the
    per-cell replay state (gate-stream columns, lookup resets) is shared.
    """

    name = "serial"

    def execute(self, tasks: Sequence[ExecutionTask],
                sink: Optional[ResultSink] = None) -> List[ExecutionResult]:
        # Without a sink the whole run of one cell is a single batch; a
        # sink's granularity hint bounds the batches so durable chunks
        # become visible (and persistable) as soon as they complete.
        chunk_size = len(tasks) or 1
        hint = _sink_chunk_hint(sink)
        if hint is not None:
            chunk_size = min(chunk_size, hint)
        results: List[ExecutionResult] = []
        for cell, seeds in chunk_tasks(tasks, chunk_size=chunk_size):
            batch = cell.execute_batch(seeds)
            if sink is not None:
                sink(len(results), batch)
            results.extend(batch)
        return results


# ----------------------------------------------------------------------
# process-pool worker plumbing
# ----------------------------------------------------------------------

#: Worker-side compiled-cell registry, keyed by cell fingerprint; seeded by
#: the pool initializer so chunks travel as ``(cache_key, seeds)`` pairs.
_WORKER_CELLS: Dict[str, CompiledCell] = {}


def _init_worker(cells: Dict[str, CompiledCell]) -> None:
    """Pool initializer: inherit the driver's compiled-cell artifacts."""
    _WORKER_CELLS.update(cells)


def _run_seed_chunk(
    payload: Tuple[str, Tuple[int, ...]],
) -> List[ExecutionResult]:
    """Replay one ``(cell, seed-chunk)`` batch inside a worker process."""
    key, seeds = payload
    cell = _WORKER_CELLS.get(key)
    if cell is None:  # pragma: no cover - _ensure_pool keeps workers covered
        raise ConfigurationError(
            f"worker has no compiled cell for key {key[:12]}…; "
            f"the pool initializer did not cover this batch"
        )
    return cell.execute_batch(list(seeds))


class ProcessPoolBackend(ExecutionBackend):
    """Fan ``(cell, seed-chunk)`` batches out over a persistent process pool.

    Parameters
    ----------
    max_workers:
        Worker process count.  The default uses every usable CPU (scheduler
        affinity when available) and is never 1 on a multi-core machine.
    chunksize:
        Maximum seeds per dispatched batch; by default sized so every
        worker receives about :data:`_CHUNKS_PER_WORKER` batches
        (``ceil(num_tasks / (workers * 4))``), balancing load without
        degenerating into per-run dispatch.

    The pool is created lazily on the first :meth:`execute` call and reused
    until :meth:`close`, so sweeps pay the worker start-up cost once.
    Workers inherit every compiled cell through the pool initializer and
    chunks then travel as ``(cache_key, seeds)`` pairs; when a later call
    brings cells the current pool has never seen, the pool is rebuilt once
    with the accumulated cell set (workers restart, but cells are pickled
    once per worker instead of once per chunk forever).

    A one-worker pool is pure overhead — serial execution plus pickling —
    which is exactly the ``BENCH_engine.json`` regression (0.89x vs serial).
    When only one worker is available the backend therefore runs the chunks
    inline on the calling thread: results are identical either way, and the
    backend never loses to :class:`SerialBackend` on a single-CPU machine.
    """

    name = "process"

    def __init__(self, max_workers: Optional[int] = None,
                 chunksize: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError("process backend needs at least one worker")
        if chunksize is not None and chunksize < 1:
            raise ConfigurationError("chunksize must be positive")
        self.max_workers = max_workers
        self.chunksize = chunksize
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_cells: Dict[str, CompiledCell] = {}

    # ------------------------------------------------------------------
    def _workers(self) -> int:
        if self.max_workers is not None:
            return self.max_workers
        count = os.cpu_count() or 1
        try:
            usable = len(os.sched_getaffinity(0)) or count
        except AttributeError:  # pragma: no cover - non-Linux platforms
            usable = count
        # Every usable CPU gets a worker; a machine (or cpuset/affinity
        # mask) with a single usable CPU gets 1, which the execute path
        # short-circuits to inline execution — multiple workers contending
        # for one CPU is strictly worse than the serial backend (the
        # BENCH_engine.json 0.89x regression).
        return usable if usable > 1 else 1

    def _ensure_pool(self, cells: Dict[str, CompiledCell]) -> ProcessPoolExecutor:
        unknown = [key for key in cells if key not in self._pool_cells]
        if self._pool is not None and unknown:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._pool is None:
            self._pool_cells.update(cells)
            self._pool = ProcessPoolExecutor(
                max_workers=self._workers(),
                initializer=_init_worker,
                initargs=(self._pool_cells,),
            )
        return self._pool

    def _chunk_size(self, num_tasks: int) -> int:
        if self.chunksize is not None:
            return self.chunksize
        return max(1, math.ceil(num_tasks / (self._workers() * _CHUNKS_PER_WORKER)))

    def execute(self, tasks: Sequence[ExecutionTask],
                sink: Optional[ResultSink] = None) -> List[ExecutionResult]:
        tasks = list(tasks)
        if not tasks:
            return []
        chunk_size = self._chunk_size(len(tasks))
        hint = _sink_chunk_hint(sink)
        if hint is not None:
            chunk_size = min(chunk_size, hint)
        chunks = chunk_tasks(tasks, chunk_size)
        if self._workers() == 1:
            results: List[ExecutionResult] = []
            for cell, seeds in chunks:
                batch = cell.execute_batch(seeds)
                if sink is not None:
                    sink(len(results), batch)
                results.extend(batch)
            return results
        cells = {chunk[0].cache_key: chunk[0] for chunk in chunks}
        pool = self._ensure_pool(cells)
        start_of: Dict[object, int] = {}
        offset = 0
        for cell, seeds in chunks:
            future = pool.submit(_run_seed_chunk, (cell.cache_key, tuple(seeds)))
            start_of[future] = offset
            offset += len(seeds)
        # Collect in completion order so the sink observes (and can persist)
        # chunks the moment workers finish them, then reassemble positionally.
        collected: Dict[int, List[ExecutionResult]] = {}
        for future in as_completed(start_of):
            batch = future.result()
            if sink is not None:
                sink(start_of[future], batch)
            collected[start_of[future]] = batch
        results: List[ExecutionResult] = []
        for start in sorted(collected):
            results.extend(collected[start])
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_cells = {}


# ----------------------------------------------------------------------
# backend registry
# ----------------------------------------------------------------------
BackendLike = Union[None, str, ExecutionBackend]


def _fleet_backend() -> ExecutionBackend:
    # Imported lazily: repro.fleet.backend imports this module, and the
    # fleet is only paid for (sockets, threads) when actually selected.
    from repro.fleet.backend import FleetBackend

    return FleetBackend()


_BACKENDS: Dict[str, Callable[[], ExecutionBackend]] = {
    "serial": SerialBackend,
    "process": ProcessPoolBackend,
    "processpool": ProcessPoolBackend,
    "fleet": _fleet_backend,
}


def register_backend(name: str,
                     factory: Callable[[], ExecutionBackend]) -> None:
    """Register a custom backend factory under ``name``.

    Once registered, the name works everywhere a built-in does —
    ``Study(backend=...)``, ``--backend`` on the CLI, and the
    ``REPRO_BACKEND`` environment variable.

    Example
    -------
    ::

        from repro import api

        class SlurmBackend(api.ExecutionBackend):
            name = "slurm"

            def execute(self, tasks, sink=None):
                ...  # dispatch chunks to the cluster, stream to sink

        api.register_backend("slurm", SlurmBackend)
        Study(benchmarks="QFT-32", backend="slurm").run()
    """
    _BACKENDS[name.lower()] = factory


def list_backends() -> List[str]:
    """Registered backend names.

    Example
    -------
    >>> from repro.engine.backends import list_backends
    >>> "serial" in list_backends() and "process" in list_backends()
    True
    """
    return sorted(_BACKENDS)


def get_backend(backend: BackendLike = None) -> ExecutionBackend:
    """Resolve a backend argument: instance, registered name, or ``None``.

    ``None`` consults the ``REPRO_BACKEND`` environment variable (so whole
    studies, the CLI, and the figure harnesses share one knob) and falls
    back to a fresh :class:`SerialBackend`.

    Example
    -------
    >>> from repro.engine.backends import get_backend
    >>> get_backend("process").name
    'process'
    """
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR) or None
    if backend is None:
        return SerialBackend()
    if isinstance(backend, ExecutionBackend):
        return backend
    if isinstance(backend, str):
        factory = _BACKENDS.get(backend.lower())
        if factory is None:
            raise ConfigurationError(
                f"unknown execution backend {backend!r}; "
                f"available: {', '.join(list_backends())}"
            )
        return factory()
    raise ConfigurationError(
        f"cannot interpret {type(backend).__name__} as an execution backend"
    )
