"""Compile-artifact cache keyed by configuration fingerprints.

The compile stage of the engine is deterministic: the same (system,
partitioning, benchmark, design, scheduling parameters) always produces the
same :class:`~repro.engine.compiler.CompiledCell`.  The cache therefore keys
artifacts by a SHA-256 fingerprint of the *configuration that produced them*
rather than by object identity, so sweeps such as
:func:`~repro.core.experiment.run_comm_qubit_sweep` can share one cache
across system variations and only recompile what actually changed (the
partitioned program survives a communication-qubit change; the schedule
lookup table does not).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from typing import Any, Dict, Optional, Tuple

__all__ = ["ArtifactCache", "fingerprint"]


def _canonical(value: Any) -> Any:
    """Reduce ``value`` to a deterministic, repr-stable structure."""
    if isinstance(value, enum.Enum):
        return (type(value).__name__, value.name)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = tuple(
            (f.name, _canonical(getattr(value, f.name)))
            for f in dataclasses.fields(value)
        )
        return (type(value).__name__, fields)
    if isinstance(value, dict):
        return tuple(sorted((str(k), _canonical(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(item) for item in value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(
        f"cannot fingerprint {type(value).__name__}; pass primitives, "
        f"dataclasses, enums, or containers of them"
    )


def fingerprint(*parts: Any) -> str:
    """SHA-256 fingerprint of a canonicalised tuple of configuration parts."""
    canonical = repr(tuple(_canonical(part) for part in parts))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ArtifactCache:
    """In-memory store of compile artifacts with hit / miss accounting.

    Entries are namespaced (``"program"``, ``"cell"``, ...) so one cache can
    hold every artifact kind of the compile stage.  The cache is unbounded by
    default; pass ``max_entries`` to evict the oldest entries FIFO, which is
    enough for sweep workloads where old configurations never return.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: Dict[Tuple[str, str], Any] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def get(self, namespace: str, key: str) -> Optional[Any]:
        """Look up an artifact, counting the hit or miss."""
        entry = self._entries.get((namespace, key))
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def put(self, namespace: str, key: str, artifact: Any) -> Any:
        """Store an artifact and return it (for call-site chaining)."""
        if (self.max_entries is not None
                and (namespace, key) not in self._entries
                and len(self._entries) >= self.max_entries):
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        self._entries[(namespace, key)] = artifact
        return artifact

    def count(self, namespace: Optional[str] = None) -> int:
        """Number of stored artifacts, optionally within one namespace."""
        if namespace is None:
            return len(self._entries)
        return sum(1 for space, _ in self._entries if space == namespace)

    def clear(self) -> None:
        """Drop every entry and reset the statistics."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def reset_stats(self) -> None:
        """Zero the hit / miss counters without touching the entries.

        Benchmarks call this between phases so each phase's ``stats()``
        reflects only its own lookups instead of the warm-up's.
        """
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache.

        An idle cache (no lookups yet — in particular an *empty* one) has no
        meaningful rate; the division is guarded and reported as 0.0 rather
        than raising or pretending a rate exists.
        """
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    def stats(self) -> Dict[str, float]:
        """Flat statistics summary (used by benchmarks and reports)."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "lookups": self.hits + self.misses,
            "hit_rate": self.hit_rate,
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple[str, str]) -> bool:
        return key in self._entries
