"""Compile-artifact caches keyed by configuration fingerprints.

The compile stage of the engine is deterministic: the same (system,
partitioning, benchmark, design, scheduling parameters) always produces the
same :class:`~repro.engine.compiler.CompiledCell`.  The caches therefore key
artifacts by a SHA-256 fingerprint of the *configuration that produced them*
rather than by object identity, so sweeps such as
:func:`~repro.core.experiment.run_comm_qubit_sweep` can share one cache
across system variations and only recompile what actually changed (the
partitioned program survives a communication-qubit change; the schedule
lookup table does not).

Two tiers are available:

* :class:`ArtifactCache` — in-memory only; dies with the process.
* :class:`PersistentArtifactCache` — the same interface with a disk tier:
  artifacts are pickled under a cache directory (layout
  ``<dir>/v<N>/<namespace>/<fingerprint>.pkl``, where ``v<N>`` is the
  on-disk format version), written atomically (temp file + rename), and
  read back across processes.  Corrupted or truncated entries are treated
  as misses and removed.  ``REPRO_CACHE_DIR`` (or the CLI's ``--cache-dir``)
  selects the directory; see :func:`default_cache`.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import os
import pickle
import shutil
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple, Union

__all__ = [
    "ArtifactCache",
    "PersistentArtifactCache",
    "fingerprint",
    "resolve_cache_dir",
    "default_cache",
    "CACHE_ENV_VAR",
    "CACHE_FORMAT_VERSION",
]

#: Environment variable selecting the persistent cache directory.
CACHE_ENV_VAR = "REPRO_CACHE_DIR"

#: On-disk format version; bump when pickled artifact layouts change so
#: stale entries from older code are invalidated wholesale (they live under
#: a different ``v<N>`` directory and are simply never read again).
CACHE_FORMAT_VERSION = 1

#: Internal sentinel distinguishing "nothing stored" from a stored ``None``.
_MISSING = object()


def _canonical(value: Any) -> Any:
    """Reduce ``value`` to a deterministic, repr-stable structure."""
    if isinstance(value, enum.Enum):
        return (type(value).__name__, value.name)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = tuple(
            (f.name, _canonical(getattr(value, f.name)))
            for f in dataclasses.fields(value)
        )
        return (type(value).__name__, fields)
    if isinstance(value, dict):
        return tuple(sorted((str(k), _canonical(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(item) for item in value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(
        f"cannot fingerprint {type(value).__name__}; pass primitives, "
        f"dataclasses, enums, or containers of them"
    )


def fingerprint(*parts: Any) -> str:
    """SHA-256 fingerprint of a canonicalised tuple of configuration parts."""
    canonical = repr(tuple(_canonical(part) for part in parts))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ArtifactCache:
    """In-memory store of compile artifacts with hit / miss accounting.

    Entries are namespaced (``"program"``, ``"cell"``, ...) so one cache can
    hold every artifact kind of the compile stage.  The cache is unbounded by
    default; pass ``max_entries`` to evict the oldest entries FIFO, which is
    enough for sweep workloads where old configurations never return.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: Dict[Tuple[str, str], Any] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def get(self, namespace: str, key: str) -> Optional[Any]:
        """Look up an artifact, counting the hit or miss.

        A stored ``None`` artifact is a *hit* (distinguished from an absent
        entry by an internal sentinel), so the hit/miss statistics stay
        truthful for caches that legitimately store ``None`` values.
        """
        entry = self._entries.get((namespace, key), _MISSING)
        if entry is _MISSING:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, namespace: str, key: str, artifact: Any) -> Any:
        """Store an artifact and return it (for call-site chaining)."""
        self._store_memory(namespace, key, artifact)
        return artifact

    def _store_memory(self, namespace: str, key: str, artifact: Any) -> None:
        if (self.max_entries is not None
                and (namespace, key) not in self._entries
                and len(self._entries) >= self.max_entries):
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        self._entries[(namespace, key)] = artifact

    def count(self, namespace: Optional[str] = None) -> int:
        """Number of stored artifacts, optionally within one namespace."""
        if namespace is None:
            return len(self._entries)
        return sum(1 for space, _ in self._entries if space == namespace)

    def clear(self) -> None:
        """Drop every entry and reset the statistics."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def reset_stats(self) -> None:
        """Zero the hit / miss counters without touching the entries.

        Benchmarks call this between phases so each phase's ``stats()``
        reflects only its own lookups instead of the warm-up's.
        """
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache.

        An idle cache (no lookups yet — in particular an *empty* one) has no
        meaningful rate; the division is guarded and reported as 0.0 rather
        than raising or pretending a rate exists.
        """
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    def stats(self) -> Dict[str, Union[int, float]]:
        """Flat statistics summary (used by benchmarks and reports).

        Counter values are plain ``int``; only ``hit_rate`` is a float.
        """
        return {
            "entries": int(len(self._entries)),
            "hits": int(self.hits),
            "misses": int(self.misses),
            "lookups": int(self.hits + self.misses),
            "hit_rate": float(self.hit_rate),
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple[str, str]) -> bool:
        return key in self._entries


class PersistentArtifactCache(ArtifactCache):
    """Two-tier artifact cache: an in-memory LRU front over a disk store.

    Artifacts are pickled under ``directory/v<version>/<namespace>/<key>.pkl``
    so a fresh process (or machine reboot) starts sweeps with compilation
    already paid.  The fingerprint keys are stable across processes (SHA-256
    of the canonicalised configuration), and the ``v<version>`` path segment
    acts as a format-version salt: bumping
    :data:`CACHE_FORMAT_VERSION` orphans old entries instead of unpickling
    incompatible layouts.

    Writes are atomic (temp file in the target directory, then
    ``os.replace``), so concurrent writers of the same key leave one valid
    entry and readers never observe a torn file.  Unreadable or corrupted
    entries are treated as misses and deleted.  Disk write failures (e.g. a
    full disk) degrade the cache to memory-only for the affected entries and
    are counted in ``disk_errors`` rather than aborting the sweep.

    With ``max_entries`` set, the memory front evicts least-recently-used
    entries (a memory hit refreshes recency); evicted artifacts remain on
    disk and are promoted back on their next lookup.
    """

    def __init__(self, directory: Union[str, Path],
                 max_entries: Optional[int] = None,
                 version: int = CACHE_FORMAT_VERSION) -> None:
        super().__init__(max_entries=max_entries)
        self.directory = Path(directory).expanduser()
        self.version = int(version)
        self.memory_hits = 0
        self.disk_hits = 0
        self.disk_errors = 0

    # ------------------------------------------------------------------
    @property
    def root(self) -> Path:
        """The versioned root all entries of this cache live under."""
        return self.directory / f"v{self.version}"

    def entry_path(self, namespace: str, key: str) -> Path:
        """On-disk location of one artifact."""
        return self.root / namespace / f"{key}.pkl"

    # ------------------------------------------------------------------
    def get(self, namespace: str, key: str) -> Optional[Any]:
        entry = self._entries.get((namespace, key), _MISSING)
        if entry is not _MISSING:
            self.hits += 1
            self.memory_hits += 1
            if self.max_entries is not None:
                # LRU refresh: re-insert so eviction pops the least
                # recently *used* entry, not the least recently stored.
                del self._entries[(namespace, key)]
                self._entries[(namespace, key)] = entry
            return entry
        artifact = self._read_disk(namespace, key)
        if artifact is _MISSING:
            self.misses += 1
            return None
        self.hits += 1
        self.disk_hits += 1
        self._store_memory(namespace, key, artifact)
        return artifact

    def put(self, namespace: str, key: str, artifact: Any) -> Any:
        self._store_memory(namespace, key, artifact)
        self._write_disk(namespace, key, artifact)
        return artifact

    # ------------------------------------------------------------------
    def _read_disk(self, namespace: str, key: str) -> Any:
        path = self.entry_path(namespace, key)
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return _MISSING
        except Exception:
            # Truncated write from a killed process, bit rot, or an entry
            # pickled by incompatible code: any unpickling failure is a
            # miss, and the bad file is removed so it is re-written clean.
            self.disk_errors += 1
            try:
                path.unlink()
            except OSError:
                pass
            return _MISSING

    def _write_disk(self, namespace: str, key: str, artifact: Any) -> None:
        path = self.entry_path(namespace, key)
        tmp: Optional[Path] = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
            with open(tmp, "wb") as handle:
                pickle.dump(artifact, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
            tmp = None
        except Exception:
            # A full/read-only disk (OSError) or an artifact that cannot be
            # pickled (closures, open handles) must not fail the compile —
            # the cache degrades to memory-only for that entry.
            self.disk_errors += 1
        finally:
            if tmp is not None:
                try:
                    tmp.unlink()
                except OSError:
                    pass

    # ------------------------------------------------------------------
    def disk_entries(self) -> Iterator[Tuple[str, str, int, float]]:
        """Yield ``(namespace, key, size_bytes, mtime)`` per disk entry."""
        root = self.root
        if not root.is_dir():
            return
        for ns_dir in sorted(p for p in root.iterdir() if p.is_dir()):
            for path in sorted(ns_dir.glob("*.pkl")):
                try:
                    stat = path.stat()
                except OSError:  # pragma: no cover - raced deletion
                    continue
                yield ns_dir.name, path.stem, int(stat.st_size), stat.st_mtime

    def disk_count(self) -> int:
        """Number of artifacts stored on disk (current format version)."""
        return sum(1 for _ in self.disk_entries())

    def disk_bytes(self) -> int:
        """Total pickled size on disk (current format version)."""
        return sum(size for _, _, size, _ in self.disk_entries())

    def clear(self) -> None:
        """Drop the memory front, the stats, and this version's disk tree."""
        super().clear()
        self.memory_hits = 0
        self.disk_hits = 0
        self.disk_errors = 0
        shutil.rmtree(self.root, ignore_errors=True)

    def reset_stats(self) -> None:
        super().reset_stats()
        self.memory_hits = 0
        self.disk_hits = 0
        self.disk_errors = 0

    def stats(self) -> Dict[str, Union[int, float]]:
        data = super().stats()
        data.update({
            "memory_hits": int(self.memory_hits),
            "disk_hits": int(self.disk_hits),
            "disk_errors": int(self.disk_errors),
            "disk_entries": int(self.disk_count()),
            "disk_bytes": int(self.disk_bytes()),
        })
        return data


# ----------------------------------------------------------------------
def resolve_cache_dir(override: Union[None, str, Path] = None
                      ) -> Optional[Path]:
    """Resolve the persistent cache directory, if any.

    ``override`` (a CLI flag or API argument) wins; otherwise the
    ``REPRO_CACHE_DIR`` environment variable applies.  ``None`` / empty
    means no disk tier.
    """
    if override is not None and str(override) != "":
        return Path(override).expanduser()
    env = os.environ.get(CACHE_ENV_VAR)
    if env:
        return Path(env).expanduser()
    return None


def default_cache(cache_dir: Union[None, str, Path] = None,
                  max_entries: Optional[int] = None) -> ArtifactCache:
    """Build the default artifact cache, honouring ``REPRO_CACHE_DIR``.

    Returns a :class:`PersistentArtifactCache` when a cache directory is
    configured (argument or environment), else a plain in-memory
    :class:`ArtifactCache`.
    """
    directory = resolve_cache_dir(cache_dir)
    if directory is None:
        return ArtifactCache(max_entries=max_entries)
    return PersistentArtifactCache(directory, max_entries=max_entries)
