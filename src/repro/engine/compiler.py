"""Compile stage: turn (benchmark, design) cells into immutable artifacts.

The experiment grids of the paper (Figs. 5-8) repeat every (benchmark,
design) cell over many stochastic seeds, but only the entanglement process is
stochastic — building the circuit, partitioning it over nodes, resolving the
design, and pre-compiling the ASAP/ALAP schedule lookup table are all
deterministic.  :class:`CellCompiler` performs that deterministic work
exactly once per cell and packages it as a :class:`CompiledCell`, which the
execute stage (see :mod:`repro.engine.backends`) can then replay under any
seed, serially or across processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.benchmarks.registry import build_benchmark
from repro.circuits.circuit import QuantumCircuit
from repro.core.config import SystemConfig
from repro.engine.cache import ArtifactCache, default_cache, fingerprint
from repro.exceptions import ConfigurationError
from repro.hardware.architecture import DQCArchitecture
from repro.hardware.topology import validate_remote_pairs
from repro.partitioning.assigner import DistributedProgram, distribute_circuit
from repro.partitioning.registry import get_partitioner
from repro.runtime.batched import BatchedExecutor
from repro.runtime.designs import DesignSpec, get_design
from repro.runtime.execmode import LEGACY, VECTOR, execution_mode
from repro.runtime.executor import DesignExecutor
from repro.runtime.gatestream import CompiledStreams, lower_cell
from repro.runtime.metrics import ExecutionResult
from repro.runtime.vectorized import VectorizedExecutor
from repro.scheduling.lookup import ScheduleLookupTable
from repro.scheduling.policies import AdaptivePolicy

__all__ = ["CompiledCell", "CellCompiler"]

CircuitLike = Union[str, QuantumCircuit, DistributedProgram]


@dataclass(frozen=True, eq=False)
class CompiledCell:
    """Immutable compile artifact of one (benchmark, design) cell.

    Everything deterministic about the cell lives here: the partitioned
    program, the materialised architecture, the resolved design spec, the
    segment-length override, and — for adaptive designs — the pre-built
    :class:`~repro.scheduling.lookup.ScheduleLookupTable`.  Executing the
    cell under a seed touches none of this state except the lookup table's
    decision log, which the executor resets at the start of every run.
    """

    benchmark: str
    design: DesignSpec
    program: DistributedProgram
    architecture: DQCArchitecture
    segment_length: Optional[int]
    adaptive_policy: AdaptivePolicy
    lookup: Optional[ScheduleLookupTable]
    cache_key: str
    streams: Optional[CompiledStreams] = None

    # ------------------------------------------------------------------
    def executor(self, seed: int = 0,
                 collect_trace: bool = False) -> DesignExecutor:
        """Build a legacy :class:`DesignExecutor` that replays this cell."""
        return DesignExecutor(
            self.architecture,
            self.design,
            seed=seed,
            segment_length=self.segment_length,
            adaptive_policy=self.adaptive_policy,
            lookup=self.lookup,
            collect_trace=collect_trace,
        )

    def batched_executor(self) -> BatchedExecutor:
        """Build a :class:`BatchedExecutor` over this cell's gate streams."""
        return BatchedExecutor(
            self.architecture,
            self.design,
            segment_length=self.segment_length,
            adaptive_policy=self.adaptive_policy,
            lookup=self.lookup,
            streams=self.streams,
        )

    def vector_executor(self) -> VectorizedExecutor:
        """Build a :class:`VectorizedExecutor` over this cell's gate streams."""
        return VectorizedExecutor(
            self.architecture,
            self.design,
            segment_length=self.segment_length,
            adaptive_policy=self.adaptive_policy,
            lookup=self.lookup,
            streams=self.streams,
        )

    def execute_batch(self, seeds: Sequence[int],
                      mode: Optional[str] = None) -> List[ExecutionResult]:
        """Replay the cell under a batch of seeds, in seed order.

        ``mode`` overrides the process-wide execution core
        (:func:`~repro.runtime.execmode.execution_mode`): ``"batched"``
        replays the lowered gate streams once per seed, ``"vector"``
        simulates the whole batch per gate-stream pass, ``"legacy"`` runs
        the reference :class:`DesignExecutor` per seed.  All three produce
        identical results for identical seeds.
        """
        resolved = execution_mode(mode)
        if resolved == LEGACY:
            return [
                self.executor(seed=seed).run(
                    self.program, benchmark_name=self.benchmark
                )
                for seed in seeds
            ]
        if resolved == VECTOR:
            return self.vector_executor().run_batch(
                self.program, seeds, benchmark_name=self.benchmark
            )
        return self.batched_executor().run_batch(
            self.program, seeds, benchmark_name=self.benchmark
        )

    def execute(self, seed: int = 0, collect_trace: bool = False,
                mode: Optional[str] = None) -> ExecutionResult:
        """Replay the cell under one seed and return its metrics.

        Trace collection is a legacy-executor feature, so ``collect_trace``
        forces the reference core for that call.
        """
        if collect_trace or execution_mode(mode) == LEGACY:
            executor = self.executor(seed=seed, collect_trace=collect_trace)
            return executor.run(self.program, benchmark_name=self.benchmark)
        return self.execute_batch([seed], mode=mode)[0]


class CellCompiler:
    """Deterministic compile stage with a fingerprint-keyed artifact cache.

    Parameters
    ----------
    system:
        Hardware configuration (defaults to the paper's 32-qubit system).
        Carries the partitioning strategy (``system.partition_method``) and
        the interconnect topology (``system.topology``).
    partition_method:
        Optional override of ``system.partition_method``: a registered name,
        alias, or :class:`~repro.partitioning.registry.Partitioner`
        instance.  ``None`` (default) uses the system's strategy.
    partition_seed:
        Partitioner seed; partitioning is deterministic per seed.
    cache:
        Artifact cache, shareable across compilers.  Programs are keyed by
        (benchmark, partitioning) only — independent of communication /
        buffer qubit counts and of the interconnect topology — so sweeps
        over those axes reuse the partition and recompile just the schedule
        lookup tables.  When omitted, :func:`~repro.engine.cache.default_cache`
        builds one — persistent on disk if ``REPRO_CACHE_DIR`` (or
        ``cache_dir``) is set, in-memory otherwise.
    cache_dir:
        Optional persistent-cache directory for the default cache (ignored
        when an explicit ``cache`` is passed).
    """

    def __init__(self, system: Optional[SystemConfig] = None,
                 partition_method=None,
                 partition_seed: int = 0,
                 cache: Optional[ArtifactCache] = None,
                 cache_dir=None) -> None:
        self.system = system or SystemConfig()
        method = (partition_method if partition_method is not None
                  else self.system.partition_method)
        self.partitioner = get_partitioner(method)
        # Canonical name: aliases ("kl") fingerprint like their targets.
        self.partition_method = self.partitioner.name
        # Cache keys use the token, not the bare name, so stateful
        # strategies (e.g. PrecomputedPartitioner) never collide in a
        # shared artifact cache.
        self._partition_token = self.partitioner.cache_token()
        self.partition_seed = partition_seed
        self.cache = cache if cache is not None else default_cache(cache_dir)
        self._architecture: Optional[DQCArchitecture] = None

    # ------------------------------------------------------------------
    @property
    def architecture(self) -> DQCArchitecture:
        """The materialised hardware architecture (built lazily, once)."""
        if self._architecture is None:
            self._architecture = self.system.build_architecture()
        return self._architecture

    # ------------------------------------------------------------------
    def program_key(self, benchmark: str) -> str:
        """Cache key of a named benchmark's partitioned program."""
        return fingerprint(
            "program", benchmark.lower(), self.system.num_nodes,
            self._partition_token, self.partition_seed,
        )

    def circuit_key(self, circuit: QuantumCircuit) -> str:
        """Content-based cache key of an ad-hoc circuit's program.

        Keying by gate content (not object identity) means a circuit that is
        mutated between calls is correctly recompiled, while unchanged — or
        structurally equal — circuits share one partitioned program.
        """
        return fingerprint(
            "circuit", circuit.name, circuit.num_qubits, tuple(circuit.gates),
            self.system.num_nodes, self._partition_token, self.partition_seed,
        )

    def _program_token(self, circuit: CircuitLike,
                       program: DistributedProgram) -> str:
        """The program-identifying part of a cell's cache key."""
        if isinstance(circuit, str):
            return self.program_key(circuit)
        if isinstance(circuit, QuantumCircuit):
            return self.circuit_key(circuit)
        return fingerprint(
            "inline-program", program.name, program.num_qubits,
            tuple(program.circuit.gates),
            tuple(program.node_of(q) for q in range(program.num_qubits)),
        )

    def resolve_program(self, circuit: CircuitLike) -> DistributedProgram:
        """Resolve a benchmark name / circuit into a distributed program.

        Named benchmarks are cached by configuration fingerprint; circuit
        objects by gate content.  Pre-partitioned programs pass through.
        """
        if isinstance(circuit, DistributedProgram):
            return circuit
        if isinstance(circuit, str):
            key = self.program_key(circuit)
            program = self.cache.get("program", key)
            if program is None:
                program = self._distribute(build_benchmark(circuit))
                self.cache.put("program", key, program)
            else:
                self._check_capacity(program.num_qubits)
            return program
        if isinstance(circuit, QuantumCircuit):
            key = self.circuit_key(circuit)
            program = self.cache.get("program", key)
            if program is None:
                program = self._distribute(circuit)
                self.cache.put("program", key, program)
            else:
                self._check_capacity(program.num_qubits)
            return program
        raise ConfigurationError(
            f"cannot interpret {type(circuit).__name__} as a circuit"
        )

    def _distribute(self, circuit: QuantumCircuit) -> DistributedProgram:
        self._check_capacity(circuit.num_qubits)
        return distribute_circuit(
            circuit,
            num_nodes=self.system.num_nodes,
            method=self.partitioner,
            seed=self.partition_seed,
        )

    def _check_capacity(self, num_qubits: int) -> None:
        if num_qubits > self.system.total_data_qubits:
            raise ConfigurationError(
                f"circuit needs {num_qubits} data qubits but the system "
                f"provides {self.system.total_data_qubits}"
            )

    # ------------------------------------------------------------------
    def compile(
        self,
        circuit: CircuitLike,
        design: Union[str, DesignSpec],
        segment_length: Optional[int] = None,
        adaptive_policy: Optional[AdaptivePolicy] = None,
    ) -> CompiledCell:
        """Compile one cell, reusing cached artifacts where possible."""
        spec = design if isinstance(design, DesignSpec) else get_design(design)
        policy = adaptive_policy or AdaptivePolicy()
        program = self.resolve_program(circuit)
        key = self._cell_key(circuit, program, spec, segment_length, policy)
        cell = self.cache.get("cell", key)
        if cell is not None:
            return cell

        if not spec.ideal:
            # Fail at compile time, with the topology named, rather than deep
            # inside the executor.  Ideal (monolithic) cells run every gate
            # locally and need no interconnect.  A cell-cache hit above was
            # validated when first compiled (the key covers system+program).
            validate_remote_pairs(
                self.architecture, program.remote_pairs(),
                context=(f"program {program.name!r} under topology "
                         f"{self.system.topology!r}"),
            )

        lookup: Optional[ScheduleLookupTable] = None
        if spec.adaptive_scheduling:
            # Reuse the executor's resolution logic (segment length from the
            # architecture's communication pairs) so the engine path stays
            # bit-identical to direct DesignExecutor use.
            builder = self._lookup_builder(spec, segment_length, policy)
            lookup = builder.build_lookup(program)

        cell = CompiledCell(
            benchmark=program.name or str(circuit),
            design=spec,
            program=program,
            architecture=self.architecture,
            segment_length=segment_length,
            adaptive_policy=policy,
            lookup=lookup,
            cache_key=key,
            # Lower the program (and, for adaptive designs, every segment
            # variant) into flat gate streams once per cell; the batched
            # executor replays these arrays for every seed.
            streams=lower_cell(program, self.architecture, spec, lookup=lookup),
        )
        return self.cache.put("cell", key, cell)

    def _lookup_builder(self, spec: DesignSpec,
                        segment_length: Optional[int],
                        policy: AdaptivePolicy) -> DesignExecutor:
        return DesignExecutor(
            self.architecture, spec,
            segment_length=segment_length, adaptive_policy=policy,
        )

    def _cell_key(self, circuit: CircuitLike, program: DistributedProgram,
                  spec: DesignSpec, segment_length: Optional[int],
                  policy: AdaptivePolicy) -> str:
        return fingerprint(
            "cell", self.system, self._partition_token, self.partition_seed,
            self._program_token(circuit, program), spec, segment_length, policy,
        )
