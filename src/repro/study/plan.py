"""Lazy, deduplicated expansion of a study grid into engine cells.

The :class:`~repro.study.study.Study` turns every grid point into one
:class:`PlanCell` — the engine-facing unit of work: a (benchmark, design,
system, scheduling-knob) combination plus the seeds it is replayed under.
:class:`ExecutionPlan` holds the cells; it

* is **lazy** — cells are expanded from the grid on first access, nothing
  is compiled or executed at plan time, and
* is **deduplicated** — grid points whose configurations fingerprint
  identically (e.g. duplicate axis values) collapse into a single cell, so
  each unique configuration is compiled and executed exactly once.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.core.config import SystemConfig
from repro.engine.cache import fingerprint
from repro.runtime.designs import DesignSpec
from repro.scheduling.policies import AdaptivePolicy

__all__ = ["PlanCell", "ExecutionPlan", "jsonify", "param_token"]


def jsonify(value: Any) -> Any:
    """Reduce a value to JSON-compatible structures.

    Applied to swept-parameter coordinates before they enter a
    :class:`~repro.study.results.RunRecord`, so records compare equal across
    a JSON serialisation round-trip (tuples become lists, dataclasses and
    enums become plain data).
    """
    if isinstance(value, enum.Enum):
        return value.name
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: jsonify(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(key): jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(item) for item in value]
    return value


def param_token(value: Any) -> Any:
    """Reduce one axis coordinate to a hashable, JSON-compatible scalar.

    Records must stay groupable by any swept parameter, so non-primitive
    coordinates (e.g. an :class:`AdaptivePolicy` on an ``adaptive_policy``
    axis) become their stable ``repr`` string rather than an unhashable
    dict; primitives pass through unchanged.
    """
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, enum.Enum):
        return value.name
    return repr(value)


@dataclass(frozen=True, eq=False)
class PlanCell:
    """One engine cell of a study: what to compile and which seeds to run.

    ``design`` keeps the caller-supplied value (a registered name or an
    explicit :class:`DesignSpec`, e.g. an ablation override);
    ``design_name`` is the flat label that ends up in the records.
    ``params`` are the cell's coordinates on the study's non-reserved axes.
    """

    benchmark: str
    design: Union[str, DesignSpec]
    system: SystemConfig
    seeds: Tuple[int, ...]
    segment_length: Optional[int] = None
    adaptive_policy: Optional[AdaptivePolicy] = None
    params: Dict[str, Any] = field(default_factory=dict)

    @property
    def design_name(self) -> str:
        """Flat design label used in records and reports."""
        return self.design.name if isinstance(self.design, DesignSpec) else self.design

    @property
    def key(self) -> str:
        """Configuration fingerprint used for plan deduplication."""
        design_token = (self.design if isinstance(self.design, DesignSpec)
                        else str(self.design).lower())
        return fingerprint(
            "plan-cell", self.benchmark.lower(), design_token, self.system,
            self.segment_length, self.adaptive_policy, self.seeds,
        )

    @property
    def num_tasks(self) -> int:
        """Number of execution tasks (one per seed)."""
        return len(self.seeds)


class ExecutionPlan:
    """The deduplicated cell list of one study, expanded lazily.

    Parameters
    ----------
    cells:
        An iterable (typically a generator over grid points) producing
        :class:`PlanCell` objects.  It is consumed on first access; cells
        with a fingerprint already in the plan are dropped.
    """

    def __init__(self, cells: Iterable[PlanCell]) -> None:
        self._source: Optional[Iterable[PlanCell]] = cells
        self._cells: Optional[List[PlanCell]] = None
        self.duplicates_dropped = 0

    # ------------------------------------------------------------------
    @property
    def cells(self) -> List[PlanCell]:
        """The unique cells, expanding the source on first access."""
        if self._cells is None:
            unique: Dict[str, PlanCell] = {}
            dropped = 0
            for cell in self._source or ():
                if cell.key in unique:
                    dropped += 1
                    continue
                unique[cell.key] = cell
            self._cells = list(unique.values())
            self.duplicates_dropped = dropped
            self._source = None
        return self._cells

    @property
    def expanded(self) -> bool:
        """Whether the lazy expansion has happened yet."""
        return self._cells is not None

    @property
    def num_tasks(self) -> int:
        """Total execution tasks across all cells."""
        return sum(cell.num_tasks for cell in self.cells)

    def systems(self) -> List[SystemConfig]:
        """Distinct hardware configurations, in first-seen order."""
        unique: Dict[str, SystemConfig] = {}
        for cell in self.cells:
            unique.setdefault(fingerprint("system", cell.system), cell.system)
        return list(unique.values())

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[PlanCell]:
        return iter(self.cells)

    def __getitem__(self, index: int) -> PlanCell:
        return self.cells[index]

    def __repr__(self) -> str:
        if not self.expanded:
            return "ExecutionPlan(<unexpanded>)"
        return (f"ExecutionPlan({len(self.cells)} cells, "
                f"{self.num_tasks} tasks, "
                f"{len(self.systems())} systems)")
