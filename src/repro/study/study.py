"""Declarative experiment studies on top of the compile-once engine.

A :class:`Study` is the one entry point for *any* parameter sweep of the
evaluation: it crosses arbitrary axes — benchmarks, designs, seeds,
scheduling knobs, and any :class:`~repro.core.config.SystemConfig` field —
into a lazy, deduplicated :class:`~repro.study.plan.ExecutionPlan` of engine
cells, compiles each unique cell exactly once against one shared
:class:`~repro.engine.cache.ArtifactCache`, replays the whole seed × cell
grid through one pluggable execution backend in a single flat batch, and
returns a flat :class:`~repro.study.results.ResultSet`.

The paper's figures are each one study::

    # Fig. 5 / 6: designs × benchmarks on the 32-qubit system
    Study(benchmarks=["TLIM-32", "QAOA-r4-32", "QAOA-r8-32", "QFT-32"],
          num_runs=50, system=PAPER_32Q_SYSTEM)

    # Fig. 7: communication / buffer qubits swept together
    Study(benchmarks="QAOA-r8-32",
          axes=[Axis(("comm_qubits_per_node", "buffer_qubits_per_node"),
                     [(10, 10), (15, 15), (20, 20)])])

    # A new 2-axis grid: link quality x design
    Study(benchmarks="QAOA-r4-32",
          axes={"epr_success_probability": [0.2, 0.4, 0.8]})
"""

from __future__ import annotations

import inspect
import time
from dataclasses import fields as dataclass_fields, replace
from pathlib import Path
from typing import (
    Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union,
)

from repro.core.config import SystemConfig
from repro.engine.backends import BackendLike, ExecutionBackend, ExecutionTask, get_backend
from repro.engine.cache import ArtifactCache, default_cache, fingerprint
from repro.engine.compiler import CellCompiler, CompiledCell
from repro.exceptions import (
    BenchmarkError,
    ConfigurationError,
    PartitionError,
    SpecValidationError,
    TopologyError,
)
from repro.hardware.parameters import GateFidelities, GateTimes
from repro.hardware.topology import get_topology
from repro.partitioning.registry import get_partitioner
from repro.runtime.designs import DesignSpec, list_designs
from repro.runtime.metrics import ExecutionResult
from repro.scheduling.policies import AdaptivePolicy
from repro.study.grid import Axis, GridSpec
from repro.study.plan import ExecutionPlan, PlanCell, jsonify, param_token
from repro.study.results import ResultSet, RunRecord
from repro.study.store import (
    DEFAULT_CHUNK_SIZE,
    ProgressEvent,
    RunStore,
    StoreChunk,
    chunk_layout,
)

__all__ = ["Study", "EXECUTOR_AXES", "RESERVED_AXES"]

#: Callback type for :meth:`Study.run` progress reporting.
ProgressCallback = Callable[[ProgressEvent], None]

#: Axis names that address the execution pipeline rather than the system.
EXECUTOR_AXES = ("segment_length", "adaptive_policy")

#: All reserved axis names (everything else must be a SystemConfig field).
RESERVED_AXES = ("benchmark", "design", "seed", *EXECUTOR_AXES)

_SYSTEM_FIELDS = tuple(
    f.name for f in dataclass_fields(SystemConfig)
    if f.name not in ("gate_times", "fidelities")
)

#: Scalar string-valued SystemConfig fields (registry names); every other
#: sweepable system field takes numbers.
_SYSTEM_STRING_FIELDS = tuple(
    f.name for f in dataclass_fields(SystemConfig)
    if f.name in _SYSTEM_FIELDS and f.type in ("str", str)
)

_SYSTEM_NUMERIC_FIELDS = tuple(
    name for name in _SYSTEM_FIELDS if name not in _SYSTEM_STRING_FIELDS
)

AxesLike = Union[Sequence[Axis], Mapping[str, Sequence[Any]]]


def _normalise_axes(axes: Optional[AxesLike]) -> List[Axis]:
    if axes is None:
        return []
    if isinstance(axes, Mapping):
        return [Axis(field, values) for field, values in axes.items()]
    return [axis if isinstance(axis, Axis) else Axis(*axis) for axis in axes]


class Study:
    """One declarative experiment: a grid of axes over one base configuration.

    Parameters
    ----------
    benchmarks:
        Benchmark name or list of names (the ``benchmark`` axis).  May be
        omitted if ``axes`` contains an explicit ``benchmark`` axis.
    designs:
        Design names and/or explicit :class:`DesignSpec` objects (the
        ``design`` axis).  ``None`` means *all designs registered at run
        time*.  May also be given as an explicit ``design`` axis.
    axes:
        Additional swept dimensions: a sequence of :class:`Axis` or a
        mapping ``{field: values}``.  Reserved fields — ``seed``,
        ``segment_length``, ``adaptive_policy`` — address the execution
        pipeline; every other field must be a scalar
        :class:`SystemConfig` field (e.g. ``comm_qubits_per_node``,
        ``epr_success_probability``) and produces per-point system variants
        of ``system`` via :func:`dataclasses.replace`.  Custom axes are the
        outermost loops, benchmarks and designs the innermost (seeds vary
        fastest of all).
    num_runs / base_seed:
        Default repetition seeds ``base_seed .. base_seed + num_runs - 1``
        per cell; an explicit ``seed`` axis overrides both.
    system:
        Base hardware configuration (defaults to the paper's 32-qubit
        system).  Carries the default partitioning strategy and interconnect
        topology; a ``partition_method`` or ``topology`` axis produces
        per-point variants.
    partition_method:
        Optional override of ``system.partition_method`` (applied to the
        base system, so axes still take precedence per point).
    partition_seed:
        Partitioner seed shared by every cell.
    backend:
        Execute-stage strategy (instance, registered name, or ``None``,
        which honours the ``REPRO_BACKEND`` environment variable and falls
        back to serial).  Backends dispatch the grid as (cell, seed-chunk)
        batches through the batched execution core — set
        ``REPRO_EXEC=legacy`` to replay through the reference executor
        instead.  Backends the study creates from a name / ``None`` are
        closed by :meth:`close`; caller-provided instances stay open.
    cache:
        Shared compile-artifact cache (one is created if omitted), used by
        every system variant of the study — a sweep therefore partitions
        each benchmark once no matter how many system points it visits.
    cache_dir:
        Optional persistent-cache directory; when no ``cache`` instance is
        passed, the study builds its cache with
        :func:`~repro.engine.cache.default_cache`, so this directory (or,
        failing that, ``REPRO_CACHE_DIR``) upgrades the cache to a
        :class:`~repro.engine.cache.PersistentArtifactCache` that carries
        compiled artifacts across processes.
    name:
        Optional label stored in the result metadata.
    """

    def __init__(
        self,
        benchmarks: Union[None, str, Sequence[str]] = None,
        designs: Union[None, str, DesignSpec,
                       Sequence[Union[str, DesignSpec]]] = None,
        *,
        axes: Optional[AxesLike] = None,
        num_runs: int = 1,
        base_seed: int = 1,
        system: Optional[SystemConfig] = None,
        partition_method: Optional[str] = None,
        partition_seed: int = 0,
        backend: BackendLike = None,
        cache: Optional[ArtifactCache] = None,
        cache_dir: Union[None, str, Path] = None,
        name: Optional[str] = None,
    ) -> None:
        if num_runs < 1:
            raise ConfigurationError("study needs at least one run")
        self.name = name
        self.num_runs = num_runs
        self.base_seed = base_seed
        self.system = system or SystemConfig()
        if partition_method is not None:
            # The system carries the strategy so per-point variants (a
            # partition_method axis) and the base default share one code path.
            self.system = replace(self.system,
                                  partition_method=partition_method)
        self.partition_method = self.system.partition_method
        self.partition_seed = partition_seed
        self.cache = cache if cache is not None else default_cache(cache_dir)

        custom = _normalise_axes(axes)
        self._benchmarks = self._benchmark_axis(benchmarks, custom)
        self._designs = self._design_arg(designs, custom)
        self._custom_axes = [a for a in custom
                             if a.fields != ("benchmark",)
                             and a.fields != ("design",)]
        self._validate_axes()

        self._backend_arg = backend
        self._backend: Optional[ExecutionBackend] = None
        self._owns_backend = not isinstance(backend, ExecutionBackend)
        self._compilers: Dict[str, CellCompiler] = {}

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _benchmark_axis(benchmarks, custom: List[Axis]) -> List[str]:
        explicit = [a for a in custom if a.fields == ("benchmark",)]
        if len(explicit) > 1:
            # These axes are lifted out of the grid, so GridSpec's
            # duplicate-field check never sees them; dropping one silently
            # would lose whole benchmarks from the results.
            raise ConfigurationError("study has more than one 'benchmark' axis")
        if benchmarks is None:
            if not explicit:
                raise ConfigurationError(
                    "study needs benchmarks (argument or a 'benchmark' axis)"
                )
            return [str(v) for v in explicit[0].values]
        if explicit:
            raise ConfigurationError(
                "pass benchmarks either as an argument or as an axis, not both"
            )
        names = [benchmarks] if isinstance(benchmarks, str) else list(benchmarks)
        if not names:
            raise ConfigurationError("study needs at least one benchmark")
        return [str(name) for name in names]

    @staticmethod
    def _design_arg(designs, custom: List[Axis]):
        explicit = [a for a in custom if a.fields == ("design",)]
        if len(explicit) > 1:
            raise ConfigurationError("study has more than one 'design' axis")
        if explicit and designs is not None:
            raise ConfigurationError(
                "pass designs either as an argument or as an axis, not both"
            )
        if explicit:
            return list(explicit[0].values)
        return designs

    def _design_values(self) -> List[Union[str, DesignSpec]]:
        """The design axis values, resolved at expansion time.

        ``None`` means every design registered *now* — late registrations
        are picked up, unlike a default frozen at import time.
        """
        designs = self._designs
        if designs is None:
            return list(list_designs())
        if isinstance(designs, (str, DesignSpec)):
            designs = [designs]
        values = list(designs)
        if not values:
            raise ConfigurationError("study needs at least one design")
        seen: Dict[str, Union[str, DesignSpec]] = {}
        for value in values:
            name = (value.name if isinstance(value, DesignSpec)
                    else str(value)).lower()
            if name in seen and seen[name] != value:
                # Records are keyed by design name; distinct variants under
                # one name would silently pool their statistics.
                raise ConfigurationError(
                    f"two distinct design-axis values share the name "
                    f"{name!r}; give variants unique names via "
                    f"with_overrides(name=...)"
                )
            seen[name] = value
        return values

    def _validate_axes(self) -> None:
        seed_axes = sum(1 for axis in self._custom_axes
                        if axis.fields == ("seed",))
        if seed_axes > 1:
            # Seed axes are lifted out of the grid (they replace the
            # repetition range), so GridSpec's duplicate-field check never
            # sees them; reject duplicates here instead of dropping one.
            raise ConfigurationError("study has more than one 'seed' axis")
        for axis in self._custom_axes:
            if "seed" in axis.fields and len(axis.fields) > 1:
                raise ConfigurationError(
                    "'seed' cannot be zipped with other fields; it replaces "
                    "the base_seed/num_runs repetition range, which applies "
                    "to every cell"
                )
            for index, field in enumerate(axis.fields):
                if field in ("benchmark", "design"):
                    raise ConfigurationError(
                        f"{field!r} cannot be zipped with other fields; "
                        f"pass it via the {field}s argument"
                    )
                if field in RESERVED_AXES:
                    self._check_executor_values(axis, index, field)
                    continue
                if field not in _SYSTEM_FIELDS:
                    non_scalar = tuple(
                        f.name for f in dataclass_fields(SystemConfig)
                        if f.name not in _SYSTEM_FIELDS
                    )
                    if field in non_scalar:
                        raise ConfigurationError(
                            f"SystemConfig field {field!r} is not a scalar "
                            f"and cannot be swept as an axis; sweepable "
                            f"axes — reserved: {', '.join(RESERVED_AXES)}; "
                            f"numeric system fields: "
                            f"{', '.join(_SYSTEM_NUMERIC_FIELDS)}; string "
                            f"system fields: "
                            f"{', '.join(_SYSTEM_STRING_FIELDS)}"
                        )
                    raise ConfigurationError(
                        f"unknown axis field {field!r}; sweepable axes — "
                        f"reserved: {', '.join(RESERVED_AXES)}; numeric "
                        f"system fields: {', '.join(_SYSTEM_NUMERIC_FIELDS)}; "
                        f"string system fields: "
                        f"{', '.join(_SYSTEM_STRING_FIELDS)}"
                    )
                for value in axis.values:
                    item = value[index] if len(axis.fields) > 1 else value
                    if field in _SYSTEM_STRING_FIELDS:
                        self._check_string_field_value(field, item)
                    elif isinstance(item, bool) or not isinstance(
                            item, (int, float)):
                        raise ConfigurationError(
                            f"system axis {field!r} values must be numbers, "
                            f"got {item!r}"
                        )

    def _check_string_field_value(self, field: str, item: Any) -> None:
        """Resolve registry-name axis values eagerly so a typo fails at
        study construction, not mid-run in a system variant."""
        if not isinstance(item, str):
            raise ConfigurationError(
                f"system axis {field!r} values must be registry names "
                f"(strings), got {item!r}"
            )
        try:
            if field == "partition_method":
                partitioner = get_partitioner(item)
                # Capability check against the node count, unless num_nodes
                # is itself swept — then each variant's SystemConfig checks
                # its own combination at plan-expansion time.
                num_nodes_swept = any("num_nodes" in axis.fields
                                      for axis in self._custom_axes)
                if (not num_nodes_swept and self.system.num_nodes > 2
                        and not partitioner.supports_k_way):
                    raise ConfigurationError(
                        f"partition_method axis value {item!r} only supports "
                        f"bisection but the system has "
                        f"{self.system.num_nodes} nodes"
                    )
            elif field == "topology":
                topology = get_topology(item)
                if not any("num_nodes" in axis.fields
                           for axis in self._custom_axes):
                    topology.links(self.system.num_nodes)
        except (PartitionError, TopologyError) as error:
            raise ConfigurationError(
                f"invalid {field!r} axis value: {error}"
            ) from None

    @staticmethod
    def _check_executor_values(axis: Axis, index: int, field: str) -> None:
        """Type-check reserved-axis values so bad grids fail at build time,
        not with a raw traceback deep inside execution."""
        for value in axis.values:
            item = value[index] if len(axis.fields) > 1 else value
            if field == "adaptive_policy":
                if not isinstance(item, AdaptivePolicy):
                    raise ConfigurationError(
                        f"'adaptive_policy' axis values must be "
                        f"AdaptivePolicy instances, got {item!r}"
                    )
            elif field == "segment_length":
                if item is not None and (isinstance(item, bool)
                                         or not isinstance(item, int)):
                    raise ConfigurationError(
                        f"'segment_length' axis values must be integers "
                        f"(or None for the design default), got {item!r}"
                    )
            elif field == "seed":
                if isinstance(item, bool) or not isinstance(item, int):
                    raise ConfigurationError(
                        f"'seed' axis values must be integers, got {item!r}"
                    )

    # ------------------------------------------------------------------
    # grid and plan
    # ------------------------------------------------------------------
    @property
    def grid(self) -> GridSpec:
        """The full grid: custom axes (outermost), benchmark, design."""
        axes = [
            *(a for a in self._custom_axes if "seed" not in a.fields),
            Axis("benchmark", self._benchmarks),
            Axis("design", self._design_values()),
        ]
        return GridSpec(axes)

    def seeds(self) -> List[int]:
        """Seeds each cell is replayed under (seed axis or base range)."""
        for axis in self._custom_axes:
            if axis.fields == ("seed",):
                return [int(v) for v in axis.values]
        return [self.base_seed + index for index in range(self.num_runs)]

    def _point_cell(self, point: Dict[str, Any],
                    seeds: Tuple[int, ...]) -> PlanCell:
        system_overrides = {
            key: value for key, value in point.items()
            if key in _SYSTEM_FIELDS
        }
        system = (replace(self.system, **system_overrides)
                  if system_overrides else self.system)
        params = {
            key: value for key, value in point.items()
            if key not in ("benchmark", "design")
        }
        return PlanCell(
            benchmark=point["benchmark"],
            design=point["design"],
            system=system,
            seeds=seeds,
            segment_length=point.get("segment_length"),
            adaptive_policy=point.get("adaptive_policy"),
            params=params,
        )

    def plan(self) -> ExecutionPlan:
        """Expand the grid into the lazy, deduplicated execution plan."""
        grid = self.grid
        seeds = tuple(self.seeds())  # identical for every cell; build once
        return ExecutionPlan(self._point_cell(point, seeds)
                             for point in grid.points())

    # ------------------------------------------------------------------
    # engine plumbing
    # ------------------------------------------------------------------
    @property
    def backend(self) -> ExecutionBackend:
        """The resolved execution backend (created lazily)."""
        if self._backend is None:
            self._backend = get_backend(self._backend_arg)
        return self._backend

    def compiler_for(self, system: Optional[SystemConfig] = None) -> CellCompiler:
        """The (cached) compile stage of one system variant.

        Every compiler of the study shares :attr:`cache`, so artifacts that
        do not depend on the varied fields — notably partitioned programs —
        are reused across system variants.
        """
        system = system or self.system
        key = fingerprint("study-system", system, self.partition_seed)
        compiler = self._compilers.get(key)
        if compiler is None:
            # The system variant carries its own partition_method/topology,
            # so a swept strategy reaches the compiler with no extra plumbing.
            compiler = CellCompiler(
                system=system,
                partition_seed=self.partition_seed,
                cache=self.cache,
            )
            self._compilers[key] = compiler
        return compiler

    def compile_plan(self, plan: Optional[ExecutionPlan] = None
                     ) -> List[CompiledCell]:
        """Compile every plan cell (cache-served where possible), in order."""
        plan = plan if plan is not None else self.plan()
        return [
            self.compiler_for(cell.system).compile(
                cell.benchmark, cell.design,
                segment_length=cell.segment_length,
                adaptive_policy=cell.adaptive_policy,
            )
            for cell in plan
        ]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def plan_fingerprint(self, plan: Optional[ExecutionPlan] = None) -> str:
        """Stable identity of the executable plan (the run-store key).

        Covers every cell's configuration fingerprint — benchmark, design,
        the full :class:`SystemConfig`, scheduling knobs, and the seed
        list — plus the shared partitioner seed, so two studies share a
        store if and only if they would execute the identical grid.
        """
        plan = plan if plan is not None else self.plan()
        return fingerprint("study-plan", self.partition_seed,
                           tuple(cell.key for cell in plan))

    def run(self, plan: Optional[ExecutionPlan] = None, *,
            store: Union[None, str, Path, RunStore] = None,
            progress: Optional[ProgressCallback] = None,
            max_chunks: Optional[int] = None,
            store_chunk_size: Optional[int] = None,
            store_format: Optional[str] = None) -> ResultSet:
        """Execute the study and return its flat result set.

        The whole seed × cell grid is submitted to the backend as one flat
        batch, so a parallel backend balances across every cell of every
        system variant at once (the legacy sweep ran one system at a time).
        Pass a pre-expanded ``plan`` to avoid expanding the grid twice.

        Parameters
        ----------
        store:
            Optional durable :class:`~repro.study.store.RunStore` (or its
            directory path): results stream to append-only shards as
            chunks complete, and chunks the store has already committed
            are *skipped* — re-running the same study against the same
            store resumes where a previous (possibly killed) invocation
            stopped, with a final result byte-identical to an
            uninterrupted run.
        progress:
            Optional callback receiving a
            :class:`~repro.study.store.ProgressEvent` once at start and
            after every completed chunk.
        max_chunks:
            Execute at most this many *new* chunks, then return what is
            complete so far (the store keeps the progress).  ``0`` loads a
            store's existing records without executing anything.
        store_chunk_size:
            Seeds per chunk for a fresh store (default
            :data:`~repro.study.store.DEFAULT_CHUNK_SIZE`); an existing
            store keeps its committed layout.
        store_format:
            Shard encoding for a fresh store — ``"jsonl"`` (default) or
            ``"npz"`` (columnar binary); an existing store keeps its
            committed format.  The returned set — and its ``to_json``
            text — is byte-identical either way.
        """
        plan = plan if plan is not None else self.plan()
        if store_chunk_size is not None and store_chunk_size < 1:
            raise ConfigurationError("store chunk size must be positive")
        if store is None and progress is None and max_chunks is None:
            return self._run_direct(plan)
        return self._run_streamed(plan, store=store, progress=progress,
                                  max_chunks=max_chunks,
                                  store_chunk_size=store_chunk_size,
                                  store_format=store_format)

    def _run_direct(self, plan: ExecutionPlan) -> ResultSet:
        """The all-in-memory path: one flat batch, records on return."""
        compiled = self.compile_plan(plan)
        tasks = [
            ExecutionTask(compiled_cell, seed)
            for compiled_cell, cell in zip(compiled, plan)
            for seed in cell.seeds
        ]
        results = self.backend.execute(tasks)
        records: List[RunRecord] = []
        index = 0
        for cell in plan:
            params = {key: param_token(value)
                      for key, value in cell.params.items()}
            for _ in cell.seeds:
                records.append(
                    RunRecord.from_execution_result(results[index], params)
                )
                index += 1
        return ResultSet(records, metadata=self.describe())

    def _run_streamed(self, plan: ExecutionPlan, *,
                      store: Union[None, str, Path, RunStore],
                      progress: Optional[ProgressCallback],
                      max_chunks: Optional[int],
                      store_chunk_size: Optional[int],
                      store_format: Optional[str] = None) -> ResultSet:
        """The chunked path: durable store and/or progress observation.

        The plan is split into deterministic store chunks (cells in plan
        order, seed ranges within each cell); chunks the store has already
        committed are filtered out, the rest run as one flat backend batch
        whose streamed results are persisted chunk by chunk, and the final
        records are assembled in plan order from both sources — which is
        what makes a resumed study byte-identical to an uninterrupted one.
        """
        if max_chunks is not None and max_chunks < 0:
            raise ConfigurationError("max_chunks cannot be negative")
        if store is not None and not isinstance(store, RunStore):
            store = RunStore(store, chunk_size=store_chunk_size,
                             shard_format=store_format)
        compiled = self.compile_plan(plan)
        cells = plan.cells
        if store is not None:
            store.begin(
                self.plan_fingerprint(plan), self.describe(),
                [{"benchmark": cell.benchmark, "design": cell.design_name,
                  "num_seeds": len(cell.seeds)} for cell in cells],
            )
            chunk_size = store.chunk_size
        else:
            chunk_size = store_chunk_size or DEFAULT_CHUNK_SIZE
        layout = chunk_layout([len(cell.seeds) for cell in cells], chunk_size)
        completed = store.completed_ids() if store is not None else set()
        pending = [chunk for chunk in layout if chunk.id not in completed]
        resumed_chunks = len(layout) - len(pending)
        resumed_tasks = sum(chunk.count for chunk in layout
                            if chunk.id in completed)
        if max_chunks is not None:
            pending = pending[:max_chunks]
        params = [{key: param_token(value)
                   for key, value in cell.params.items()} for cell in cells]
        sink = _ChunkSink(
            pending, cells=cells, params=params, store=store,
            progress=progress, chunk_size=chunk_size,
            total_chunks=len(layout),
            total_tasks=sum(chunk.count for chunk in layout),
            resumed_chunks=resumed_chunks, resumed_tasks=resumed_tasks,
        )
        tasks = [
            ExecutionTask(compiled[chunk.cell], seed)
            for chunk in pending
            for seed in cells[chunk.cell].seeds[chunk.start:chunk.start
                                                + chunk.count]
        ]
        sink.start()
        try:
            if tasks:
                if _backend_supports_sink(self.backend):
                    self.backend.execute(tasks, sink=sink)
                else:
                    # Custom backends predating streaming: run the whole
                    # batch, then route it through the sink in one pass
                    # (results are durable only once the batch finishes).
                    sink(0, self.backend.execute(tasks))
        finally:
            if store is not None:
                # The writer lock is held from begin(); reads below (and
                # other processes) need the store, not the lock.
                store.release()
        records: List[RunRecord] = []
        for chunk in layout:
            chunk_records = sink.records.get(chunk.id)
            if (chunk_records is None and store is not None
                    and chunk.id in completed):
                chunk_records = store.read_chunk(chunk)
            if chunk_records is not None:
                records.extend(chunk_records)
        return ResultSet(records, metadata=self.describe())

    def run_cell(self, benchmark: str, design: Union[str, DesignSpec],
                 system: Optional[SystemConfig] = None,
                 seeds: Optional[Sequence[int]] = None):
        """All repetitions of one ad-hoc cell, as raw execution results."""
        compiled = self.compiler_for(system).compile(benchmark, design)
        tasks = [ExecutionTask(compiled, seed)
                 for seed in (seeds if seeds is not None else self.seeds())]
        return self.backend.execute(tasks)

    # ------------------------------------------------------------------
    # description / persistence
    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, Any]:
        """JSON-friendly study description (stored as result metadata).

        Registered design names stay plain strings; explicit
        :class:`DesignSpec` values (e.g. ablation overrides) are serialised
        in full so :meth:`from_spec` re-runs the override, not the base
        design of the same name.
        """
        designs = self._designs
        if designs is None:
            design_entries: Optional[List[Any]] = None
        else:
            values = ([designs] if isinstance(designs, (str, DesignSpec))
                      else list(designs))
            design_entries = [
                jsonify(v) if isinstance(v, DesignSpec) else str(v)
                for v in values
            ]
        return {
            "name": self.name,
            "benchmarks": list(self._benchmarks),
            "designs": design_entries,
            "axes": [axis.to_spec() for axis in
                     (Axis(a.fields, jsonify(a.values))
                      for a in self._custom_axes)],
            "num_runs": self.num_runs,
            "base_seed": self.base_seed,
            "partition_method": self.partition_method,
            "partition_seed": self.partition_seed,
            "system": jsonify(self.system),
        }

    def to_spec(self) -> Dict[str, Any]:
        """Alias of :meth:`describe` (the CLI spec-file format)."""
        return self.describe()

    @classmethod
    def from_spec(cls, spec: Mapping[str, Any],
                  backend: BackendLike = None,
                  cache: Optional[ArtifactCache] = None,
                  cache_dir: Union[None, str, Path] = None) -> "Study":
        """Build a study from a :meth:`to_spec` / CLI JSON dictionary.

        Only JSON-native axis values (numbers, strings, zipped lists) are
        supported here; programmatic studies may additionally sweep
        :class:`DesignSpec` / :class:`AdaptivePolicy` objects directly.

        Every validation failure raises
        :class:`~repro.exceptions.SpecValidationError` — a
        :class:`ConfigurationError` whose ``field`` / ``allowed`` payload
        names the offending spec location machine-readably, so the CLI and
        the service API surface the same structured diagnosis.
        """
        known = {"name", "benchmarks", "designs", "axes", "num_runs",
                 "base_seed", "partition_method", "partition_seed", "system"}
        unknown = set(spec) - known
        if unknown:
            raise SpecValidationError(
                f"unknown study spec keys: {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(known))}",
                field=sorted(unknown)[0], allowed=sorted(known),
            )
        if not isinstance(spec.get("system") or {}, Mapping):
            raise SpecValidationError(
                f"'system' must be a mapping of SystemConfig fields, "
                f"got {spec['system']!r}", field="system",
            )
        system_spec = dict(spec.get("system") or {})
        gate_times = system_spec.pop("gate_times", None)
        fidelities = system_spec.pop("fidelities", None)
        unknown_fields = set(system_spec) - set(_SYSTEM_FIELDS)
        if unknown_fields:
            raise SpecValidationError(
                f"unknown system fields in spec: "
                f"{', '.join(sorted(unknown_fields))}",
                field=f"system.{sorted(unknown_fields)[0]}",
                allowed=sorted(_SYSTEM_FIELDS),
            )
        try:
            system = SystemConfig(
                **system_spec,
                **({"gate_times": GateTimes(**gate_times)}
                   if gate_times else {}),
                **({"fidelities": GateFidelities(**fidelities)}
                   if fidelities else {}),
            )
        except (ConfigurationError, TypeError, ValueError) as error:
            raise SpecValidationError(
                f"invalid system configuration in spec: {error}",
                field="system",
            ) from None
        try:
            axes = [
                cls._revive_axis(axis if isinstance(axis, Axis)
                                 else Axis.from_spec(axis))
                for axis in spec.get("axes", [])
            ]
        except SpecValidationError:
            raise
        except (ConfigurationError, TypeError) as error:
            raise SpecValidationError(
                f"invalid axis entry in spec: {error}", field="axes",
            ) from None
        designs = spec.get("designs")
        if designs is not None:
            if isinstance(designs, (str, Mapping)):
                designs = [designs]
            try:
                designs = [cls._design_from_entry(entry)
                           for entry in designs]
            except SpecValidationError:
                raise
            except (ConfigurationError, TypeError) as error:
                raise SpecValidationError(
                    f"invalid design entry in spec: {error}",
                    field="designs", allowed=list(list_designs()),
                ) from None
        cls._validate_registry_names(spec.get("benchmarks"), designs, axes)
        # Zipped axis values arrive from JSON as lists; Axis normalises them.
        try:
            return cls(
                benchmarks=spec.get("benchmarks"),
                designs=designs,
                axes=axes,
                num_runs=int(spec.get("num_runs", 1)),
                base_seed=int(spec.get("base_seed", 1)),
                system=system,
                partition_method=spec.get("partition_method"),
                partition_seed=int(spec.get("partition_seed", 0)),
                backend=backend,
                cache=cache,
                cache_dir=cache_dir,
                name=spec.get("name"),
            )
        except SpecValidationError:
            raise
        except ConfigurationError as error:
            # Constructor-level validation (axis fields, benchmark/design
            # arguments, registry names) — classify the failing spec field
            # from the message's subject so API consumers can highlight it.
            raise SpecValidationError(
                str(error), field=cls._spec_field_of(error),
            ) from None
        except (TypeError, ValueError) as error:
            raise SpecValidationError(
                f"malformed study spec: {error}"
            ) from None

    @staticmethod
    def _validate_registry_names(benchmarks, designs, axes) -> None:
        """Reject unknown benchmark / design *names* at spec-load time.

        Execution resolves names lazily (late registration is a feature
        for programmatic studies), but a spec is data from outside the
        process: a typo should be a structured diagnosis at submission,
        not a failed job after the queue drains.
        """
        from repro.benchmarks.registry import get_benchmark, list_benchmarks
        from repro.runtime.designs import get_design

        def axis_strings(field: str) -> List[str]:
            found: List[str] = []
            for axis in axes:
                if field not in axis.fields:
                    continue
                position = axis.fields.index(field)
                for value in axis.values:
                    item = value[position] if len(axis.fields) > 1 else value
                    if isinstance(item, str):
                        found.append(item)
            return found

        names = [benchmarks] if isinstance(benchmarks, str) else [
            entry for entry in (benchmarks or []) if isinstance(entry, str)]
        for name in names + axis_strings("benchmark"):
            try:
                get_benchmark(name)
            except BenchmarkError as error:
                raise SpecValidationError(
                    str(error), field="benchmarks",
                    allowed=list_benchmarks() + ["TLIM-<n>", "QAOA-r<d>-<n>",
                                                 "QFT-<n>"],
                ) from None
        entries = ([designs] if isinstance(designs, (str, DesignSpec))
                   else list(designs or []))
        for entry in (e for e in entries if isinstance(e, str)):
            try:
                get_design(entry)
            except ConfigurationError as error:
                raise SpecValidationError(
                    str(error), field="designs", allowed=list(list_designs()),
                ) from None
        for name in axis_strings("design"):
            try:
                get_design(name)
            except ConfigurationError as error:
                raise SpecValidationError(
                    str(error), field="designs", allowed=list(list_designs()),
                ) from None

    @staticmethod
    def _spec_field_of(error: ConfigurationError) -> Optional[str]:
        """Best-effort spec field named by a constructor validation error."""
        message = str(error)
        for token, field in (
            ("benchmark", "benchmarks"),
            ("design", "designs"),
            ("axis", "axes"),
            ("seed", "axes"),
            ("run", "num_runs"),
            ("partition_method", "partition_method"),
            ("topology", "system.topology"),
        ):
            if token in message:
                return field
        return None

    @staticmethod
    def _revive_axis(axis: Axis) -> Axis:
        """Rebuild rich axis values that describe() serialised to dicts.

        An ``adaptive_policy`` axis (possibly zipped with other fields)
        round-trips through its field dict; leaving the dicts in place
        would crash deep inside execution, so they are revived here (and
        anything unexpected fails Study validation at load time).
        """
        if "adaptive_policy" not in axis.fields:
            return axis
        position = axis.fields.index("adaptive_policy")

        def revive(item):
            return AdaptivePolicy(**item) if isinstance(item, Mapping) else item

        try:
            if len(axis.fields) == 1:
                values = [revive(value) for value in axis.values]
            else:
                values = [
                    tuple(revive(item) if index == position else item
                          for index, item in enumerate(value))
                    for value in axis.values
                ]
        except TypeError as error:
            raise SpecValidationError(
                f"invalid adaptive_policy axis value in spec: {error}",
                field="axes",
            ) from None
        return Axis(axis.fields, values)

    @staticmethod
    def _design_from_entry(entry: Union[str, Mapping[str, Any]]
                           ) -> Union[str, DesignSpec]:
        """Rebuild one spec-file design entry (name or serialised spec)."""
        if isinstance(entry, str):
            return entry
        from repro.entanglement.attempts import AttemptPolicy

        fields = dict(entry)
        policy = fields.get("attempt_policy")
        if isinstance(policy, str):
            try:
                fields["attempt_policy"] = AttemptPolicy[policy]
            except KeyError:
                raise SpecValidationError(
                    f"unknown attempt_policy {policy!r} in design entry",
                    field="designs",
                    allowed=[p.name for p in AttemptPolicy],
                ) from None
        try:
            return DesignSpec(**fields)
        except TypeError as error:
            raise SpecValidationError(
                f"invalid design entry in spec: {error}", field="designs",
            ) from None

    @classmethod
    def from_experiment_config(cls, config, backend: BackendLike = None,
                               cache: Optional[ArtifactCache] = None) -> "Study":
        """Build a study from a legacy :class:`ExperimentConfig`."""
        return cls(
            benchmarks=list(config.benchmarks),
            designs=list(config.designs),
            num_runs=config.num_runs,
            base_seed=config.base_seed,
            system=config.system,
            partition_seed=config.partition_seed,
            backend=backend,
            cache=cache,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the backend if this study created it."""
        if self._backend is not None and self._owns_backend:
            self._backend.close()
            self._backend = None

    def __enter__(self) -> "Study":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"Study(benchmarks={self._benchmarks}, "
                f"axes={[tuple(a.fields) for a in self._custom_axes]}, "
                f"num_runs={self.num_runs})")


def _backend_supports_sink(backend: ExecutionBackend) -> bool:
    """Whether the backend's ``execute`` accepts the streaming ``sink``."""
    try:
        return "sink" in inspect.signature(backend.execute).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return False


class _ChunkSink:
    """Routes streamed backend results into durable store chunks.

    The backend delivers ``(start, batch)`` pieces in completion order and
    at *its* granularity; this sink reassembles them against the pending
    store chunks (whose tasks were submitted consecutively), and the moment
    every result of a chunk has arrived it builds the chunk's records,
    commits them to the store, and fires a progress event.  The sink's
    ``chunk_size`` attribute doubles as the granularity hint backends use
    to align their internal chunking with the durable boundaries.
    """

    def __init__(self, pending: Sequence[StoreChunk], *,
                 cells: Sequence[PlanCell],
                 params: Sequence[Dict[str, Any]],
                 store: Optional[RunStore],
                 progress: Optional[ProgressCallback],
                 chunk_size: int, total_chunks: int, total_tasks: int,
                 resumed_chunks: int, resumed_tasks: int) -> None:
        self.chunk_size = chunk_size
        self.records: Dict[str, List[RunRecord]] = {}
        self._pending = list(pending)
        self._cells = cells
        self._params = params
        self._store = store
        self._progress = progress
        self._total_chunks = total_chunks
        self._total_tasks = total_tasks
        self._resumed_chunks = resumed_chunks
        self._resumed_tasks = resumed_tasks
        self._offsets: List[int] = []
        offset = 0
        for chunk in self._pending:
            self._offsets.append(offset)
            offset += chunk.count
        self._results: List[Optional[ExecutionResult]] = [None] * offset
        self._remaining = [chunk.count for chunk in self._pending]
        self._flushed_chunks = 0
        self._flushed_tasks = 0
        self._started = time.monotonic()

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Reset the clock and report the resume point before execution."""
        self._started = time.monotonic()
        self._emit()

    def __call__(self, start: int, batch: Sequence[ExecutionResult]) -> None:
        end = start + len(batch)
        self._results[start:end] = batch
        index = self._chunk_at(start)
        while (index < len(self._pending)
               and self._offsets[index] < end):
            chunk_start = self._offsets[index]
            chunk_end = chunk_start + self._pending[index].count
            overlap = min(end, chunk_end) - max(start, chunk_start)
            if overlap > 0:
                self._remaining[index] -= overlap
                if self._remaining[index] == 0:
                    self._flush(index)
            index += 1

    # ------------------------------------------------------------------
    def _chunk_at(self, position: int) -> int:
        """Index of the pending chunk covering task ``position``."""
        low, high = 0, len(self._offsets) - 1
        while low < high:
            mid = (low + high + 1) // 2
            if self._offsets[mid] <= position:
                low = mid
            else:
                high = mid - 1
        return low

    def _flush(self, index: int) -> None:
        chunk = self._pending[index]
        start = self._offsets[index]
        results = self._results[start:start + chunk.count]
        records = [
            RunRecord.from_execution_result(result, self._params[chunk.cell])
            for result in results
        ]
        # The raw results are never read again once flattened to records;
        # dropping them halves the sink's peak memory on long sweeps.
        self._results[start:start + chunk.count] = [None] * chunk.count
        if self._store is not None:
            self._store.append_chunk(chunk, records)
        self.records[chunk.id] = records
        self._flushed_chunks += 1
        self._flushed_tasks += chunk.count
        self._emit()

    def _emit(self) -> None:
        if self._progress is None:
            return
        self._progress(ProgressEvent(
            done_chunks=self._resumed_chunks + self._flushed_chunks,
            total_chunks=self._total_chunks,
            done_tasks=self._resumed_tasks + self._flushed_tasks,
            total_tasks=self._total_tasks,
            resumed_chunks=self._resumed_chunks,
            resumed_tasks=self._resumed_tasks,
            elapsed=time.monotonic() - self._started,
        ))
