"""Flat, serialisable study results.

Every simulated run of a study becomes one :class:`RunRecord` — a flat
(benchmark, design, seed, swept-parameters, metrics) row — and a whole study
one :class:`ResultSet`.  The flat shape replaces the nested
``Dict[str, BenchmarkComparison]`` / ``Dict[int, BenchmarkComparison]``
returns of the legacy helpers: any grouping can be recovered with
:meth:`ResultSet.group_by` / :meth:`ResultSet.aggregate`, the legacy shapes
with :meth:`ResultSet.to_comparisons`, and the whole set round-trips through
JSON (:meth:`to_json` / :meth:`from_json`) so grids can be re-analysed
without re-simulation.

Aggregation formulas mirror
:meth:`~repro.core.results.DesignSummary.from_results` exactly (``summarize``
for depth / fidelity, arithmetic means for the rest, in seed order), so
comparisons rebuilt from records are bit-identical to ones aggregated
directly from :class:`~repro.runtime.metrics.ExecutionResult` lists.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field, fields as dataclass_fields
from pathlib import Path
from typing import (
    Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple,
    Union,
)

from repro.analysis.statistics import SampleStatistics, summarize
from repro.core.results import BenchmarkComparison, DesignSummary
from repro.exceptions import ConfigurationError
from repro.runtime.metrics import ExecutionResult

__all__ = ["RunRecord", "ResultSet", "aggregate_stream"]

#: Metric columns of a record, in stable serialisation order.
METRIC_FIELDS: Tuple[str, ...] = (
    "depth", "fidelity", "num_remote", "mean_remote_wait",
    "mean_link_fidelity", "epr_generated", "epr_wasted",
)

#: Identity columns of a record, in stable serialisation order.
KEY_FIELDS: Tuple[str, ...] = ("benchmark", "design", "seed")


@dataclass(frozen=True)
class RunRecord:
    """One simulated run: identity, swept parameters, and flat metrics.

    ``params`` holds the coordinates of the run on every non-reserved study
    axis (e.g. ``{"comm_qubits_per_node": 15}``), already reduced to
    JSON-compatible values so records compare equal across a
    serialisation round-trip.
    """

    benchmark: str
    design: str
    seed: int
    depth: float
    fidelity: float
    num_remote: int
    mean_remote_wait: float
    mean_link_fidelity: float
    epr_generated: float
    epr_wasted: float
    params: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_execution_result(cls, result: ExecutionResult,
                              params: Optional[Mapping[str, Any]] = None
                              ) -> "RunRecord":
        """Flatten one :class:`ExecutionResult` into a record."""
        return cls(
            benchmark=result.benchmark,
            design=result.design,
            seed=result.seed,
            depth=result.makespan,
            fidelity=result.fidelity,
            num_remote=result.num_remote,
            mean_remote_wait=result.mean_remote_wait(),
            mean_link_fidelity=result.mean_link_fidelity(),
            epr_generated=result.epr_statistics.get("generated", 0),
            epr_wasted=result.epr_statistics.get("wasted", 0),
            params=dict(params or {}),
        )

    # ------------------------------------------------------------------
    def get(self, key: str) -> Any:
        """Value of a column: a record field or a swept parameter."""
        if key in KEY_FIELDS or key in METRIC_FIELDS:
            return getattr(self, key)
        if key in self.params:
            return self.params[key]
        raise KeyError(
            f"record has no column {key!r}; known: "
            f"{', '.join((*KEY_FIELDS, *sorted(self.params), *METRIC_FIELDS))}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """Nested JSON-friendly form (params kept as a sub-mapping)."""
        row = {name: getattr(self, name) for name in KEY_FIELDS}
        row["params"] = dict(self.params)
        row.update({name: getattr(self, name) for name in METRIC_FIELDS})
        return row

    @classmethod
    def from_dict(cls, row: Mapping[str, Any]) -> "RunRecord":
        """Rebuild a record from its :meth:`to_dict` form."""
        known = {f.name for f in dataclass_fields(cls)}
        missing = (known - {"params"}) - set(row)
        if missing:
            raise ConfigurationError(
                f"record row is missing columns: {', '.join(sorted(missing))}"
            )
        return cls(**{key: row[key] for key in known if key in row})


GroupKey = Union[Any, Tuple[Any, ...]]


class ResultSet:
    """Ordered collection of :class:`RunRecord` with analysis helpers.

    Records keep the execution order of the study grid (axes slowest-first,
    seeds innermost), which downstream aggregation relies on for
    deterministic floating-point sums.
    """

    SCHEMA_VERSION = 1

    def __init__(self, records: Sequence[RunRecord],
                 metadata: Optional[Mapping[str, Any]] = None) -> None:
        self.records: List[RunRecord] = list(records)
        self.metadata: Dict[str, Any] = dict(metadata or {})

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[RunRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> RunRecord:
        return self.records[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResultSet):
            return NotImplemented
        return (self.records == other.records
                and self.metadata == other.metadata)

    def __repr__(self) -> str:
        return (f"ResultSet({len(self.records)} records, "
                f"benchmarks={self.benchmarks()}, designs={self.designs()})")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def benchmarks(self) -> List[str]:
        """Distinct benchmark names, in first-seen order."""
        return list(dict.fromkeys(r.benchmark for r in self.records))

    def designs(self) -> List[str]:
        """Distinct design names, in first-seen order."""
        return list(dict.fromkeys(r.design for r in self.records))

    def param_keys(self) -> List[str]:
        """Sorted union of swept-parameter names across all records."""
        keys = set()
        for record in self.records:
            keys.update(record.params)
        return sorted(keys)

    def values(self, key: str) -> List[Any]:
        """Column values of every record, in record order."""
        return [record.get(key) for record in self.records]

    # ------------------------------------------------------------------
    # relational helpers
    # ------------------------------------------------------------------
    def filter(self, predicate: Optional[Callable[[RunRecord], bool]] = None,
               **equalities: Any) -> "ResultSet":
        """Records matching a predicate and/or column equalities.

        >>> rs.filter(design="adapt_buf", comm_qubits_per_node=15)  # doctest: +SKIP
        """
        def matches(record: RunRecord) -> bool:
            if predicate is not None and not predicate(record):
                return False
            return all(record.get(key) == value
                       for key, value in equalities.items())

        return ResultSet([r for r in self.records if matches(r)],
                         metadata=self.metadata)

    def group_by(self, *keys: str) -> Dict[GroupKey, "ResultSet"]:
        """Partition records by one or more columns, preserving order.

        A single key yields scalar group keys; several yield tuples.
        """
        if not keys:
            raise ConfigurationError("group_by needs at least one column")
        groups: Dict[GroupKey, List[RunRecord]] = {}
        for record in self.records:
            values = tuple(record.get(key) for key in keys)
            group = values[0] if len(keys) == 1 else values
            groups.setdefault(group, []).append(record)
        return {group: ResultSet(records, metadata=self.metadata)
                for group, records in groups.items()}

    def aggregate(self, metric: str, by: Union[str, Sequence[str]] = ()
                  ) -> Dict[GroupKey, SampleStatistics]:
        """Summary statistics of one metric per group.

        ``by`` is one column name or a sequence of them; with no ``by``
        columns the whole set is one group keyed ``()``.
        """
        if isinstance(by, str):
            by = [by]
        if not by:
            return {(): summarize(self.values(metric))}
        return {
            group: summarize(subset.values(metric))
            for group, subset in self.group_by(*by).items()
        }

    # ------------------------------------------------------------------
    # legacy shape
    # ------------------------------------------------------------------
    def _summary(self, records: Sequence[RunRecord]) -> DesignSummary:
        # Mirrors DesignSummary.from_results term for term so the rebuilt
        # aggregate is bit-identical to one computed from ExecutionResults.
        first = records[0]
        return DesignSummary(
            design=first.design,
            benchmark=first.benchmark,
            depth=summarize([r.depth for r in records]),
            fidelity=summarize([r.fidelity for r in records]),
            mean_remote_wait=sum(r.mean_remote_wait for r in records)
            / len(records),
            mean_link_fidelity=sum(r.mean_link_fidelity for r in records)
            / len(records),
            epr_generated=sum(r.epr_generated for r in records) / len(records),
            epr_wasted=sum(r.epr_wasted for r in records) / len(records),
            num_runs=len(records),
        )

    def _comparison(self, records: Sequence[RunRecord]) -> BenchmarkComparison:
        benchmarks = list(dict.fromkeys(r.benchmark for r in records))
        if len(benchmarks) != 1:
            raise ConfigurationError(
                f"comparison group spans several benchmarks: {benchmarks}; "
                f"group by 'benchmark' first or filter the set"
            )
        variants = {tuple(sorted(r.params.items())) for r in records}
        if len(variants) > 1:
            varied = sorted({key for variant in variants for key, _ in variant})
            raise ConfigurationError(
                f"comparison group mixes several swept-parameter variants "
                f"({', '.join(varied)}); averaging across system variants "
                f"would be meaningless — use to_comparisons(by=...), "
                f"group_by, or filter to isolate one variant per group"
            )
        comparison = BenchmarkComparison(benchmark=benchmarks[0])
        by_design: Dict[str, List[RunRecord]] = {}
        for record in records:
            by_design.setdefault(record.design, []).append(record)
        for design_records in by_design.values():
            comparison.add(self._summary(design_records))
        return comparison

    def to_comparisons(self, by: Optional[str] = None
                       ) -> Dict[Any, BenchmarkComparison]:
        """Rebuild the legacy nested comparison shapes.

        ``by=None`` groups by benchmark (the ``run_design_comparison``
        shape); ``by="<param>"`` groups by a swept parameter with one
        benchmark per group (the ``run_comm_qubit_sweep`` shape).
        """
        if not self.records:
            return {}
        key = by if by is not None else "benchmark"
        return {
            group: self._comparison(subset.records)
            for group, subset in self.group_by(key).items()
        }

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_records(self) -> List[Dict[str, Any]]:
        """Fully flat rows: params merged into the columns.

        Column order is stable: identity, sorted params, metrics.
        """
        params = self.param_keys()
        rows = []
        for record in self.records:
            row = {name: getattr(record, name) for name in KEY_FIELDS}
            for key in params:
                row[key] = record.params.get(key)
            row.update({name: getattr(record, name) for name in METRIC_FIELDS})
            rows.append(row)
        return rows

    def to_json(self, path: Optional[Union[str, Path]] = None,
                indent: Optional[int] = 2) -> str:
        """Serialise to JSON text, optionally also writing ``path``."""
        payload = {
            "schema": self.SCHEMA_VERSION,
            "metadata": self.metadata,
            "records": [record.to_dict() for record in self.records],
        }
        text = json.dumps(payload, indent=indent) + "\n"
        if path is not None:
            Path(path).write_text(text)
        return text

    @classmethod
    def from_json(cls, source: Union[str, Mapping[str, Any]]) -> "ResultSet":
        """Rebuild a set from :meth:`to_json` output (text or parsed dict)."""
        payload = json.loads(source) if isinstance(source, str) else dict(source)
        if not isinstance(payload, dict) or "records" not in payload:
            raise ConfigurationError("not a serialised ResultSet (no 'records')")
        schema = payload.get("schema", cls.SCHEMA_VERSION)
        if schema != cls.SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported ResultSet schema {schema!r} "
                f"(supported: {cls.SCHEMA_VERSION})"
            )
        records = [RunRecord.from_dict(row) for row in payload["records"]]
        return cls(records, metadata=payload.get("metadata", {}))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ResultSet":
        """Read a set previously written with ``to_json(path)``."""
        return cls.from_json(Path(path).read_text())

    @classmethod
    def from_store(cls, source: Union[str, Path, Any],
                   allow_partial: bool = False) -> "ResultSet":
        """Load a set from a durable :class:`~repro.study.store.RunStore`.

        ``source`` is a store directory (or an open store).  Records are
        streamed shard by shard in plan order, so the result — including
        its ``to_json`` text — is byte-identical to what ``Study.run``
        returned for the same plan.  An incomplete store raises
        :class:`~repro.exceptions.StoreError` unless ``allow_partial``;
        for aggregation that never materialises the records at all, feed
        ``RunStore.iter_records()`` to :func:`aggregate_stream` instead.
        """
        from repro.study.store import RunStore

        store = source if isinstance(source, RunStore) else RunStore.load(source)
        return store.load_results(allow_partial=allow_partial)

    def to_csv(self, path: Optional[Union[str, Path]] = None) -> str:
        """Serialise to CSV with the stable :meth:`to_records` columns."""
        columns = [*KEY_FIELDS, *self.param_keys(), *METRIC_FIELDS]
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=columns,
                                lineterminator="\n")
        writer.writeheader()
        for row in self.to_records():
            writer.writerow({
                key: json.dumps(value) if isinstance(value, (dict, list))
                else value
                for key, value in row.items()
            })
        text = buffer.getvalue()
        if path is not None:
            Path(path).write_text(text)
        return text


def aggregate_stream(records: Iterator[RunRecord], metric: str,
                     by: Union[str, Sequence[str]] = ()
                     ) -> Dict[GroupKey, SampleStatistics]:
    """Incremental :meth:`ResultSet.aggregate` over a record *stream*.

    Consumes any iterable of records — typically
    ``RunStore.iter_records()``, which reads one shard chunk at a time —
    while holding only the grouped metric values (floats), never the
    records themselves, so a million-run store aggregates in bounded
    memory.  Group keys, value order, and therefore the statistics are
    identical to materialising the set and calling ``aggregate``.
    """
    if isinstance(by, str):
        by = [by]
    by = list(by)
    groups: Dict[GroupKey, List[float]] = {}
    for record in records:
        if not by:
            group: GroupKey = ()
        else:
            values = tuple(record.get(key) for key in by)
            group = values[0] if len(by) == 1 else values
        groups.setdefault(group, []).append(record.get(metric))
    if not groups and not by:
        # Match ResultSet.aggregate on an empty set, which lets summarize
        # raise its explicit empty-sample error instead of returning {}.
        return {(): summarize([])}
    return {group: summarize(values) for group, values in groups.items()}
