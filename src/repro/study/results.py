"""Flat, serialisable study results, backed by columnar numpy arrays.

Every simulated run of a study becomes one :class:`RunRecord` — a flat
(benchmark, design, seed, swept-parameters, metrics) row — and a whole study
one :class:`ResultSet`.  The flat shape replaces the nested
``Dict[str, BenchmarkComparison]`` / ``Dict[int, BenchmarkComparison]``
returns of the legacy helpers: any grouping can be recovered with
:meth:`ResultSet.group_by` / :meth:`ResultSet.aggregate`, the legacy shapes
with :meth:`ResultSet.to_comparisons`, and the whole set round-trips through
JSON (:meth:`to_json` / :meth:`from_json`) so grids can be re-analysed
without re-simulation.

Internally a :class:`ResultSet` holds one numpy array per column — float64 /
int64 for uniformly-typed metric columns, object arrays for string axes and
mixed columns — plus an object array of per-record parameter mappings.
:class:`RunRecord` views are materialised lazily (and cached), so both the
record-level API and the columnar fast paths (``values`` / ``filter`` /
``group_by`` / ``aggregate`` / ``to_json`` / ``to_csv``) observe exactly the
same data.  Columnar aggregation feeds the *same* ``summarize`` reduction
(``math.fsum``) with the same values in the same order as the record path,
so every statistic — and every serialised byte — is identical to the
pre-columnar implementation.

Aggregation formulas mirror
:meth:`~repro.core.results.DesignSummary.from_results` exactly (``summarize``
for depth / fidelity, arithmetic means for the rest, in seed order), so
comparisons rebuilt from records are bit-identical to ones aggregated
directly from :class:`~repro.runtime.metrics.ExecutionResult` lists.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field, fields as dataclass_fields
from pathlib import Path
from typing import (
    Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional,
    Sequence, Tuple, Union,
)

import numpy as np

from repro.analysis.statistics import SampleStatistics, summarize
from repro.core.results import BenchmarkComparison, DesignSummary
from repro.exceptions import ConfigurationError, StoreError
from repro.runtime.metrics import ExecutionResult

__all__ = ["RunRecord", "ResultSet", "aggregate_stream"]

#: Metric columns of a record, in stable serialisation order.
METRIC_FIELDS: Tuple[str, ...] = (
    "depth", "fidelity", "num_remote", "mean_remote_wait",
    "mean_link_fidelity", "epr_generated", "epr_wasted",
)

#: Identity columns of a record, in stable serialisation order.
KEY_FIELDS: Tuple[str, ...] = ("benchmark", "design", "seed")

#: Every fixed (non-parameter) column, in serialisation order.
FIXED_FIELDS: Tuple[str, ...] = (*KEY_FIELDS, *METRIC_FIELDS)


@dataclass(frozen=True)
class RunRecord:
    """One simulated run: identity, swept parameters, and flat metrics.

    ``params`` holds the coordinates of the run on every non-reserved study
    axis (e.g. ``{"comm_qubits_per_node": 15}``), already reduced to
    JSON-compatible values so records compare equal across a
    serialisation round-trip.
    """

    benchmark: str
    design: str
    seed: int
    depth: float
    fidelity: float
    num_remote: int
    mean_remote_wait: float
    mean_link_fidelity: float
    epr_generated: float
    epr_wasted: float
    params: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_execution_result(cls, result: ExecutionResult,
                              params: Optional[Mapping[str, Any]] = None
                              ) -> "RunRecord":
        """Flatten one :class:`ExecutionResult` into a record."""
        return cls(
            benchmark=result.benchmark,
            design=result.design,
            seed=result.seed,
            depth=result.makespan,
            fidelity=result.fidelity,
            num_remote=result.num_remote,
            mean_remote_wait=result.mean_remote_wait(),
            mean_link_fidelity=result.mean_link_fidelity(),
            epr_generated=result.epr_statistics.get("generated", 0),
            epr_wasted=result.epr_statistics.get("wasted", 0),
            params=dict(params or {}),
        )

    # ------------------------------------------------------------------
    def get(self, key: str) -> Any:
        """Value of a column: a record field or a swept parameter."""
        if key in KEY_FIELDS or key in METRIC_FIELDS:
            return getattr(self, key)
        if key in self.params:
            return self.params[key]
        raise KeyError(_unknown_column_message(key, self.params))

    def to_dict(self) -> Dict[str, Any]:
        """Nested JSON-friendly form (params kept as a sub-mapping)."""
        row = {name: getattr(self, name) for name in KEY_FIELDS}
        row["params"] = dict(self.params)
        row.update({name: getattr(self, name) for name in METRIC_FIELDS})
        return row

    @classmethod
    def from_dict(cls, row: Mapping[str, Any]) -> "RunRecord":
        """Rebuild a record from its :meth:`to_dict` form."""
        known = {f.name for f in dataclass_fields(cls)}
        missing = (known - {"params"}) - set(row)
        if missing:
            raise ConfigurationError(
                f"record row is missing columns: {', '.join(sorted(missing))}"
            )
        return cls(**{key: row[key] for key in known if key in row})


def _unknown_column_message(key: str, params: Mapping[str, Any]) -> str:
    return (
        f"record has no column {key!r}; known: "
        f"{', '.join((*KEY_FIELDS, *sorted(params), *METRIC_FIELDS))}"
    )


def _pack_column(values: Sequence[Any]) -> np.ndarray:
    """Pick the tightest dtype that represents a column *exactly*.

    Uniform float columns become float64 and uniform int columns int64
    (both of which ``tolist`` back to the identical python values, so
    serialisation stays byte-exact); anything else — strings, bools,
    mixed int/float, None, out-of-range ints — stays an object array
    holding the original python objects untouched.
    """
    has_float = False
    has_int = False
    uniform = True
    for value in values:
        kind = type(value)
        if kind is float:
            has_float = True
        elif kind is int:
            has_int = True
        else:
            uniform = False
            break
    if uniform and values:
        if has_float and not has_int:
            return np.asarray(values, dtype=np.float64)
        if has_int and not has_float:
            try:
                return np.asarray(values, dtype=np.int64)
            except OverflowError:
                pass
    return _object_column(values)


def _object_column(values: Sequence[Any]) -> np.ndarray:
    column = np.empty(len(values), dtype=object)
    column[:] = list(values)
    return column


GroupKey = Union[Any, Tuple[Any, ...]]


class ResultSet:
    """Ordered collection of :class:`RunRecord` with analysis helpers.

    Records keep the execution order of the study grid (axes slowest-first,
    seeds innermost), which downstream aggregation relies on for
    deterministic floating-point sums.

    Storage is columnar: one numpy array per fixed column plus an object
    array of per-record parameter dicts.  The ``records`` list is a lazy
    view — sets loaded from binary stores or produced by ``filter`` /
    ``group_by`` never materialise python record objects until something
    actually touches ``records``.
    """

    SCHEMA_VERSION = 1

    def __init__(self, records: Sequence[RunRecord],
                 metadata: Optional[Mapping[str, Any]] = None) -> None:
        records = list(records)
        self.metadata: Dict[str, Any] = dict(metadata or {})
        self._records: Optional[List[RunRecord]] = records
        self._n = len(records)
        self._columns: Dict[str, np.ndarray] = {
            name: _pack_column([getattr(r, name) for r in records])
            for name in FIXED_FIELDS
        }
        self._params: np.ndarray = _object_column([r.params for r in records])

    @classmethod
    def _from_columns(cls, columns: Mapping[str, Sequence[Any]],
                      params: Sequence[Mapping[str, Any]],
                      metadata: Optional[Mapping[str, Any]] = None
                      ) -> "ResultSet":
        """Build a set straight from column value sequences (no records).

        ``columns`` must hold every fixed field; ``params`` is one mapping
        per record.  Used by the binary store loaders, which read columns
        off disk and never pay for record materialisation.
        """
        rs = cls.__new__(cls)
        rs.metadata = dict(metadata or {})
        rs._records = None
        rs._params = _object_column([dict(p) for p in params])
        rs._n = len(rs._params)
        rs._columns = {}
        for name in FIXED_FIELDS:
            if name not in columns:
                raise ConfigurationError(
                    f"columnar result set is missing column {name!r}"
                )
            column = columns[name]
            packed = (column if isinstance(column, np.ndarray)
                      else _pack_column(list(column)))
            if len(packed) != rs._n:
                raise ConfigurationError(
                    f"column {name!r} holds {len(packed)} values for "
                    f"{rs._n} records"
                )
            rs._columns[name] = packed
        return rs

    def _slice(self, indices: Sequence[int]) -> "ResultSet":
        idx = np.asarray(indices, dtype=np.intp)
        rs = ResultSet.__new__(ResultSet)
        rs.metadata = dict(self.metadata)
        rs._n = len(idx)
        rs._columns = {name: column[idx]
                       for name, column in self._columns.items()}
        rs._params = self._params[idx]
        if self._records is not None:
            rs._records = [self._records[i] for i in idx.tolist()]
        else:
            rs._records = None
        return rs

    # ------------------------------------------------------------------
    # lazy record views
    # ------------------------------------------------------------------
    @property
    def records(self) -> List[RunRecord]:
        """The records as python objects (materialised lazily, cached)."""
        if self._records is None:
            lists = {name: self._columns[name].tolist()
                     for name in FIXED_FIELDS}
            params = self._params
            self._records = [
                RunRecord(**{name: lists[name][i] for name in FIXED_FIELDS},
                          params=params[i])
                for i in range(self._n)
            ]
        return self._records

    def column(self, name: str) -> np.ndarray:
        """The backing numpy array of one fixed column (read it, don't
        mutate it — the set shares these arrays with its slices)."""
        if name not in self._columns:
            raise KeyError(_unknown_column_message(name, {}))
        return self._columns[name]

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[RunRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> RunRecord:
        return self.records[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResultSet):
            return NotImplemented
        return (self.records == other.records
                and self.metadata == other.metadata)

    def __repr__(self) -> str:
        return (f"ResultSet({self._n} records, "
                f"benchmarks={self.benchmarks()}, designs={self.designs()})")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def benchmarks(self) -> List[str]:
        """Distinct benchmark names, in first-seen order."""
        return list(dict.fromkeys(self._columns["benchmark"].tolist()))

    def designs(self) -> List[str]:
        """Distinct design names, in first-seen order."""
        return list(dict.fromkeys(self._columns["design"].tolist()))

    def param_keys(self) -> List[str]:
        """Sorted union of swept-parameter names across all records."""
        keys: set = set()
        for params in self._params.tolist():
            keys.update(params)
        return sorted(keys)

    def values(self, key: str) -> List[Any]:
        """Column values of every record, in record order."""
        if key in self._columns:
            return self._columns[key].tolist()
        return self._param_values(key)

    def _param_values(self, key: str,
                      indices: Optional[Iterable[int]] = None) -> List[Any]:
        params = self._params
        out = []
        for i in (range(self._n) if indices is None else indices):
            row = params[i]
            if key not in row:
                raise KeyError(_unknown_column_message(key, row))
            out.append(row[key])
        return out

    def _column_list(self, key: str) -> List[Any]:
        if key in self._columns:
            return self._columns[key].tolist()
        return self._param_values(key)

    # ------------------------------------------------------------------
    # relational helpers
    # ------------------------------------------------------------------
    def filter(self, predicate: Optional[Callable[[RunRecord], bool]] = None,
               **equalities: Any) -> "ResultSet":
        """Records matching a predicate and/or column equalities.

        >>> rs.filter(design="adapt_buf", comm_qubits_per_node=15)  # doctest: +SKIP
        """
        if predicate is not None:
            # A callable predicate needs record objects; evaluate exactly
            # like the pre-columnar implementation did.
            def matches(record: RunRecord) -> bool:
                if not predicate(record):
                    return False
                return all(record.get(key) == value
                           for key, value in equalities.items())

            return ResultSet([r for r in self.records if matches(r)],
                             metadata=self.metadata)
        mask = np.ones(self._n, dtype=bool)
        for key, value in equalities.items():
            if key in self._columns:
                eq = self._columns[key] == value
                if not isinstance(eq, np.ndarray):
                    eq = np.full(self._n, bool(eq))
                mask &= eq.astype(bool, copy=False)
            else:
                keep = np.zeros(self._n, dtype=bool)
                params = self._params
                for i in np.nonzero(mask)[0].tolist():
                    row = params[i]
                    if key not in row:
                        raise KeyError(_unknown_column_message(key, row))
                    keep[i] = row[key] == value
                mask = keep
        return self._slice(np.nonzero(mask)[0])

    def _group_indices(self, keys: Sequence[str]) -> Dict[GroupKey, List[int]]:
        if not keys:
            raise ConfigurationError("group_by needs at least one column")
        columns = [self._column_list(key) for key in keys]
        groups: Dict[GroupKey, List[int]] = {}
        if len(keys) == 1:
            only = columns[0]
            for i in range(self._n):
                groups.setdefault(only[i], []).append(i)
        else:
            for i in range(self._n):
                groups.setdefault(tuple(col[i] for col in columns),
                                  []).append(i)
        return groups

    def group_by(self, *keys: str) -> Dict[GroupKey, "ResultSet"]:
        """Partition records by one or more columns, preserving order.

        A single key yields scalar group keys; several yield tuples.
        """
        return {group: self._slice(indices)
                for group, indices in self._group_indices(keys).items()}

    def aggregate(self, metric: str, by: Union[str, Sequence[str]] = ()
                  ) -> Dict[GroupKey, SampleStatistics]:
        """Summary statistics of one metric per group.

        ``by`` is one column name or a sequence of them; with no ``by``
        columns the whole set is one group keyed ``()``.  Group keys,
        value order, and therefore every statistic are identical to the
        record-by-record evaluation — the metric values are sliced out of
        the backing column and fed to the same ``summarize`` reduction.
        """
        if isinstance(by, str):
            by = [by]
        if not by:
            return {(): summarize(self.values(metric))}
        groups = self._group_indices(list(by))
        column = self._columns.get(metric)
        if column is not None:
            return {
                group: summarize(
                    column[np.asarray(indices, dtype=np.intp)].tolist())
                for group, indices in groups.items()
            }
        return {
            group: summarize(self._param_values(metric, indices))
            for group, indices in groups.items()
        }

    # ------------------------------------------------------------------
    # legacy shape
    # ------------------------------------------------------------------
    def _summary(self, records: Sequence[RunRecord]) -> DesignSummary:
        # Mirrors DesignSummary.from_results term for term so the rebuilt
        # aggregate is bit-identical to one computed from ExecutionResults.
        first = records[0]
        return DesignSummary(
            design=first.design,
            benchmark=first.benchmark,
            depth=summarize([r.depth for r in records]),
            fidelity=summarize([r.fidelity for r in records]),
            mean_remote_wait=sum(r.mean_remote_wait for r in records)
            / len(records),
            mean_link_fidelity=sum(r.mean_link_fidelity for r in records)
            / len(records),
            epr_generated=sum(r.epr_generated for r in records) / len(records),
            epr_wasted=sum(r.epr_wasted for r in records) / len(records),
            num_runs=len(records),
        )

    def _comparison(self, records: Sequence[RunRecord]) -> BenchmarkComparison:
        benchmarks = list(dict.fromkeys(r.benchmark for r in records))
        if len(benchmarks) != 1:
            raise ConfigurationError(
                f"comparison group spans several benchmarks: {benchmarks}; "
                f"group by 'benchmark' first or filter the set"
            )
        variants = {tuple(sorted(r.params.items())) for r in records}
        if len(variants) > 1:
            varied = sorted({key for variant in variants for key, _ in variant})
            raise ConfigurationError(
                f"comparison group mixes several swept-parameter variants "
                f"({', '.join(varied)}); averaging across system variants "
                f"would be meaningless — use to_comparisons(by=...), "
                f"group_by, or filter to isolate one variant per group"
            )
        comparison = BenchmarkComparison(benchmark=benchmarks[0])
        by_design: Dict[str, List[RunRecord]] = {}
        for record in records:
            by_design.setdefault(record.design, []).append(record)
        for design_records in by_design.values():
            comparison.add(self._summary(design_records))
        return comparison

    def to_comparisons(self, by: Optional[str] = None
                       ) -> Dict[Any, BenchmarkComparison]:
        """Rebuild the legacy nested comparison shapes.

        ``by=None`` groups by benchmark (the ``run_design_comparison``
        shape); ``by="<param>"`` groups by a swept parameter with one
        benchmark per group (the ``run_comm_qubit_sweep`` shape).
        """
        if not self._n:
            return {}
        key = by if by is not None else "benchmark"
        return {
            group: self._comparison(subset.records)
            for group, subset in self.group_by(key).items()
        }

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def _row_dicts(self) -> List[Dict[str, Any]]:
        """One :meth:`RunRecord.to_dict`-shaped dict per record, built
        straight from the columns (no record materialisation)."""
        lists = {name: self._columns[name].tolist() for name in FIXED_FIELDS}
        params = self._params
        rows = []
        for i in range(self._n):
            row = {name: lists[name][i] for name in KEY_FIELDS}
            row["params"] = dict(params[i])
            for name in METRIC_FIELDS:
                row[name] = lists[name][i]
            rows.append(row)
        return rows

    def to_records(self) -> List[Dict[str, Any]]:
        """Fully flat rows: params merged into the columns.

        Column order is stable: identity, sorted params, metrics.
        """
        param_keys = self.param_keys()
        lists = {name: self._columns[name].tolist() for name in FIXED_FIELDS}
        params = self._params
        rows = []
        for i in range(self._n):
            row = {name: lists[name][i] for name in KEY_FIELDS}
            row_params = params[i]
            for key in param_keys:
                row[key] = row_params.get(key)
            for name in METRIC_FIELDS:
                row[name] = lists[name][i]
            rows.append(row)
        return rows

    def to_json(self, path: Optional[Union[str, Path]] = None,
                indent: Optional[int] = 2) -> str:
        """Serialise to JSON text, optionally also writing ``path``."""
        payload = {
            "schema": self.SCHEMA_VERSION,
            "metadata": self.metadata,
            "records": self._row_dicts(),
        }
        text = json.dumps(payload, indent=indent) + "\n"
        if path is not None:
            Path(path).write_text(text)
        return text

    @classmethod
    def from_json(cls, source: Union[str, Mapping[str, Any]]) -> "ResultSet":
        """Rebuild a set from :meth:`to_json` output (text or parsed dict)."""
        payload = json.loads(source) if isinstance(source, str) else dict(source)
        if not isinstance(payload, dict) or "records" not in payload:
            raise ConfigurationError("not a serialised ResultSet (no 'records')")
        schema = payload.get("schema", cls.SCHEMA_VERSION)
        if schema != cls.SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported ResultSet schema {schema!r} "
                f"(supported: {cls.SCHEMA_VERSION})"
            )
        records = [RunRecord.from_dict(row) for row in payload["records"]]
        return cls(records, metadata=payload.get("metadata", {}))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ResultSet":
        """Read a set previously written with ``to_json(path)``."""
        return cls.from_json(Path(path).read_text())

    @classmethod
    def from_store(cls, source: Union[str, Path, Any],
                   allow_partial: bool = False) -> "ResultSet":
        """Load a set from a durable :class:`~repro.study.store.RunStore`.

        ``source`` is a store directory (or an open store).  Records are
        streamed shard by shard in plan order, so the result — including
        its ``to_json`` text — is byte-identical to what ``Study.run``
        returned for the same plan, whatever shard format the store uses.
        An incomplete store raises
        :class:`~repro.exceptions.StoreError` unless ``allow_partial``;
        for aggregation that never materialises the set at all, pass the
        store straight to :func:`aggregate_stream` instead.
        """
        from repro.study.store import RunStore

        store = source if isinstance(source, RunStore) else RunStore.load(source)
        return store.load_results(allow_partial=allow_partial)

    def to_csv(self, path: Optional[Union[str, Path]] = None) -> str:
        """Serialise to CSV with the stable :meth:`to_records` columns."""
        columns = [*KEY_FIELDS, *self.param_keys(), *METRIC_FIELDS]
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=columns,
                                lineterminator="\n")
        writer.writeheader()
        for row in self.to_records():
            writer.writerow({
                key: json.dumps(value) if isinstance(value, (dict, list))
                else value
                for key, value in row.items()
            })
        text = buffer.getvalue()
        if path is not None:
            Path(path).write_text(text)
        return text


def _aggregate_record_stream(records: Iterator[RunRecord], metric: str,
                             by: List[str]
                             ) -> Dict[GroupKey, List[Any]]:
    groups: Dict[GroupKey, List[Any]] = {}
    for record in records:
        try:
            if not by:
                group: GroupKey = ()
            else:
                values = tuple(record.get(key) for key in by)
                group = values[0] if len(by) == 1 else values
            groups.setdefault(group, []).append(record.get(metric))
        except KeyError as error:
            raise StoreError(error.args[0]) from None
    return groups


def aggregate_stream(source: Any, metric: str,
                     by: Union[str, Sequence[str]] = ()
                     ) -> Dict[GroupKey, SampleStatistics]:
    """Incremental :meth:`ResultSet.aggregate` over a record *stream*.

    ``source`` is an open :class:`~repro.study.store.RunStore`, a store
    directory path, or any iterable of records.  Given a store, only the
    requested columns are decoded — one shard chunk at a time, straight
    from the column blocks for binary shards — and only the grouped metric
    values (floats) are held, never the records themselves, so a
    million-run store aggregates in bounded memory.  Group keys, value
    order, and therefore the statistics are identical to materialising the
    set and calling ``aggregate``.

    A metric or group column absent from the store raises
    :class:`~repro.exceptions.StoreError` naming the available columns.
    """
    from repro.study.store import RunStore

    if isinstance(by, str):
        by = [by]
    by = list(by)
    if isinstance(source, (str, Path)):
        source = RunStore.load(source)
    if isinstance(source, RunStore):
        groups: Dict[GroupKey, List[Any]] = {}
        for block in source.iter_column_blocks([metric, *by]):
            metric_values = block[metric]
            if not by:
                groups.setdefault((), []).extend(metric_values)
                continue
            group_columns = [block[key] for key in by]
            if len(by) == 1:
                only = group_columns[0]
                for i, value in enumerate(metric_values):
                    groups.setdefault(only[i], []).append(value)
            else:
                for i, value in enumerate(metric_values):
                    groups.setdefault(
                        tuple(col[i] for col in group_columns),
                        []).append(value)
    else:
        groups = _aggregate_record_stream(iter(source), metric, by)
    if not groups and not by:
        # Match ResultSet.aggregate on an empty set, which lets summarize
        # raise its explicit empty-sample error instead of returning {}.
        return {(): summarize([])}
    return {group: summarize(values) for group, values in groups.items()}
