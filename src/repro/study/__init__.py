"""Declarative study layer: parameter grids, flat results, CLI.

A :class:`Study` turns any grid of sweep axes — benchmarks, designs, seeds,
scheduling knobs, and scalar :class:`~repro.core.config.SystemConfig` fields
— into a lazy, deduplicated :class:`ExecutionPlan` of compile-once engine
cells, runs them through one shared cache and backend, and returns a flat,
JSON/CSV-serialisable :class:`ResultSet` of per-run records.

The ``python -m repro`` command line (:mod:`repro.study.cli`) executes
studies from flags or JSON spec files.

Long-running studies persist through a :class:`RunStore`
(:mod:`repro.study.store`): ``Study.run(store=...)`` streams every
completed ``(cell, seed-chunk)`` batch to append-only JSONL shards behind
an atomic manifest, skips chunks a previous (possibly killed) invocation
already committed, and reports :class:`ProgressEvent` snapshots, so
interrupted sweeps resume bit-identically instead of starting over.
"""

from repro.study.grid import Axis, GridSpec
from repro.study.plan import ExecutionPlan, PlanCell
from repro.study.results import ResultSet, RunRecord, aggregate_stream
from repro.study.store import ProgressEvent, RunStore, StoreChunk
from repro.study.study import Study

__all__ = [
    "Axis",
    "GridSpec",
    "PlanCell",
    "ExecutionPlan",
    "RunRecord",
    "ResultSet",
    "aggregate_stream",
    "ProgressEvent",
    "RunStore",
    "StoreChunk",
    "Study",
]
