"""Declarative sweep axes and their cartesian expansion.

An :class:`Axis` names one swept dimension of a study — a benchmark list, a
design list, a seed list, or any :class:`~repro.core.config.SystemConfig`
field such as ``comm_qubits_per_node`` or ``epr_success_probability`` — and
a :class:`GridSpec` is an ordered collection of axes whose cartesian product
is the study's grid.  An axis may *zip* several fields together (one value
tuple per point), which expresses coupled sweeps such as Fig. 7's "n
communication **and** n buffer qubits per node" without a cross product.

The expansion is pure data: no circuit is built, nothing is compiled, and
nothing is executed until the owning :class:`~repro.study.study.Study`
turns grid points into engine cells.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Sequence, Tuple, Union

from repro.exceptions import ConfigurationError

__all__ = ["Axis", "GridSpec"]


@dataclass(frozen=True)
class Axis:
    """One swept dimension: one or more zipped fields and their values.

    Parameters
    ----------
    fields:
        A field name, or a sequence of field names that vary together
        (zipped).  Reserved names — ``benchmark``, ``design``, ``seed``,
        ``segment_length``, ``adaptive_policy`` — address the execution
        pipeline; every other name must be a ``SystemConfig`` field.
    values:
        The points of the axis.  For a single field, one scalar per point;
        for zipped fields, one sequence of ``len(fields)`` entries per
        point.

    Examples
    --------
    >>> Axis("epr_success_probability", [0.2, 0.4, 0.8]).size
    3
    >>> comm = Axis(("comm_qubits_per_node", "buffer_qubits_per_node"),
    ...             [(10, 10), (15, 15), (20, 20)])
    >>> list(comm.points())[0]
    {'comm_qubits_per_node': 10, 'buffer_qubits_per_node': 10}
    """

    fields: Tuple[str, ...]
    values: Tuple[Any, ...]

    def __init__(self, fields: Union[str, Sequence[str]],
                 values: Sequence[Any]) -> None:
        names = (fields,) if isinstance(fields, str) else tuple(fields)
        if not names:
            raise ConfigurationError("axis needs at least one field")
        if len(set(names)) != len(names):
            raise ConfigurationError(f"axis fields {names} contain duplicates")
        if isinstance(values, str):
            # A bare string would iterate character by character and build
            # a nonsense grid; require an explicit sequence of points.
            raise ConfigurationError(
                f"axis {'/'.join(names)} values must be a sequence of "
                f"points, not the string {values!r}"
            )
        points = tuple(values)
        if not points:
            raise ConfigurationError(
                f"axis {'/'.join(names)} needs at least one value"
            )
        if len(names) > 1:
            normalised = []
            for value in points:
                if isinstance(value, str) or not isinstance(value, Sequence):
                    raise ConfigurationError(
                        f"zipped axis {'/'.join(names)} needs one sequence of "
                        f"{len(names)} entries per point, got {value!r}"
                    )
                entry = tuple(value)
                if len(entry) != len(names):
                    raise ConfigurationError(
                        f"zipped axis {'/'.join(names)} point {value!r} has "
                        f"{len(entry)} entries, expected {len(names)}"
                    )
                normalised.append(entry)
            points = tuple(normalised)
        object.__setattr__(self, "fields", names)
        object.__setattr__(self, "values", points)

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of points along this axis."""
        return len(self.values)

    def points(self) -> Iterator[Dict[str, Any]]:
        """Yield one ``{field: value}`` mapping per point."""
        for value in self.values:
            if len(self.fields) == 1:
                yield {self.fields[0]: value}
            else:
                yield dict(zip(self.fields, value))

    def to_spec(self) -> Dict[str, Any]:
        """JSON-friendly description (inverse of :meth:`from_spec`)."""
        return {"fields": list(self.fields),
                "values": [list(v) if isinstance(v, tuple) else v
                           for v in self.values]}

    @classmethod
    def from_spec(cls, spec: Dict[str, Any]) -> "Axis":
        """Rebuild an axis from a :meth:`to_spec` dictionary."""
        if "fields" not in spec or "values" not in spec:
            raise ConfigurationError(
                f"axis spec needs 'fields' and 'values' keys, got {sorted(spec)}"
            )
        return cls(spec["fields"], spec["values"])


class GridSpec:
    """Ordered axes whose cartesian product is the study grid.

    Axes vary slowest-first: the first axis is the outermost loop of the
    expansion and the last axis the innermost, so declared order controls
    both the iteration order of :meth:`points` and the record order of the
    resulting :class:`~repro.study.results.ResultSet`.
    """

    def __init__(self, axes: Sequence[Axis]) -> None:
        self.axes: Tuple[Axis, ...] = tuple(axes)
        if not self.axes:
            raise ConfigurationError("grid needs at least one axis")
        seen: List[str] = []
        for axis in self.axes:
            for name in axis.fields:
                if name in seen:
                    raise ConfigurationError(
                        f"field {name!r} appears on more than one axis"
                    )
                seen.append(name)
        self.fields: Tuple[str, ...] = tuple(seen)

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of grid points (product of the axis sizes)."""
        total = 1
        for axis in self.axes:
            total *= axis.size
        return total

    def points(self) -> Iterator[Dict[str, Any]]:
        """Yield every grid point as one merged ``{field: value}`` mapping."""
        for combination in itertools.product(
                *(tuple(axis.points()) for axis in self.axes)):
            point: Dict[str, Any] = {}
            for part in combination:
                point.update(part)
            yield point

    def axis(self, field: str) -> Axis:
        """The axis that sweeps ``field``."""
        for candidate in self.axes:
            if field in candidate.fields:
                return candidate
        raise ConfigurationError(f"no axis sweeps field {field!r}")

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{'/'.join(axis.fields)}[{axis.size}]" for axis in self.axes
        )
        return f"GridSpec({parts}, size={self.size})"
