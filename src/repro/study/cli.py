"""``python -m repro`` — run studies from the command line.

Subcommands
-----------
``run``
    Execute one benchmarks × designs study and write the ResultSet::

        python -m repro run --benchmark QAOA-r4-16 --runs 2 --out /tmp/rs.json

``sweep``
    Execute a study with extra axes, from flags or a JSON spec file::

        python -m repro sweep --benchmark QAOA-r8-32 \\
            --axis comm_qubits_per_node,buffer_qubits_per_node=10:10,15:15,20:20
        python -m repro sweep --spec study.json --out results.json

    With ``--store DIR`` results stream to a durable run store as chunks
    complete, and re-running the identical command *resumes* — chunks the
    store already holds are skipped, and the final output is byte-identical
    to an uninterrupted run::

        python -m repro sweep --spec study.json --store runs/fig5
        # ... killed mid-way ...
        python -m repro sweep --spec study.json --store runs/fig5  # resumes

``status``
    Summarise a run store's manifest (progress, benchmarks, fingerprint)::

        python -m repro status --store runs/fig5

``cache``
    Inspect or clear a persistent compile cache (``--cache-dir`` on the
    study commands, or the ``REPRO_CACHE_DIR`` environment variable)::

        python -m repro cache stats --cache-dir ~/.cache/repro
        python -m repro cache clear --cache-dir ~/.cache/repro

``serve``
    Run the long-lived study service: an HTTP job queue over a durable
    data root (see :mod:`repro.service` and ``docs/service.md``)::

        python -m repro serve --data-root /var/lib/repro --port 8765

``worker``
    Run a fleet worker that pulls ``(cell, seed-chunk)`` leases from a
    coordinator started by ``--backend fleet --fleet HOST:PORT`` (on a
    sweep or the service) and executes them locally::

        python -m repro worker --connect 127.0.0.1:8766

``chaos``
    Run the chaos soak: seeded random fault schedules (``REPRO_FAULTS``
    failpoints; see ``docs/robustness.md``) over a fleet sweep and a
    service job, each byte-compared against a serial baseline::

        python -m repro chaos --schedules 3 --seed 9 --out soak_report.json

    ``run``/``sweep``/``serve``/``worker`` also accept ``--faults SPEC``
    / ``--faults-seed S`` directly to arm a single deterministic fault
    schedule for one invocation.

``submit`` / ``jobs`` / ``job`` / ``cancel`` / ``fetch``
    The client side of the service — submit a spec file as a job, list
    jobs (with per-client quota accounting), inspect one job's state and
    progress, cancel it cooperatively, and fetch finished results::

        python -m repro submit --spec study.json --wait
        python -m repro jobs
        python -m repro job job-000001
        python -m repro fetch job-000001 --format csv --out results.csv

    The service URL defaults to ``$REPRO_SERVICE_URL`` (else the local
    daemon's default port); the tenant name to ``$REPRO_CLIENT``.

``list-benchmarks`` / ``list-designs`` / ``list-partitioners`` / ``list-topologies``
    Show the registered benchmark suite, the paper's designs, the pluggable
    partitioning strategies, and the interconnect topologies.

Axis syntax: ``field=v1,v2,v3`` for one field, or
``fieldA,fieldB=a1:b1,a2:b2`` for fields swept together (zipped).  Values
are parsed as JSON scalars where possible (``0.4`` → float, ``10`` → int);
registry-name axes stay strings, e.g.
``--axis partition_method=multilevel,spectral --axis topology=all_to_all,ring``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Any, List, Optional, Sequence, TextIO

from repro.analysis.report import format_table, store_status_report, summary_report
from repro.benchmarks.registry import get_benchmark, list_benchmarks
from repro.core.config import SystemConfig
from repro.engine.backends import list_backends
from repro.engine.cache import (
    CACHE_ENV_VAR,
    PersistentArtifactCache,
    default_cache,
    resolve_cache_dir,
)
from repro.exceptions import ReproError, SpecValidationError
from repro.hardware.topology import TOPOLOGIES, list_topologies
from repro.partitioning.registry import PARTITIONERS, list_partitioners
from repro.runtime.designs import DESIGNS, list_designs
from repro.study.grid import Axis
from repro.study.results import ResultSet
from repro.study.store import ProgressEvent, RunStore
from repro.study.study import Study

__all__ = ["main", "build_parser", "parse_axis"]


def parse_axis(text: str) -> Axis:
    """Parse one ``--axis`` argument into an :class:`Axis`."""
    if "=" not in text:
        raise ValueError(
            f"axis {text!r} must look like field=v1,v2 "
            f"or fieldA,fieldB=a1:b1,a2:b2"
        )
    fields_part, values_part = text.split("=", 1)
    fields = [f.strip() for f in fields_part.split(",") if f.strip()]
    if not fields or not values_part.strip():
        raise ValueError(f"axis {text!r} needs fields and values")
    points: List[Any] = []
    for chunk in values_part.split(","):
        entries = [_parse_scalar(v) for v in chunk.split(":")]
        if len(fields) == 1:
            if len(entries) != 1:
                raise ValueError(
                    f"axis {text!r}: single-field points take one value each"
                )
            points.append(entries[0])
        else:
            if len(entries) != len(fields):
                raise ValueError(
                    f"axis {text!r}: point {chunk!r} has {len(entries)} "
                    f"entries for {len(fields)} fields"
                )
            points.append(tuple(entries))
    return Axis(fields if len(fields) > 1 else fields[0], points)


def _parse_scalar(text: str) -> Any:
    text = text.strip()
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def _add_study_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--benchmark", "-b", action="append", default=None,
                        metavar="NAME",
                        help="benchmark to run (repeatable); Table I names or "
                             "family names like TLIM-16 / QAOA-r4-16 / QFT-16")
    parser.add_argument("--design", "-d", action="append", default=None,
                        metavar="NAME",
                        help="design to run (repeatable; default: all)")
    parser.add_argument("--runs", type=int, default=None, metavar="N",
                        help="stochastic repetitions per cell (default 3)")
    parser.add_argument("--seed", type=int, default=None, metavar="S",
                        help="seed of the first repetition (default 1)")
    parser.add_argument("--backend", default=None, metavar="NAME",
                        help=f"execution backend ({', '.join(list_backends())}; "
                             f"default: $REPRO_BACKEND or serial)")
    parser.add_argument("--fleet", default=None, metavar="HOST:PORT",
                        help="run on the fleet backend, binding the "
                             "coordinator at HOST:PORT; workers connect "
                             "with `repro worker --connect HOST:PORT` "
                             "(implies --backend fleet)")
    parser.add_argument("--nodes", type=int, default=None,
                        help="QPU node count (default 2)")
    parser.add_argument("--data-qubits", type=int, default=None, metavar="N",
                        help="data qubits per node (default 16)")
    parser.add_argument("--comm-qubits", type=int, default=None, metavar="N",
                        help="communication qubits per node (default 10)")
    parser.add_argument("--buffer-qubits", type=int, default=None, metavar="N",
                        help="buffer qubits per node (default 10)")
    parser.add_argument("--psucc", type=float, default=None, metavar="P",
                        help="per-attempt EPR success probability (default 0.4)")
    parser.add_argument("--partition-method", default=None, metavar="NAME",
                        help="partitioning strategy (see list-partitioners; "
                             "default multilevel)")
    parser.add_argument("--topology", default=None, metavar="NAME",
                        help="interconnect topology (see list-topologies; "
                             "default all_to_all)")
    parser.add_argument("--partition-seed", type=int, default=None, metavar="S",
                        help="graph-partitioner seed (default 0)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persistent compile-cache directory: compiled "
                             "artifacts are pickled there keyed by their "
                             "configuration fingerprints, so a later run of "
                             "an overlapping study skips compilation "
                             f"(default: ${CACHE_ENV_VAR} if set, else "
                             "in-memory only)")
    parser.add_argument("--out", "-o", default=None, metavar="PATH",
                        help="write the ResultSet as JSON (or CSV if the "
                             "path ends in .csv)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="durable run store directory: results stream "
                             "to append-only shards as chunks complete, and "
                             "re-running the same study against the same "
                             "store resumes, skipping completed chunks")
    parser.add_argument("--resume", action="store_true",
                        help="require --store to already hold a started "
                             "study (guards against a typo'd store path "
                             "silently starting from scratch)")
    parser.add_argument("--max-chunks", type=int, default=None, metavar="N",
                        help="execute at most N new chunks this invocation, "
                             "then stop; with --store the progress is kept "
                             "and the next invocation continues")
    parser.add_argument("--store-chunk-size", type=int, default=None,
                        metavar="N",
                        help="seeds per store chunk for a fresh store "
                             "(default 32; an existing store keeps its "
                             "committed layout)")
    parser.add_argument("--store-format", default=None,
                        choices=("jsonl", "npz"), metavar="FMT",
                        help="shard encoding for a fresh store: 'jsonl' "
                             "(default, one JSON line per record) or 'npz' "
                             "(columnar binary; ~10x faster load/aggregate "
                             "at scale, byte-identical results); an "
                             "existing store keeps its committed format")
    parser.add_argument("--json-progress", action="store_true",
                        help="emit one JSON progress object per completed "
                             "chunk on stdout (suppresses the summary "
                             "table)")
    parser.add_argument("--quiet", "-q", action="store_true",
                        help="suppress the summary table and progress line")


def _add_fault_options(parser: argparse.ArgumentParser) -> None:
    from repro.faults import FAULTS_ENV_VAR, FAULTS_SEED_ENV_VAR

    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help="arm deterministic failpoints, e.g. "
                             "'fleet.frame.send:p=0.05;store.fsync:count=1' "
                             f"(default: ${FAULTS_ENV_VAR}; see "
                             f"docs/robustness.md for the site catalogue)")
    parser.add_argument("--faults-seed", type=int, default=None, metavar="S",
                        help="fault-schedule seed for exact replay "
                             f"(default: ${FAULTS_SEED_ENV_VAR} or 0)")


def _add_client_options(parser: argparse.ArgumentParser) -> None:
    from repro.service.client import CLIENT_ENV_VAR, SERVICE_URL_ENV_VAR

    parser.add_argument("--url", default=None, metavar="URL",
                        help=f"service base URL (default: "
                             f"${SERVICE_URL_ENV_VAR} or the local daemon's "
                             f"default port)")
    parser.add_argument("--client", default=None, metavar="NAME",
                        help=f"tenant name sent as X-Client (default: "
                             f"${CLIENT_ENV_VAR} or 'anonymous')")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run declarative DQC co-design studies "
                    "(benchmarks x designs x system parameters).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a benchmarks x designs study")
    _add_study_options(run)
    _add_fault_options(run)

    sweep = sub.add_parser("sweep", help="run a study with extra sweep axes")
    _add_study_options(sweep)
    _add_fault_options(sweep)
    sweep.add_argument("--axis", "-a", action="append", default=None,
                       metavar="FIELD=V1,V2",
                       help="sweep axis (repeatable); zip fields with "
                            "fieldA,fieldB=a1:b1,a2:b2")
    sweep.add_argument("--spec", default=None, metavar="FILE",
                       help="JSON study spec file (flags override its "
                            "runs/seed/backend)")

    cache = sub.add_parser(
        "cache", help="inspect or clear a persistent compile cache")
    cache.add_argument("action", choices=("stats", "show", "clear"),
                       help="stats: entry/byte totals; show: one line per "
                            "cached artifact; clear: delete every entry")
    cache.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="cache directory (default: $" + CACHE_ENV_VAR + ")")
    cache.add_argument("--json", action="store_true",
                       help="print stats as JSON instead of a table")

    status = sub.add_parser(
        "status", help="summarise a run store's manifest")
    status.add_argument("--store", required=True, metavar="DIR",
                        help="run store directory to inspect")
    status.add_argument("--json", action="store_true",
                        help="print the summary as JSON instead of a table")

    serve = sub.add_parser(
        "serve", help="run the long-lived study service daemon")
    serve.add_argument("--data-root", required=True, metavar="DIR",
                       help="service state directory: jobs journal, one run "
                            "store per plan, and the shared compile cache")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=None, metavar="N",
                       help="bind port (default 8765; 0 picks a free port)")
    serve.add_argument("--concurrency", type=int, default=1, metavar="N",
                       help="jobs run at once (default 1; studies already "
                            "parallelise inside a job via --backend)")
    serve.add_argument("--max-jobs-per-client", type=int, default=16,
                       metavar="N",
                       help="active (queued+running) jobs allowed per "
                            "X-Client tenant (default 16)")
    serve.add_argument("--backend", default=None, metavar="NAME",
                       help=f"execution backend for every job "
                            f"({', '.join(list_backends())}; default: "
                            f"$REPRO_BACKEND or serial)")
    serve.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="shared persistent compile cache (default: "
                            "<data-root>/cache)")
    serve.add_argument("--store-chunk-size", type=int, default=None,
                       metavar="N",
                       help="seeds per store chunk for fresh job stores "
                            "(default 32)")
    serve.add_argument("--fleet", default=None, metavar="HOST:PORT",
                       help="run jobs on the fleet backend, binding the "
                            "coordinator at HOST:PORT so remote "
                            "`repro worker` processes can join "
                            "(requires --concurrency 1)")
    serve.add_argument("--job-ttl", default=None, metavar="DUR",
                       help="garbage-collect done/failed/cancelled jobs "
                            "(and their orphaned stores) older than DUR "
                            "(e.g. 90s, 30m, 12h, 7d)")
    _add_fault_options(serve)

    worker = sub.add_parser(
        "worker", help="run a fleet worker process pulling chunk leases")
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator address (the sweep's --fleet "
                             "value)")
    worker.add_argument("--name", default=None, metavar="NAME",
                        help="worker name in coordinator stats "
                             "(default <hostname>-<pid>)")
    worker.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persistent compiled-cell cache: cells shipped "
                             "once survive worker restarts (default: "
                             f"${CACHE_ENV_VAR} if set, else in-memory)")
    worker.add_argument("--retry", type=float, default=30.0, metavar="S",
                        help="keep retrying a failed (re)connect for S "
                             "seconds before exiting (default 30)")
    worker.add_argument("--seed", type=int, default=None, metavar="S",
                        help="seed the worker's RNG (reconnect-backoff "
                             "jitter) for a replayable retry schedule "
                             "(default: derived from the worker name)")
    worker.add_argument("--quiet", "-q", action="store_true",
                        help="suppress per-event log lines")
    _add_fault_options(worker)

    chaos = sub.add_parser(
        "chaos", help="run the chaos soak: seeded random fault schedules "
                      "over the fleet + service + store stack, every "
                      "surviving run byte-compared to a serial baseline")
    chaos.add_argument("--schedules", type=int, default=None, metavar="N",
                       help="random fault schedules to run (default 3)")
    chaos.add_argument("--seed", type=int, default=None, metavar="S",
                       help="soak seed; the same seed replays the same "
                            "schedules exactly (default 9)")
    chaos.add_argument("--workers", type=int, default=2, metavar="N",
                       help="fleet worker subprocesses per schedule "
                            "(default 2)")
    chaos.add_argument("--root", default=None, metavar="DIR",
                       help="working directory for stores, logs, and "
                            "per-schedule results (default: a temp dir, "
                            "removed afterwards)")
    chaos.add_argument("--keep", action="store_true",
                       help="keep the working directory for post-mortems")
    chaos.add_argument("--out", default=None, metavar="PATH",
                       help="write the JSON soak report to PATH (the CI "
                            "artifact)")
    chaos.add_argument("--phase-timeout", type=float, default=300.0,
                       metavar="S",
                       help="give up on one schedule phase after S seconds "
                            "(default 300)")
    chaos.add_argument("--quiet", "-q", action="store_true",
                       help="suppress per-schedule progress lines")

    submit = sub.add_parser(
        "submit", help="submit a study spec to the service as a job")
    _add_client_options(submit)
    submit.add_argument("--spec", required=True, metavar="FILE",
                        help="JSON study spec file to submit")
    submit.add_argument("--priority", type=int, default=0, metavar="N",
                        help="queue priority (higher runs first; default 0)")
    submit.add_argument("--wait", action="store_true",
                        help="poll until the job reaches a terminal state")
    submit.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="give up waiting after S seconds (with --wait)")
    submit.add_argument("--json", action="store_true",
                        help="print the job as JSON instead of one line")

    jobs = sub.add_parser("jobs", help="list the service's jobs")
    _add_client_options(jobs)
    jobs.add_argument("--state", default=None, metavar="STATE",
                      help="filter by state (queued, running, done, failed, "
                           "cancelled)")
    jobs.add_argument("--json", action="store_true",
                      help="print the listing as JSON instead of a table")

    job = sub.add_parser("job", help="show one job's state and progress")
    _add_client_options(job)
    job.add_argument("id", help="job id (e.g. job-000001)")
    job.add_argument("--json", action="store_true",
                     help="print the full status as JSON")

    cancel = sub.add_parser(
        "cancel", help="cancel a job (cooperative; the store stays "
                       "resumable)")
    _add_client_options(cancel)
    cancel.add_argument("id", help="job id to cancel")

    fetch = sub.add_parser(
        "fetch", help="download a finished job's results from the service")
    _add_client_options(fetch)
    fetch.add_argument("id", help="job id to fetch")
    fetch.add_argument("--format", choices=("json", "csv"), default="json",
                       help="result serialisation (default json)")
    fetch.add_argument("--out", "-o", default=None, metavar="PATH",
                       help="write to PATH instead of stdout")

    bench = sub.add_parser(
        "bench", help="record and gate BENCH_*.json perf results against "
                      "an append-only history ledger")
    bench.add_argument("action", choices=("record", "check", "show"),
                       help="record: append the payloads' metrics to the "
                            "ledger; check: fail (exit 1) if a gated "
                            "metric regressed vs the rolling-median "
                            "baseline; show: print the recorded history")
    bench.add_argument("files", nargs="*", metavar="BENCH_JSON",
                       help="benchmark payloads (e.g. BENCH_runtime.json); "
                            "metrics are namespaced by file name")
    bench.add_argument("--ledger", default="BENCH_ledger.jsonl",
                       metavar="PATH",
                       help="history ledger file (default "
                            "BENCH_ledger.jsonl)")
    bench.add_argument("--window", type=int, default=None, metavar="N",
                       help="rolling-median window in runs (default 5)")
    bench.add_argument("--allowance", type=float, default=None, metavar="F",
                       help="fractional noise allowance around the "
                            "baseline (default 0.2 = 20%%)")
    bench.add_argument("--run-id", default=None, metavar="ID",
                       help="label recorded with the entry (e.g. the CI "
                            "run id; default: $GITHUB_RUN_ID if set)")
    bench.add_argument("--json", action="store_true",
                       help="print the outcome as JSON instead of text")

    sub.add_parser("list-benchmarks", help="show the registered benchmarks")
    sub.add_parser("list-designs", help="show the paper's designs")
    sub.add_parser("list-partitioners",
                   help="show the registered partitioning strategies")
    sub.add_parser("list-topologies",
                   help="show the registered interconnect topologies")
    return parser


# ----------------------------------------------------------------------
def _system_overrides(args: argparse.Namespace) -> dict:
    overrides = {
        "num_nodes": args.nodes,
        "data_qubits_per_node": args.data_qubits,
        "comm_qubits_per_node": args.comm_qubits,
        "buffer_qubits_per_node": args.buffer_qubits,
        "epr_success_probability": args.psucc,
        "partition_method": args.partition_method,
        "topology": args.topology,
    }
    return {key: value for key, value in overrides.items()
            if value is not None}


def _resolve_backend_arg(args: argparse.Namespace):
    """The ``--backend``/``--fleet`` flags as a backend argument.

    ``--fleet HOST:PORT`` builds a bound :class:`FleetBackend` instance so
    the coordinator address is explicit; plain ``--backend fleet`` defers
    to ``$REPRO_FLEET_ADDR`` / the default port via the registry.
    """
    fleet = getattr(args, "fleet", None)
    if fleet is None:
        return args.backend
    if args.backend not in (None, "fleet"):
        raise ReproError(
            f"--fleet selects the fleet backend; drop "
            f"--backend {args.backend}"
        )
    from repro.fleet.backend import FleetBackend

    return FleetBackend(listen=fleet)


def _study_from_args(args: argparse.Namespace) -> Study:
    spec_path = getattr(args, "spec", None)
    backend = _resolve_backend_arg(args)
    axes = [parse_axis(text) for text in (getattr(args, "axis", None) or [])]
    if spec_path is not None:
        # Flags layer on top of the spec for quick what-if runs: overrides
        # are applied to the spec dictionary (a --benchmark / --design flag
        # replaces the spec's matching axis), then one Study is built.
        spec = json.loads(Path(spec_path).read_text())
        effective = dict(spec)
        spec_axes = list(spec.get("axes") or [])
        if args.benchmark:
            effective["benchmarks"] = args.benchmark
            spec_axes = [a for a in spec_axes
                         if list(a.get("fields", [])) != ["benchmark"]]
        if args.design:
            effective["designs"] = args.design
            spec_axes = [a for a in spec_axes
                         if list(a.get("fields", [])) != ["design"]]
        if args.runs is not None or args.seed is not None:
            # A seed axis would take precedence over num_runs/base_seed,
            # silently ignoring the flags; the flags replace it instead.
            spec_axes = [a for a in spec_axes
                         if list(a.get("fields", [])) != ["seed"]]
        effective["axes"] = [*spec_axes, *(a.to_spec() for a in axes)]
        if args.runs is not None:
            effective["num_runs"] = args.runs
        elif "num_runs" not in effective:
            effective["num_runs"] = 3  # match the flags path / --help default
        if args.seed is not None:
            effective["base_seed"] = args.seed
        if args.partition_seed is not None:
            effective["partition_seed"] = args.partition_seed
        overrides = _system_overrides(args)
        if overrides:
            effective["system"] = {**(spec.get("system") or {}), **overrides}
        return Study.from_spec(effective, backend=backend,
                               cache_dir=args.cache_dir)
    if not args.benchmark and not any(a.fields == ("benchmark",)
                                      for a in axes):
        raise ReproError("no benchmark given (use --benchmark, an "
                         "--axis benchmark=..., or --spec)")
    from dataclasses import replace
    overrides = _system_overrides(args)
    return Study(
        benchmarks=args.benchmark,
        designs=args.design,
        axes=axes,
        num_runs=args.runs if args.runs is not None else 3,
        base_seed=args.seed if args.seed is not None else 1,
        system=(replace(SystemConfig(), **overrides) if overrides
                else SystemConfig()),
        partition_seed=args.partition_seed or 0,
        backend=backend,
        cache_dir=args.cache_dir,
    )


def _write_output(results: ResultSet, path: str) -> None:
    if path.endswith(".csv"):
        results.to_csv(path)
    else:
        results.to_json(path)


class _ProgressLine:
    """Render progress events as a live line (TTY) or a sparse log.

    A terminal gets a single carriage-return-updated line; a pipe (CI log)
    gets the first event, every tenth, and the last, so long sweeps do not
    flood the log with one line per chunk.
    """

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._tty = bool(getattr(self._stream, "isatty", lambda: False)())
        self._width = 0
        self._events = 0

    def __call__(self, event: ProgressEvent) -> None:
        line = (f"chunks {event.done_chunks}/{event.total_chunks}"
                f"  runs {event.done_tasks}/{event.total_tasks}")
        if event.runs_per_second > 0:
            line += f"  {event.runs_per_second:.1f} runs/s"
        if event.resumed_chunks:
            line += f"  ({event.resumed_chunks} chunks resumed)"
        self._events += 1
        if self._tty:
            self._width = max(self._width, len(line))
            print("\r" + line.ljust(self._width), end="",
                  file=self._stream, flush=True)
        elif self._events == 1 or self._events % 10 == 0 or event.complete:
            print(line, file=self._stream, flush=True)

    def close(self) -> None:
        """Terminate the live line so later output starts on a fresh row."""
        if self._tty and self._width:
            print(file=self._stream)
            self._width = 0


def _json_progress(event: ProgressEvent) -> None:
    print(json.dumps(event.to_dict()), flush=True)


def _cmd_run(args: argparse.Namespace) -> int:
    store_path = getattr(args, "store", None)
    if args.resume:
        if store_path is None:
            raise ReproError("--resume needs --store DIR")
        if not RunStore(store_path).is_started:
            raise ReproError(
                f"--resume: {store_path} holds no started study; drop "
                f"--resume to start one, or check the store path"
            )
    if args.max_chunks is not None and args.max_chunks < 0:
        raise ReproError("--max-chunks cannot be negative")
    study = _study_from_args(args)
    plan = study.plan()
    store = (RunStore(store_path, chunk_size=args.store_chunk_size,
                      shard_format=args.store_format)
             if store_path is not None else None)
    streamed = (store is not None or args.max_chunks is not None
                or args.json_progress)
    line: Optional[_ProgressLine] = None
    progress = None
    if args.json_progress:
        progress = _json_progress
    elif streamed and not args.quiet:
        line = _ProgressLine()
        progress = line
    try:
        if streamed:
            results = study.run(plan, store=store, progress=progress,
                                max_chunks=args.max_chunks,
                                store_chunk_size=args.store_chunk_size)
        else:
            results = study.run(plan)
    except KeyboardInterrupt:
        if store is not None:
            print(f"repro: interrupted — completed chunks are durable in "
                  f"{store_path}; re-run the same command to resume",
                  file=sys.stderr)
        return 130
    finally:
        # Terminate the live progress line on every exit path (including
        # errors) so diagnostics never append to a half-drawn row.
        if line is not None:
            line.close()
        study.close()
    if args.out:
        _write_output(results, args.out)
    if not args.quiet and not args.json_progress:
        print(f"study: {len(plan)} cells, {plan.num_tasks} runs, "
              f"{len(plan.systems())} system configuration(s)")
        print(summary_report(results))
        if args.out:
            print(f"written: {args.out}")
    if store is not None and not store.is_complete:
        summary = store.summary()
        print(f"repro: store {store_path} is at "
              f"{summary['done_chunks']}/{summary['total_chunks']} chunks; "
              f"re-run the same command to resume", file=sys.stderr)
    if isinstance(study.cache, PersistentArtifactCache):
        stats = study.cache.stats()
        print(f"compile cache: hits={stats['hits']} "
              f"misses={stats['misses']} "
              f"hit_rate={stats['hit_rate']:.2f} "
              f"disk_entries={stats['disk_entries']} "
              f"dir={study.cache.directory}", file=sys.stderr)
    return 0


_DURATION_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}


def _parse_duration(text: str) -> float:
    """Parse ``"90"``/``"90s"``/``"30m"``/``"12h"``/``"7d"`` into seconds."""
    text = str(text).strip().lower()
    scale = 1.0
    if text and text[-1] in _DURATION_UNITS:
        scale = _DURATION_UNITS[text[-1]]
        text = text[:-1]
    try:
        seconds = float(text) * scale
    except ValueError:
        raise ReproError(
            f"cannot parse duration {text!r}; use e.g. 90s, 30m, 12h, 7d"
        ) from None
    if seconds < 0:
        raise ReproError("durations cannot be negative")
    return seconds


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.service.daemon import DEFAULT_PORT, ServiceConfig, StudyDaemon

    config = ServiceConfig(
        data_root=args.data_root,
        host=args.host,
        port=args.port if args.port is not None else DEFAULT_PORT,
        concurrency=args.concurrency,
        max_jobs_per_client=args.max_jobs_per_client,
        backend=args.backend,
        cache_dir=args.cache_dir,
        store_chunk_size=args.store_chunk_size,
        fleet=args.fleet,
        job_ttl=(_parse_duration(args.job_ttl)
                 if args.job_ttl is not None else None),
    )
    daemon = StudyDaemon(config)
    daemon.start()
    # `kill <pid>` should wind down like Ctrl-C: running jobs re-queue and
    # resume on the next start (kill -9 skips this and still recovers).
    def _sigterm(_signo, _frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _sigterm)
    print(f"repro service listening on {daemon.address} "
          f"(data root: {args.data_root})", flush=True)
    if args.fleet:
        print(f"repro service fleet coordinator on {args.fleet} — join with "
              f"`python -m repro worker --connect {args.fleet}`", flush=True)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        daemon.stop()
        print("repro service stopped; interrupted jobs re-queue on the "
              "next serve", file=sys.stderr)
    return 0


def _service_client(args: argparse.Namespace):
    from repro.service.client import ServiceClient

    return ServiceClient(args.url, client=args.client)


def _cmd_submit(args: argparse.Namespace) -> int:
    spec = json.loads(Path(args.spec).read_text())
    client = _service_client(args)
    job = client.submit(spec, priority=args.priority)
    if args.json and not args.wait:
        print(json.dumps(job, indent=2))
    else:
        print(f"submitted {job['id']} (state {job['state']}, "
              f"{job['total_tasks']} runs, priority {job['priority']})")
    if not args.wait:
        return 0
    status = client.wait(job["id"], timeout=args.timeout)
    if args.json:
        print(json.dumps(status, indent=2))
    else:
        line = f"{status['id']}: {status['state']}"
        if status.get("error"):
            line += f" — {status['error']}"
        print(line)
    return 0 if status["state"] == "done" else 1


def _ellipsize(text: Optional[str], width: int = 32) -> str:
    if not text:
        return ""
    return text if len(text) <= width else text[: width - 1] + "…"


def _cmd_jobs(args: argparse.Namespace) -> int:
    client = _service_client(args)
    listing = client.jobs(state=args.state)
    if args.json:
        print(json.dumps(listing, indent=2))
        return 0
    health = client.health()
    header = (f"service: {health.get('queue_depth', 0)} queued, "
              f"{health.get('running', 0)} running, "
              f"{health.get('done', 0)} done")
    workers = health.get("fleet_workers")
    if workers is not None:
        header += f", {workers} fleet worker(s) connected"
    print(header)
    rows = [[job["id"], job["state"], job["client"], job["priority"],
             job["total_tasks"], job["requeues"],
             _ellipsize(job.get("last_failure")), job.get("name") or ""]
            for job in listing["jobs"]]
    if rows:
        print(format_table(
            ["id", "state", "client", "priority", "runs", "requeues",
             "last failure", "name"], rows))
    else:
        print("no jobs")
    quota = listing["quota"]
    print(f"\nclient {quota['client']}: {quota['active']}/{quota['limit']} "
          f"active job(s)")
    return 0


def _cmd_job(args: argparse.Namespace) -> int:
    status = _service_client(args).job(args.id)
    if args.json:
        print(json.dumps(status, indent=2))
        return 0
    rows = [[key, status.get(key)] for key in
            ("id", "state", "client", "priority", "cells", "total_tasks",
             "requeues", "last_failure", "store", "error")
            if status.get(key) is not None]
    print(format_table(["field", "value"], rows))
    latest = (status.get("progress") or {}).get("latest")
    if latest:
        print(f"\nprogress: chunks {latest['done_chunks']}"
              f"/{latest['total_chunks']}  runs {latest['done_tasks']}"
              f"/{latest['total_tasks']}")
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    result = _service_client(args).cancel(args.id)
    print(f"{result['id']}: {result['state']}")
    return 0


def _cmd_fetch(args: argparse.Namespace) -> int:
    text = _service_client(args).results(args.id, fmt=args.format)
    if args.out:
        Path(args.out).write_text(text)
        print(f"written: {args.out}", file=sys.stderr)
    else:
        print(text, end="")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    import signal

    from repro.fleet.worker import FleetWorker

    worker = FleetWorker(
        args.connect,
        name=args.name,
        cache_dir=args.cache_dir,
        retry=args.retry,
        seed=args.seed,
        quiet=args.quiet,
    )

    def _sigterm(_signo, _frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _sigterm)
    try:
        return worker.run()
    except KeyboardInterrupt:
        worker.stop()
        return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults.chaos import DEFAULT_SCHEDULES, DEFAULT_SEED, run_chaos

    report = run_chaos(
        schedules=(args.schedules if args.schedules is not None
                   else DEFAULT_SCHEDULES),
        seed=args.seed if args.seed is not None else DEFAULT_SEED,
        workers=args.workers,
        root=Path(args.root) if args.root else None,
        keep=args.keep,
        out=Path(args.out) if args.out else None,
        phase_timeout=args.phase_timeout,
        quiet=args.quiet,
    )
    sites = report["sites_covered"]
    layers = report["layers_covered"]
    verdict = "byte-identical" if report["identical"] else "DIVERGED"
    print(f"chaos soak (seed {report['seed']}): "
          f"{len(report['schedules'])} schedule(s), {len(sites)} fault "
          f"site(s) across {len(layers)} layer(s) — {verdict}")
    if args.out:
        print(f"report: {args.out}")
    return 0 if report["identical"] else 1


def _cmd_cache(args: argparse.Namespace) -> int:
    directory = resolve_cache_dir(args.cache_dir)
    if directory is None:
        raise ReproError(
            f"no cache directory given (use --cache-dir or set "
            f"${CACHE_ENV_VAR})"
        )
    cache = PersistentArtifactCache(directory)
    if args.action == "clear":
        removed = cache.disk_count()
        cache.clear()
        print(f"cleared {removed} cached artifact(s) from {directory}")
        return 0
    if args.action == "show":
        rows = [[namespace, key[:16], size, f"{mtime:.0f}"]
                for namespace, key, size, mtime in cache.disk_entries()]
        if rows:
            print(format_table(["namespace", "fingerprint", "bytes", "mtime"],
                               rows))
        else:
            print(f"cache at {directory} is empty")
        return 0
    summary = {
        "directory": str(directory),
        "version": cache.version,
        "disk_entries": cache.disk_count(),
        "disk_bytes": cache.disk_bytes(),
    }
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(format_table(
            ["field", "value"],
            [[key, value] for key, value in summary.items()],
        ))
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    store = RunStore.load(args.store)
    if args.json:
        print(json.dumps(store.summary(), indent=2))
    else:
        print(store_status_report(store))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.analysis.ledger import (
        DEFAULT_ALLOWANCE, DEFAULT_WINDOW, BenchLedger, classify_metric,
        load_bench_file,
    )

    ledger = BenchLedger(args.ledger)
    window = args.window if args.window is not None else DEFAULT_WINDOW
    allowance = (args.allowance if args.allowance is not None
                 else DEFAULT_ALLOWANCE)
    if args.action == "show":
        entries = ledger.entries()
        if args.json:
            print(json.dumps(entries, indent=2))
            return 0
        if not entries:
            print(f"bench ledger {ledger.path}: no recorded runs")
            return 0
        gated = sorted({metric for entry in entries
                        for metric in entry["metrics"]
                        if classify_metric(metric) is not None})
        rows = []
        for entry in entries:
            metrics = entry["metrics"]
            rows.append([
                time.strftime("%Y-%m-%d %H:%M",
                              time.localtime(entry.get("ts", 0))),
                entry.get("run") or "-",
                *(f"{metrics[m]:.6g}" if m in metrics else "-"
                  for m in gated),
            ])
        print(format_table(["recorded", "run", *gated], rows))
        return 0
    if not args.files:
        raise ReproError(f"bench {args.action} needs at least one "
                         f"BENCH_*.json payload")
    current: dict = {}
    for path in args.files:
        current.update(load_bench_file(path))
    if args.action == "record":
        run_id = args.run_id or os.environ.get("GITHUB_RUN_ID")
        entry = ledger.record(current, run=run_id)
        if args.json:
            print(json.dumps(entry, indent=2))
        else:
            print(f"bench ledger {ledger.path}: recorded "
                  f"{len(current)} metric(s) from {len(args.files)} "
                  f"payload(s) (history: {len(ledger.entries())} run(s))")
        return 0
    regressions = ledger.check(current, window=window, allowance=allowance)
    gated = [name for name in sorted(current)
             if classify_metric(name) is not None]
    if args.json:
        print(json.dumps({
            "ok": not regressions,
            "gated_metrics": gated,
            "history_runs": len(ledger.entries()),
            "regressions": [
                {"metric": r.metric, "value": r.value,
                 "baseline": r.baseline, "direction": r.direction,
                 "ratio": r.ratio}
                for r in regressions
            ],
        }, indent=2))
    else:
        if regressions:
            for regression in regressions:
                print(f"bench: REGRESSION {regression.describe()}",
                      file=sys.stderr)
        print(f"bench ledger {ledger.path}: checked {len(gated)} gated "
              f"metric(s) against {len(ledger.entries())} recorded run(s) "
              f"— {'FAIL' if regressions else 'ok'}")
    return 1 if regressions else 0


def _cmd_list_benchmarks() -> int:
    rows = []
    for name in list_benchmarks():
        spec = get_benchmark(name)
        rows.append([spec.name, spec.num_qubits, spec.description])
    print(format_table(["name", "qubits", "description"], rows))
    print("\nFamily names synthesise further sizes on demand: "
          "TLIM-<n>, QAOA-r<d>-<n>, QFT-<n> (e.g. QAOA-r4-16).")
    return 0


def _cmd_list_designs() -> int:
    rows = []
    for name in list_designs():
        spec = DESIGNS[name]
        rows.append([
            name,
            "yes" if spec.use_buffer else "no",
            spec.attempt_policy.name.lower(),
            "yes" if spec.adaptive_scheduling else "no",
            "yes" if spec.prefill_buffers else "no",
            "ideal" if spec.ideal else "",
        ])
    print(format_table(
        ["name", "buffers", "attempts", "adaptive", "pre-filled", "note"],
        rows,
    ))
    return 0


def _cmd_list_partitioners() -> int:
    rows = []
    for name in list_partitioners():
        partitioner = PARTITIONERS[name]
        rows.append([
            name,
            "any k" if partitioner.supports_k_way else "bisection",
            partitioner.description,
        ])
    print(format_table(["name", "blocks", "description"], rows))
    print("\nAliases: kl = kernighan_lin, fm = fiduccia_mattheyses. "
          "Register custom strategies via repro.api.register_partitioner().")
    return 0


def _cmd_list_topologies() -> int:
    rows = []
    for name in list_topologies():
        topology = TOPOLOGIES[name]
        try:
            links = topology.links(4)
            preview = ("all pairs" if links is None else
                       " ".join(f"{a}-{b}" for a, b in links))
        except ReproError:
            # Third-party topologies may be defined for specific node
            # counts only; the preview must not break the listing.
            preview = "n/a at 4 nodes"
        rows.append([name, preview, topology.description])
    print(format_table(["name", "links (4 nodes)", "description"], rows))
    print("\nFamily names synthesise meshes on demand: grid-RxC "
          "(e.g. grid-2x3 for 6 nodes). Register custom topologies via "
          "repro.api.register_topology().")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        # Arm failpoints first — from the explicit flags where the command
        # has them, else from $REPRO_FAULTS, so `repro worker` / `repro
        # serve` subprocesses inherit a chaos schedule through their
        # environment.  With neither present every failpoint stays inert.
        from repro.faults import install_faults, install_faults_from_env

        if getattr(args, "faults", None):
            install_faults(args.faults,
                           seed=getattr(args, "faults_seed", None) or 0)
        else:
            install_faults_from_env()
        if args.command in ("run", "sweep"):
            return _cmd_run(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "worker":
            return _cmd_worker(args)
        if args.command == "submit":
            return _cmd_submit(args)
        if args.command == "jobs":
            return _cmd_jobs(args)
        if args.command == "job":
            return _cmd_job(args)
        if args.command == "cancel":
            return _cmd_cancel(args)
        if args.command == "fetch":
            return _cmd_fetch(args)
        if args.command == "chaos":
            return _cmd_chaos(args)
        if args.command == "cache":
            return _cmd_cache(args)
        if args.command == "status":
            return _cmd_status(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "list-benchmarks":
            return _cmd_list_benchmarks()
        if args.command == "list-designs":
            return _cmd_list_designs()
        if args.command == "list-partitioners":
            return _cmd_list_partitioners()
        if args.command == "list-topologies":
            return _cmd_list_topologies()
        parser.error(f"unknown command {args.command!r}")
    except (ReproError, ValueError, OSError) as error:
        print(f"repro: error: {error}", file=sys.stderr)
        _print_spec_diagnosis(error)
        return 2
    return 0


def _print_spec_diagnosis(error: Exception) -> None:
    """Surface the structured field/allowed payload of a spec error.

    Both a local :class:`SpecValidationError` and the service's 400
    response (a :class:`~repro.service.client.ServiceError` carrying the
    same payload) name the offending spec field and, where the set is
    known, the allowed values.
    """
    payload = None
    if isinstance(error, SpecValidationError):
        payload = error.to_dict()
    else:
        candidate = getattr(error, "payload", None)
        if isinstance(candidate, dict) and candidate.get("error"):
            payload = candidate
    if not payload:
        return
    if payload.get("field"):
        print(f"repro: spec field: {payload['field']}", file=sys.stderr)
    if payload.get("allowed"):
        allowed = ", ".join(str(value) for value in payload["allowed"])
        print(f"repro: allowed: {allowed}", file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
