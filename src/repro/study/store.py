"""Durable, resumable run store for studies.

A :class:`RunStore` is a directory that accumulates study results as they
are produced, so a long sweep survives a kill and re-enters where it left
off instead of losing everything held in memory:

* every ``(cell, seed-chunk)`` batch is appended to an **append-only
  shard** (one shard per plan cell) the moment the backend completes it —
  one JSON line per run record in the default ``jsonl`` format, or one
  self-contained columnar npz blob per chunk in the binary ``npz`` format
  (``shard_format="npz"`` / ``--store-format npz``),
* an immutable **manifest** (``manifest.json``, written once via temp-file
  + ``os.replace``) records the store's identity — plan fingerprint, study
  description, cell layout, chunk size — and
* an append-only **chunk log** (``chunks.log``, one fsynced JSON line per
  committed chunk with its shard byte range and checksum) records which
  chunks are durably complete.  Committing a chunk is therefore O(1)
  regardless of how many chunks the study has — a million-run sweep never
  rewrites its full state per chunk.

The store is keyed by the study's *plan fingerprint* — a SHA-256 over every
plan cell's configuration fingerprint (benchmark, design, full
``SystemConfig``, scheduling knobs, seeds) plus the partition seed — so a
directory can only ever be resumed by the exact same plan; anything else is
rejected with :class:`~repro.exceptions.StoreError`.  Because execution is
deterministic per seed, a resumed study reproduces the uninterrupted run
bit for bit: completed chunks are read back from the shards, missing chunks
are executed, and the merged :class:`~repro.study.results.ResultSet`
serialises byte-identically to the all-in-memory path.

Crash safety relies on ordering: shard bytes are flushed and fsynced
*before* the chunk-log line commits them, so a kill at any point leaves at
worst an orphaned shard tail and/or a torn final log line, both of which
:meth:`RunStore.begin` discards on the next open.  The store is
single-writer — :meth:`begin` takes an exclusive advisory lock (``flock``
on ``lock``) so a second concurrent invocation fails immediately with
:class:`~repro.exceptions.StoreError` instead of silently interleaving
appends; reads need no lock.  A shard shorter than its committed length, a
checksum mismatch, or an unparsable committed line all raise
:class:`~repro.exceptions.StoreError` naming the file.

The shard format is part of the store's durable identity: the manifest
carries a ``format`` tag (absent means ``jsonl``, the default and the
format every pre-existing store uses) and npz-format stores bump the
manifest ``schema`` so older readers fail loudly instead of misreading
binary shards.  Everything above the shard encoding — manifest, chunk log,
fsync ordering, torn-tail repair, locking, corruption detection — is
identical for both formats, and reads are format-agnostic: ``status``,
``iter_records``, ``load_results``, and resume work the same way on either.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import time
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.exceptions import ConfigurationError, StoreError, StoreWriteError
from repro.faults import failpoint
from repro.study.results import (
    KEY_FIELDS, METRIC_FIELDS, ResultSet, RunRecord,
)

__all__ = [
    "RunStore",
    "StoreChunk",
    "ProgressEvent",
    "chunk_layout",
    "encode_chunk",
    "decode_chunk",
    "DEFAULT_CHUNK_SIZE",
    "SHARD_FORMATS",
]

#: Seeds per store chunk when the caller does not choose one.  Small enough
#: that an interrupted study rarely loses more than a few seconds of work,
#: large enough that per-chunk commit overhead stays a negligible fraction
#: of execution time.
DEFAULT_CHUNK_SIZE = 32

_MANIFEST = "manifest.json"
_CHUNK_LOG = "chunks.log"
_LOCK = "lock"
_SHARD_DIR = "shards"

#: Shard encodings a store can be created with.  ``jsonl`` (the default)
#: keeps one human-greppable JSON line per record; ``npz`` packs each chunk
#: into one columnar numpy archive — one typed array per metric column —
#: which loads and aggregates an order of magnitude faster at scale.
SHARD_FORMATS = ("jsonl", "npz")

_SHARD_SUFFIX = {"jsonl": "jsonl", "npz": "npz"}

#: Suffix marking an npz member that holds per-value JSON text instead of a
#: typed array — the exact fallback for columns numpy cannot represent
#: losslessly (mixed types, bools, None, huge ints, strings with NULs).
_NPZ_JSON = "__json"


# ----------------------------------------------------------------------
# chunk codecs
# ----------------------------------------------------------------------
def _npz_pack(arrays: Dict[str, np.ndarray], name: str,
              values: List[Any]) -> None:
    """Store one column as the tightest *lossless* npz member.

    Uniform float64 / int64 / unicode arrays round-trip python floats,
    ints, and NUL-free strings exactly; every other column falls back to a
    ``<name>__json`` member holding one compact JSON document per value,
    which round-trips anything a record can legally contain (params are
    JSON-compatible by contract).  No member ever needs pickle, so the
    format stays portable and safe to load.
    """
    kinds = {type(v) for v in values}
    if values:
        if kinds == {str}:
            if not any("\x00" in v for v in values):
                arrays[name] = np.array(values, dtype=np.str_)
                return
        elif kinds == {float}:
            arrays[name] = np.array(values, dtype=np.float64)
            return
        elif kinds == {int}:
            try:
                arrays[name] = np.array(values, dtype=np.int64)
                return
            except OverflowError:
                pass
    arrays[name + _NPZ_JSON] = np.array(
        [json.dumps(v, separators=(",", ":")) for v in values],
        dtype=np.str_)


def _npz_member(npz: Any, name: str) -> Optional[List[Any]]:
    """Decode one column from an open npz archive (None if absent)."""
    if name in npz.files:
        return npz[name].tolist()
    if name + _NPZ_JSON in npz.files:
        return [json.loads(text) for text in npz[name + _NPZ_JSON].tolist()]
    return None


def _npz_available(npz: Any) -> List[str]:
    return sorted({member[:-len(_NPZ_JSON)]
                   if member.endswith(_NPZ_JSON) else member
                   for member in npz.files})


def _npz_open(data: bytes) -> Any:
    try:
        return np.load(io.BytesIO(data), allow_pickle=False)
    except (ValueError, OSError, zipfile.BadZipFile, KeyError) as error:
        raise StoreError(f"not an npz chunk: {error}") from None


def _missing_column_error(field: str, available: Sequence[str]) -> StoreError:
    metrics = [name for name in METRIC_FIELDS if name in available]
    params = [name for name in available
              if name not in METRIC_FIELDS and name not in KEY_FIELDS
              and name != "params"]
    return StoreError(
        f"store has no column {field!r}; available metrics: "
        f"{', '.join(metrics) or 'none'}; swept parameters: "
        f"{', '.join(params) or 'none'}"
    )


def _npz_params(npz: Any) -> List[Dict[str, Any]]:
    """Decode the per-record parameter mappings of one npz chunk.

    Params are stored deduplicated — a chunk covers one plan cell, so its
    records almost always share a single coordinate mapping — as an index
    array over distinct JSON documents.  Records with equal params share
    one decoded dict object.
    """
    if ("params_unique" + _NPZ_JSON not in npz.files
            or "params_index" not in npz.files):
        raise StoreError("npz chunk is missing its params columns")
    unique = [json.loads(text)
              for text in npz["params_unique" + _NPZ_JSON].tolist()]
    try:
        return [unique[i] for i in npz["params_index"].tolist()]
    except IndexError:
        raise StoreError("npz chunk params index is out of range") from None


def encode_chunk(records: Sequence[RunRecord], shard_format: str) -> bytes:
    """Serialise one chunk's records into shard bytes for ``shard_format``."""
    if shard_format == "npz":
        arrays: Dict[str, np.ndarray] = {}
        for name in KEY_FIELDS + METRIC_FIELDS:
            _npz_pack(arrays, name, [getattr(r, name) for r in records])
        unique: Dict[str, int] = {}
        index = [
            unique.setdefault(
                json.dumps(r.params, separators=(",", ":")), len(unique))
            for r in records
        ]
        arrays["params_index"] = np.array(index, dtype=np.int32)
        arrays["params_unique" + _NPZ_JSON] = np.array(
            list(unique), dtype=np.str_)
        buffer = io.BytesIO()
        np.savez(buffer, **arrays)
        return buffer.getvalue()
    lines = [json.dumps(record.to_dict(), separators=(",", ":"))
             for record in records]
    if not lines:
        return b""
    return ("\n".join(lines) + "\n").encode("utf-8")


def decode_chunk(data: bytes, shard_format: str) -> List[RunRecord]:
    """Rebuild one chunk's records from shard bytes (``encode_chunk``'s
    inverse).  Raises :class:`~repro.exceptions.StoreError` on malformed
    bytes or a missing column, naming what is available."""
    if shard_format == "npz":
        columns, params = decode_chunk_columns(data, "npz", None)
        count = len(params)
        return [
            RunRecord(**{name: columns[name][i]
                         for name in KEY_FIELDS + METRIC_FIELDS},
                      params=dict(params[i]))
            for i in range(count)
        ]
    lines = data.decode("utf-8").splitlines()
    try:
        return [RunRecord.from_dict(json.loads(line)) for line in lines]
    except (json.JSONDecodeError, ConfigurationError) as error:
        raise StoreError(f"unreadable record: {error}") from None


def decode_chunk_columns(data: bytes, shard_format: str,
                         fields: Optional[Sequence[str]]):
    """Decode only the requested columns of one chunk.

    Returns ``(columns, params)`` where ``columns`` maps each requested
    field to its value list.  ``fields=None`` decodes every fixed column
    plus the parameter mappings (the full-load path); otherwise ``params``
    is empty and a field may also name a swept parameter.  Binary shards
    pay only for the members actually requested.
    """
    if shard_format == "npz":
        with _npz_open(data) as npz:
            if fields is None:
                columns = {}
                for name in KEY_FIELDS + METRIC_FIELDS:
                    member = _npz_member(npz, name)
                    if member is None:
                        raise _missing_column_error(name, _npz_available(npz))
                    columns[name] = member
                return columns, _npz_params(npz)
            columns = {}
            param_rows: Optional[List[Dict[str, Any]]] = None
            for field in fields:
                member = _npz_member(npz, field)
                if member is not None:
                    columns[field] = member
                    continue
                if param_rows is None:
                    param_rows = _npz_params(npz)
                try:
                    columns[field] = [row[field] for row in param_rows]
                except KeyError:
                    available = set(_npz_available(npz))
                    for row in param_rows:
                        available.update(row)
                    raise _missing_column_error(
                        field, sorted(available)) from None
            return columns, []
    try:
        rows = [json.loads(line)
                for line in data.decode("utf-8").splitlines()]
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise StoreError(f"unreadable record: {error}") from None
    if fields is None:
        try:
            columns = {name: [row[name] for row in rows]
                       for name in KEY_FIELDS + METRIC_FIELDS}
            return columns, [row["params"] for row in rows]
        except KeyError as error:
            raise StoreError(
                f"record row is missing column {error.args[0]!r}"
            ) from None
    columns = {}
    for field in fields:
        values = []
        for row in rows:
            if field in row and field != "params":
                values.append(row[field])
            else:
                params = row.get("params") or {}
                if field not in params:
                    raise _missing_column_error(
                        field, [*row, *params])
                values.append(params[field])
        columns[field] = values
    return columns, []


def _holder_alive(holder: str) -> bool:
    """Whether the PID recorded in a lock file is a live local process.

    Anything unparseable counts as alive — takeover must be the provably
    safe path, never the default.  ``EPERM`` means the PID exists under
    another user, i.e. alive.
    """
    try:
        pid = int(holder)
    except ValueError:
        return True
    if pid <= 0:
        return True
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-user PIDs
        return True
    except OSError:  # pragma: no cover - exotic platforms
        return True
    return True


@dataclass(frozen=True)
class StoreChunk:
    """One durable unit of study progress: a seed range of one plan cell."""

    cell: int
    start: int
    count: int

    @property
    def id(self) -> str:
        """Stable chunk identifier used as the chunk-log key."""
        return f"{self.cell}:{self.start}"


def chunk_layout(seeds_per_cell: Sequence[int],
                 chunk_size: int) -> List[StoreChunk]:
    """Split every cell's seed range into fixed-size store chunks.

    The layout is a pure function of the plan shape and the chunk size, so
    a resuming process derives exactly the chunk boundaries the store
    committed — chunks never straddle cells, and within a cell they cover
    ``[0, chunk_size), [chunk_size, 2*chunk_size), ...`` in seed order.
    """
    if chunk_size < 1:
        raise ConfigurationError("store chunk size must be positive")
    chunks: List[StoreChunk] = []
    for cell, num_seeds in enumerate(seeds_per_cell):
        for start in range(0, num_seeds, chunk_size):
            chunks.append(StoreChunk(cell=cell, start=start,
                                     count=min(chunk_size, num_seeds - start)))
    return chunks


@dataclass(frozen=True)
class ProgressEvent:
    """Snapshot of study progress, delivered after every completed chunk.

    ``done_*`` counts include chunks served from the store at start-up
    (``resumed_*``), so ``done_chunks == total_chunks`` always means the
    study is complete regardless of how many invocations it took.
    """

    done_chunks: int
    total_chunks: int
    done_tasks: int
    total_tasks: int
    resumed_chunks: int
    resumed_tasks: int
    elapsed: float

    @property
    def executed_tasks(self) -> int:
        """Runs executed by this invocation (excludes resumed ones)."""
        return self.done_tasks - self.resumed_tasks

    @property
    def runs_per_second(self) -> float:
        """Throughput of this invocation (0.0 before any run completes)."""
        if self.elapsed <= 0.0 or self.executed_tasks <= 0:
            return 0.0
        return self.executed_tasks / self.elapsed

    @property
    def complete(self) -> bool:
        """Whether every chunk of the plan is done."""
        return self.done_chunks >= self.total_chunks

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (the ``--json-progress`` line format and the
        service status endpoint's wire format).

        ``elapsed`` is rounded to milliseconds; everything else round-trips
        exactly through :meth:`from_dict`.
        """
        return {
            "event": "progress",
            "done_chunks": self.done_chunks,
            "total_chunks": self.total_chunks,
            "done_tasks": self.done_tasks,
            "total_tasks": self.total_tasks,
            "resumed_chunks": self.resumed_chunks,
            "resumed_tasks": self.resumed_tasks,
            "elapsed": round(self.elapsed, 3),
            "runs_per_second": round(self.runs_per_second, 3),
            "complete": self.complete,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ProgressEvent":
        """Rebuild an event from its :meth:`to_dict` wire form.

        Derived fields (``runs_per_second``, ``complete``, ``event``) are
        recomputed from the counters, not trusted from the payload.
        """
        try:
            return cls(
                done_chunks=int(payload["done_chunks"]),
                total_chunks=int(payload["total_chunks"]),
                done_tasks=int(payload["done_tasks"]),
                total_tasks=int(payload["total_tasks"]),
                resumed_chunks=int(payload["resumed_chunks"]),
                resumed_tasks=int(payload["resumed_tasks"]),
                elapsed=float(payload["elapsed"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ConfigurationError(
                f"not a progress-event payload: {error}"
            ) from None


class RunStore:
    """Append-only, resumable on-disk store of one study's run records.

    Parameters
    ----------
    path:
        Store directory (created on :meth:`begin` if missing).
    chunk_size:
        Seeds per chunk for a *fresh* store.  A store that already holds a
        manifest keeps its committed layout — chunk boundaries are part of
        the durable state — and this argument is ignored on resume.
    shard_format:
        Shard encoding for a *fresh* store: ``"jsonl"`` (default) or
        ``"npz"`` (columnar binary, see :data:`SHARD_FORMATS`).  Like the
        chunk size, the committed format wins on resume, and every read
        path is format-agnostic.

    A store is bound to one plan: :meth:`begin` either initialises the
    directory with the study's plan fingerprint or verifies that the
    existing manifest carries the same fingerprint (and discards any
    partially-appended shard/log tail left by a kill).  Reading back —
    :meth:`iter_records`, :meth:`load_results`, :meth:`read_chunk` —
    verifies byte lengths, checksums, and record counts, and raises
    :class:`~repro.exceptions.StoreError` on any corruption.
    """

    SCHEMA_VERSION = 1
    #: Manifest schema written by npz-format stores.  Bumped past
    #: :data:`SCHEMA_VERSION` so pre-npz readers reject binary shards
    #: loudly instead of parsing them as JSONL.
    NPZ_SCHEMA_VERSION = 2
    SUPPORTED_SCHEMAS = (1, 2)

    def __init__(self, path: Union[str, Path],
                 chunk_size: Optional[int] = None,
                 shard_format: Optional[str] = None) -> None:
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError("store chunk size must be positive")
        if shard_format is not None and shard_format not in SHARD_FORMATS:
            raise ConfigurationError(
                f"unknown store shard format {shard_format!r} "
                f"(choose from: {', '.join(SHARD_FORMATS)})"
            )
        self.path = Path(path)
        self._requested_chunk_size = chunk_size
        self._requested_format = shard_format
        self._manifest: Optional[Dict[str, Any]] = None
        self._chunks: Optional[Dict[str, Dict[str, Any]]] = None
        self._lock_handle = None

    # ------------------------------------------------------------------
    # opening
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        """Location of the (immutable) manifest file."""
        return self.path / _MANIFEST

    @property
    def chunk_log_path(self) -> Path:
        """Location of the append-only chunk-commit log."""
        return self.path / _CHUNK_LOG

    @property
    def is_started(self) -> bool:
        """Whether the directory already holds a committed manifest."""
        return self.manifest_path.is_file()

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunStore":
        """Open an existing store for reading (status, reports, analysis)."""
        store = cls(path)
        if not store.is_started:
            raise StoreError(
                f"{store.path} is not a run store (no {_MANIFEST}); "
                f"start one with Study.run(store=...) or --store"
            )
        store._manifest = store._read_manifest()
        store._chunks = store._read_chunk_log(repair=False)
        return store

    def begin(self, fingerprint: str, study: Mapping[str, Any],
              cells: Sequence[Mapping[str, Any]]) -> None:
        """Initialise a fresh store or re-open an existing one for writing.

        ``cells`` describes the plan in order — one
        ``{"benchmark", "design", "num_seeds"}`` mapping per plan cell —
        and, with ``fingerprint`` and the study description, becomes the
        durable identity of the store.  Re-opening verifies the
        fingerprint and discards any uncommitted shard/log tail (the sign
        of a kill mid-append).  Writing is single-writer: the exclusive
        store lock is held until :meth:`release`.
        """
        if self.is_started:
            manifest = self._read_manifest()
            if manifest.get("fingerprint") != fingerprint:
                raise StoreError(
                    f"store {self.path} holds a different study "
                    f"(plan fingerprint {str(manifest.get('fingerprint'))[:12]}… "
                    f"!= {fingerprint[:12]}…); point --store at a fresh "
                    f"directory or re-run the original plan"
                )
            self._manifest = manifest
            self._acquire_lock()
            self._chunks = self._read_chunk_log(repair=True)
            self._repair_shards()
            return
        (self.path / _SHARD_DIR).mkdir(parents=True, exist_ok=True)
        self._acquire_lock()
        total_tasks = sum(int(cell["num_seeds"]) for cell in cells)
        chunk_size = self._requested_chunk_size or DEFAULT_CHUNK_SIZE
        shard_format = self._requested_format or "jsonl"
        suffix = _SHARD_SUFFIX[shard_format]
        self._manifest = {
            "schema": (self.NPZ_SCHEMA_VERSION if shard_format == "npz"
                       else self.SCHEMA_VERSION),
            "format": shard_format,
            "fingerprint": fingerprint,
            "chunk_size": chunk_size,
            "study": dict(study),
            "cells": [
                {
                    "benchmark": str(cell["benchmark"]),
                    "design": str(cell["design"]),
                    "num_seeds": int(cell["num_seeds"]),
                    "shard": f"{_SHARD_DIR}/cell-{index:05d}.{suffix}",
                }
                for index, cell in enumerate(cells)
            ],
            "total_tasks": total_tasks,
            "total_chunks": len(chunk_layout(
                [int(cell["num_seeds"]) for cell in cells], chunk_size)),
            "created": time.time(),
        }
        self._chunks = {}
        self._write_manifest()

    # ------------------------------------------------------------------
    # locking
    # ------------------------------------------------------------------
    def _acquire_lock(self) -> None:
        """Take the exclusive writer lock, failing fast if another process
        (or another handle in this one) is mid-study on the same store.

        A contended lock whose recorded holder PID is *dead* is stale —
        ``flock`` normally dies with its process, so a held lock under a
        dead PID means the flock survives on an inherited file descriptor
        (e.g. a forked pool worker that outlived the driver) or an odd
        filesystem.  The takeover breaks it by unlinking the lock file and
        locking a fresh inode: the stale flock keeps guarding the orphaned
        inode, nobody else can reach it, and the store proceeds.  (Two
        simultaneous takeovers of the same dead holder have the classic
        tiny pidfile race; chunk commits being idempotent bounds the harm.)
        """
        if self._lock_handle is not None:
            return
        for takeover in (False, True):
            handle = open(self.path / _LOCK, "a+")
            try:
                import fcntl
            except ImportError:  # pragma: no cover - non-POSIX platforms
                self._lock_handle = handle
                return
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                # The holder wrote its PID into the lock file on acquire, so
                # the error can name who to wait for (or kill).
                try:
                    handle.seek(0)
                    holder = handle.read(64).strip() or "unknown"
                except OSError:  # pragma: no cover - lock file unreadable
                    holder = "unknown"
                handle.close()
                if not takeover and not _holder_alive(holder):
                    try:
                        os.unlink(self.path / _LOCK)
                    except OSError:  # pragma: no cover - raced takeover
                        pass
                    continue
                raise StoreError(
                    f"store {self.path} is locked by another running study "
                    f"(held by PID {holder}); two concurrent writers would "
                    f"corrupt the store — wait for that invocation to finish "
                    f"(or kill it) and re-run to resume; inspect progress "
                    f"with `repro status --store {self.path}`"
                ) from None
            # Advertise ourselves as the holder for later contenders.
            handle.truncate(0)
            handle.write(str(os.getpid()))
            handle.flush()
            self._lock_handle = handle
            return

    def release(self) -> None:
        """Release the writer lock (held from :meth:`begin`; reads never
        lock).  Dropped automatically when the process exits, so a killed
        study leaves the store immediately resumable."""
        if self._lock_handle is not None:
            self._lock_handle.close()
            self._lock_handle = None

    # ------------------------------------------------------------------
    # manifest / chunk-log plumbing
    # ------------------------------------------------------------------
    def _read_manifest(self) -> Dict[str, Any]:
        try:
            manifest = json.loads(self.manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise StoreError(
                f"cannot read store manifest {self.manifest_path}: {error}"
            ) from None
        if not isinstance(manifest, dict) or "cells" not in manifest:
            raise StoreError(
                f"{self.manifest_path} is not a run-store manifest"
            )
        schema = manifest.get("schema")
        if schema not in self.SUPPORTED_SCHEMAS:
            supported = ", ".join(str(s) for s in self.SUPPORTED_SCHEMAS)
            raise StoreError(
                f"unsupported store schema {schema!r} in {self.manifest_path} "
                f"(this build reads schemas {supported}); the store was "
                f"written by a newer repro — upgrade this checkout, or "
                f"re-run the study into a fresh --store directory to "
                f"rewrite it in a supported format"
            )
        shard_format = manifest.get("format", "jsonl")
        if shard_format not in SHARD_FORMATS:
            raise StoreError(
                f"unknown shard format {shard_format!r} in "
                f"{self.manifest_path} (this build supports: "
                f"{', '.join(SHARD_FORMATS)})"
            )
        return manifest

    def _write_manifest(self) -> None:
        """Write the immutable store identity, atomically (once, at begin)."""
        data = json.dumps(self._require_manifest(),
                          separators=(",", ":")).encode("utf-8")
        tmp = self.manifest_path.with_suffix(".json.tmp")
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.manifest_path)
        self._sync_directory()

    def _sync_directory(self, directory: Optional[Path] = None) -> None:
        # Persist renames/creations themselves; best-effort on filesystems
        # that refuse to fsync a directory handle.
        try:
            fd = os.open(directory if directory is not None else self.path,
                         os.O_RDONLY)
        except OSError:  # pragma: no cover - exotic filesystems
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - exotic filesystems
            pass
        finally:
            os.close(fd)

    def _read_chunk_log(self, repair: bool) -> Dict[str, Dict[str, Any]]:
        """Parse the chunk-commit log, discarding a torn final line.

        A line is committed only once its trailing newline is on disk; a
        torn tail (kill mid-append) is dropped — and, when ``repair`` is
        set, truncated away so future appends start on a clean boundary.
        An unreadable line *before* the tail means committed data was
        damaged and raises.
        """
        entries: Dict[str, Dict[str, Any]] = {}
        path = self.chunk_log_path
        if not path.exists():
            return entries
        data = path.read_bytes()
        good = 0
        for raw in data.splitlines(keepends=True):
            if not raw.endswith(b"\n"):
                break  # torn tail: this commit never completed
            line = raw.strip()
            if line:
                try:
                    entry = json.loads(line.decode("utf-8"))
                    chunk_id = str(entry["id"])
                    for key in ("cell", "start", "count", "offset", "length"):
                        entry[key] = int(entry[key])
                    str(entry["sha256"])
                except (ValueError, KeyError) as error:
                    raise StoreError(
                        f"store chunk log {path} holds an unreadable "
                        f"committed entry: {error}; the store is corrupt"
                    ) from None
                entries[chunk_id] = entry
            good += len(raw)
        if repair and good < len(data):
            with open(path, "rb+") as handle:
                handle.truncate(good)
        return entries

    def _require_manifest(self) -> Dict[str, Any]:
        if self._manifest is None:
            if not self.is_started:
                raise StoreError(
                    f"{self.path} is not a run store (no {_MANIFEST}); "
                    f"start one with Study.run(store=...) or --store"
                )
            self._manifest = self._read_manifest()
        return self._manifest

    def _require_chunks(self) -> Dict[str, Dict[str, Any]]:
        if self._chunks is None:
            self._require_manifest()
            self._chunks = self._read_chunk_log(repair=False)
        return self._chunks

    def _repair_shards(self) -> None:
        """Truncate uncommitted shard tails; reject shards missing data.

        The append protocol fsyncs shard bytes before the chunk log
        commits them, so extra bytes past the last committed range are an
        interrupted append (safe to discard) while *missing* bytes mean
        committed data itself is gone (unrecoverable corruption).
        """
        manifest = self._require_manifest()
        committed: Dict[int, int] = {}
        for entry in self._require_chunks().values():
            end = entry["offset"] + entry["length"]
            committed[entry["cell"]] = max(committed.get(entry["cell"], 0), end)
        for cell, end in committed.items():
            shard = self.path / manifest["cells"][cell]["shard"]
            try:
                size = shard.stat().st_size
            except OSError:
                raise StoreError(
                    f"store shard {shard} is missing but the chunk log "
                    f"commits {end} bytes of it; the store is corrupt"
                ) from None
            if size < end:
                raise StoreError(
                    f"store shard {shard} holds {size} bytes but the "
                    f"chunk log commits {end}; the store is corrupt"
                )
            if size > end:
                with open(shard, "rb+") as handle:
                    handle.truncate(end)

    # ------------------------------------------------------------------
    # layout / progress
    # ------------------------------------------------------------------
    @property
    def chunk_size(self) -> int:
        """Seeds per chunk (the committed layout once the store is open)."""
        if self._manifest is not None:
            return int(self._manifest["chunk_size"])
        return self._requested_chunk_size or DEFAULT_CHUNK_SIZE

    @property
    def shard_format(self) -> str:
        """Shard encoding (the committed format once the store is open)."""
        if self._manifest is not None:
            return str(self._manifest.get("format", "jsonl"))
        if self.is_started:
            return str(self._require_manifest().get("format", "jsonl"))
        return self._requested_format or "jsonl"

    @property
    def fingerprint(self) -> str:
        """Plan fingerprint the store is bound to."""
        return str(self._require_manifest()["fingerprint"])

    @property
    def study(self) -> Dict[str, Any]:
        """The stored study description (result-set metadata on load)."""
        return self._require_manifest()["study"]

    def chunks(self) -> List[StoreChunk]:
        """The full chunk layout of the plan, in plan order."""
        manifest = self._require_manifest()
        return chunk_layout(
            [int(cell["num_seeds"]) for cell in manifest["cells"]],
            int(manifest["chunk_size"]),
        )

    def completed_ids(self) -> set:
        """Identifiers of the chunks the log has committed."""
        return set(self._require_chunks())

    @property
    def is_complete(self) -> bool:
        """Whether every chunk of the plan has been committed."""
        return (len(self._require_chunks())
                >= int(self._require_manifest()["total_chunks"]))

    def summary(self) -> Dict[str, Any]:
        """Flat store summary (the ``status`` subcommand's payload)."""
        manifest = self._require_manifest()
        chunks = self._require_chunks()
        done_tasks = sum(entry["count"] for entry in chunks.values())
        benchmarks = list(dict.fromkeys(
            cell["benchmark"] for cell in manifest["cells"]))
        designs = list(dict.fromkeys(
            cell["design"] for cell in manifest["cells"]))
        try:
            updated = self.chunk_log_path.stat().st_mtime
        except OSError:
            updated = manifest.get("created")
        return {
            "path": str(self.path),
            "name": manifest["study"].get("name"),
            "fingerprint": manifest["fingerprint"],
            "format": manifest.get("format", "jsonl"),
            "chunk_size": int(manifest["chunk_size"]),
            "cells": len(manifest["cells"]),
            "benchmarks": benchmarks,
            "designs": designs,
            "done_chunks": len(chunks),
            "total_chunks": int(manifest["total_chunks"]),
            "done_tasks": done_tasks,
            "total_tasks": int(manifest["total_tasks"]),
            "complete": self.is_complete,
            "updated": updated,
        }

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append_chunk(self, chunk: StoreChunk,
                     records: Sequence[RunRecord]) -> None:
        """Durably commit one completed chunk (shard append, then log line).

        The records must be the chunk's runs in seed order.  Once this
        method returns, the chunk survives a kill: its bytes are fsynced
        in the shard and the fsynced chunk-log line names them.  Both
        writes are O(chunk), never O(store).

        Degrades gracefully when the filesystem fails (``ENOSPC``, I/O
        errors, injected faults at the ``store.fsync``,
        ``store.shard.write``, and ``store.log.append`` failpoints): the
        failing chunk is simply *not committed* and a structured
        :class:`~repro.exceptions.StoreWriteError` carries the resume
        point — every previously committed chunk stays durable, and a
        freshly loaded store resumes from exactly there after repairing
        any torn tail this failure left.
        """
        manifest = self._require_manifest()
        chunks = self._require_chunks()
        if len(records) != chunk.count:
            raise StoreError(
                f"chunk {chunk.id} expects {chunk.count} records, "
                f"got {len(records)}"
            )
        if chunk.id in chunks:
            return  # already durable; re-commits are harmless no-ops
        data = encode_chunk(records, self.shard_format)
        shard = self.path / manifest["cells"][chunk.cell]["shard"]
        try:
            shard_is_new = not shard.exists()
            with open(shard, "ab") as handle:
                offset = handle.tell()
                action = failpoint("store.shard.write")
                if action is not None and action.kind == "torn":
                    # Tear the append: part of the payload reaches the
                    # shard, the commit record never follows.  Reopen
                    # truncates the orphaned tail (_repair_shards).
                    handle.write(data[: max(1, len(data) // 2)])
                    handle.flush()
                    os.fsync(handle.fileno())
                    raise action.error()
                handle.write(data)
                handle.flush()
                failpoint("store.fsync")
                os.fsync(handle.fileno())
            if shard_is_new:
                # A fsynced file whose directory entry is lost to a power
                # cut would make the committed chunk unreadable; pin the
                # creation before the log line commits it.
                self._sync_directory(shard.parent)
            entry = {
                "id": chunk.id,
                "cell": chunk.cell,
                "start": chunk.start,
                "count": chunk.count,
                "offset": offset,
                "length": len(data),
                "sha256": hashlib.sha256(data).hexdigest(),
            }
            line = (json.dumps(entry, separators=(",", ":"))
                    + "\n").encode("utf-8")
            log_is_new = not self.chunk_log_path.exists()
            with open(self.chunk_log_path, "ab") as handle:
                action = failpoint("store.log.append")
                if action is not None and action.kind == "torn":
                    # Tear the commit line itself; without its trailing
                    # newline it is not committed, and reopen truncates it.
                    handle.write(line[: max(1, len(line) // 2)])
                    handle.flush()
                    os.fsync(handle.fileno())
                    raise action.error()
                handle.write(line)
                handle.flush()
                failpoint("store.fsync")
                os.fsync(handle.fileno())
            if log_is_new:
                self._sync_directory()
        except OSError as error:
            committed_runs = sum(e["count"] for e in chunks.values())
            raise StoreWriteError(
                f"cannot durably append chunk {chunk.id} to store "
                f"{self.path}: {error}; the {len(chunks)} committed "
                f"chunk(s) covering {committed_runs} run(s) remain "
                f"durable — reload the store to resume from there",
                errno=getattr(error, "errno", None),
                committed_chunks=len(chunks),
                committed_runs=committed_runs,
            ) from error
        chunks[chunk.id] = entry

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def _read_chunk_bytes(self, chunk: StoreChunk) -> tuple:
        """Fetch one committed chunk's verified bytes (+ shard path, entry)."""
        manifest = self._require_manifest()
        entry = self._require_chunks().get(chunk.id)
        if entry is None:
            raise StoreError(
                f"chunk {chunk.id} is not committed in store {self.path}"
            )
        shard = self.path / manifest["cells"][chunk.cell]["shard"]
        try:
            with open(shard, "rb") as handle:
                handle.seek(entry["offset"])
                data = handle.read(entry["length"])
        except OSError as error:
            raise StoreError(
                f"cannot read store shard {shard}: {error}"
            ) from None
        if len(data) != entry["length"]:
            raise StoreError(
                f"store shard {shard} is truncated: chunk {chunk.id} "
                f"expects {entry['length']} bytes at offset "
                f"{entry['offset']}, got {len(data)}; the store is corrupt"
            )
        if hashlib.sha256(data).hexdigest() != entry["sha256"]:
            raise StoreError(
                f"store shard {shard} fails its checksum for chunk "
                f"{chunk.id}; the store is corrupt — delete the store "
                f"directory and re-run to recompute"
            )
        return data, shard, entry

    def read_chunk(self, chunk: StoreChunk) -> List[RunRecord]:
        """Read back one committed chunk, verifying its integrity."""
        data, shard, entry = self._read_chunk_bytes(chunk)
        if self.shard_format == "jsonl":
            lines = data.decode("utf-8").splitlines()
            if len(lines) != entry["count"]:
                raise StoreError(
                    f"store shard {shard} holds {len(lines)} records for "
                    f"chunk {chunk.id}, expected {entry['count']}; the "
                    f"store is corrupt"
                )
            try:
                return [RunRecord.from_dict(json.loads(line))
                        for line in lines]
            except (json.JSONDecodeError, ConfigurationError) as error:
                raise StoreError(
                    f"store shard {shard} holds an unreadable record in "
                    f"chunk {chunk.id}: {error}; the store is corrupt"
                ) from None
        try:
            records = decode_chunk(data, self.shard_format)
        except StoreError as error:
            raise StoreError(
                f"store shard {shard} holds an unreadable record in chunk "
                f"{chunk.id}: {error}; the store is corrupt"
            ) from None
        if len(records) != entry["count"]:
            raise StoreError(
                f"store shard {shard} holds {len(records)} records for "
                f"chunk {chunk.id}, expected {entry['count']}; the store "
                f"is corrupt"
            )
        return records

    def read_chunk_columns(self, chunk: StoreChunk,
                           fields: Sequence[str]) -> Dict[str, List[Any]]:
        """Read only the requested columns of one committed chunk.

        ``fields`` may name fixed record columns or swept parameters.
        Binary shards decode just the requested members; a field absent
        from the store raises :class:`~repro.exceptions.StoreError` naming
        the available metric columns and swept parameters.
        """
        data, shard, entry = self._read_chunk_bytes(chunk)
        try:
            columns, _ = decode_chunk_columns(data, self.shard_format,
                                              list(fields))
        except StoreError as error:
            if "has no column" in str(error):
                raise StoreError(f"store {self.path}: {error}") from None
            raise StoreError(
                f"store shard {shard} holds an unreadable record in chunk "
                f"{chunk.id}: {error}; the store is corrupt"
            ) from None
        for name, values in columns.items():
            if len(values) != entry["count"]:
                raise StoreError(
                    f"store shard {shard} holds {len(values)} values of "
                    f"column {name!r} for chunk {chunk.id}, expected "
                    f"{entry['count']}; the store is corrupt"
                )
        return columns

    def iter_column_blocks(self, fields: Sequence[str]
                           ) -> Iterator[Dict[str, List[Any]]]:
        """Stream the requested columns chunk by chunk, in plan order.

        The columnar analogue of :meth:`iter_records`: one block — a
        ``{field: values}`` mapping covering one committed chunk — is
        materialised at a time, so streaming aggregation
        (:func:`~repro.study.results.aggregate_stream`) runs in bounded
        memory and never builds record objects at all.
        """
        completed = self.completed_ids()
        fields = list(fields)
        for chunk in self.chunks():
            if chunk.id in completed:
                yield self.read_chunk_columns(chunk, fields)

    def iter_records(self) -> Iterator[RunRecord]:
        """Stream every committed record in plan order, chunk by chunk.

        Only one chunk is materialised at a time, so incremental consumers
        (:func:`~repro.study.results.aggregate_stream`) aggregate
        million-run stores without holding every record in memory.
        Uncommitted chunks are skipped; use :meth:`load_results` (or check
        :attr:`is_complete`) when completeness matters.
        """
        completed = self.completed_ids()
        for chunk in self.chunks():
            if chunk.id in completed:
                yield from self.read_chunk(chunk)

    def load_results(self, allow_partial: bool = False) -> ResultSet:
        """Materialise the stored records as a :class:`ResultSet`.

        The result is byte-identical (``to_json``) to what
        :meth:`Study.run` returned for the same plan — records in plan
        order, metadata from the stored study description.  An incomplete
        store raises unless ``allow_partial`` is set.

        Binary (npz) stores load straight into the result set's columnar
        backing without materialising record objects, which is where the
        order-of-magnitude load speedup comes from.
        """
        if not allow_partial and not self.is_complete:
            raise StoreError(
                f"store {self.path} is incomplete "
                f"({len(self._require_chunks())}"
                f"/{self._require_manifest()['total_chunks']} chunks); "
                f"resume the study to finish it, or pass allow_partial=True "
                f"to load what exists"
            )
        if self.shard_format == "npz":
            # Hot path: keep each chunk's typed members as numpy arrays
            # and concatenate per column, so a 100k-record load never
            # round-trips through python objects (json-fallback members
            # degrade that one column to an object array, values intact).
            parts: Dict[str, List[Any]] = {
                name: [] for name in KEY_FIELDS + METRIC_FIELDS}
            params: List[Dict[str, Any]] = []
            completed = self.completed_ids()
            for chunk in self.chunks():
                if chunk.id not in completed:
                    continue
                data, shard, entry = self._read_chunk_bytes(chunk)
                try:
                    with _npz_open(data) as npz:
                        for name in parts:
                            if name in npz.files:
                                parts[name].append(npz[name])
                            else:
                                member = _npz_member(npz, name)
                                if member is None:
                                    raise _missing_column_error(
                                        name, _npz_available(npz))
                                parts[name].append(member)
                        block_params = _npz_params(npz)
                except StoreError as error:
                    if "has no column" in str(error):
                        raise StoreError(
                            f"store {self.path}: {error}") from None
                    raise StoreError(
                        f"store shard {shard} holds an unreadable record "
                        f"in chunk {chunk.id}: {error}; the store is corrupt"
                    ) from None
                if len(block_params) != entry["count"]:
                    raise StoreError(
                        f"store shard {shard} holds {len(block_params)} "
                        f"records for chunk {chunk.id}, expected "
                        f"{entry['count']}; the store is corrupt"
                    )
                params.extend(block_params)
            columns: Dict[str, Any] = {}
            for name, chunks_of in parts.items():
                if (chunks_of
                        and all(isinstance(c, np.ndarray) for c in chunks_of)
                        and len({c.dtype.kind for c in chunks_of}) == 1):
                    columns[name] = np.concatenate(chunks_of)
                else:
                    flat: List[Any] = []
                    for part in chunks_of:
                        flat.extend(part.tolist()
                                    if isinstance(part, np.ndarray) else part)
                    columns[name] = flat
            return ResultSet._from_columns(columns, params,
                                           metadata=self.study)
        return ResultSet(list(self.iter_records()), metadata=self.study)

    def __repr__(self) -> str:
        state = "unopened"
        if self._manifest is not None and self._chunks is not None:
            state = (f"{len(self._chunks)}"
                     f"/{self._manifest['total_chunks']} chunks")
        return f"RunStore({str(self.path)!r}, {state})"
