"""Named benchmark suite reproducing Table I of the paper.

The registry maps the six benchmark names used in the evaluation section
(TLIM-32, QAOA-r4-32, QAOA-r8-32, QFT-32, QAOA-r4-64, QAOA-r8-64) to
deterministic circuit builders, together with the gate-count properties the
paper reports.  Our QAOA instances are drawn from the same random-regular
families but are not the authors' exact graph instances, so their local vs
remote splits match Table I in magnitude rather than exactly; TLIM and QFT
match exactly.

Beyond Table I, the three benchmark *families* synthesise further sizes on
demand: any name of the form ``TLIM-<n>``, ``QFT-<n>``, or
``QAOA-r<d>-<n>`` resolves to a deterministic circuit of that size (e.g.
``QAOA-r4-16`` for quick CI studies), without appearing in
:func:`list_benchmarks` — the listing stays the Table I suite.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.benchmarks.qaoa import qaoa_regular_circuit
from repro.benchmarks.qft import qft_circuit
from repro.benchmarks.tlim import tlim_circuit
from repro.circuits.circuit import QuantumCircuit
from repro.exceptions import BenchmarkError

__all__ = [
    "BenchmarkSpec",
    "BENCHMARKS",
    "get_benchmark",
    "build_benchmark",
    "list_benchmarks",
    "register_benchmark",
    "benchmark_properties",
]


@dataclass(frozen=True)
class BenchmarkSpec:
    """Description of one named benchmark.

    Attributes
    ----------
    name:
        Benchmark name as used in the paper.
    num_qubits:
        Data-qubit count (also the circuit register size).
    builder:
        Zero-argument callable producing the circuit.
    paper_local_2q / paper_remote_2q / paper_1q / paper_depth:
        Values reported in Table I of the paper, kept for the comparison
        report (``None`` where the paper does not report a value).
    description:
        One-line human description.

    Example
    -------
    >>> spec = BenchmarkSpec("GHZ-4", 4, lambda: ghz_circuit(4))  # doctest: +SKIP
    >>> spec.build().num_qubits  # doctest: +SKIP
    4
    """

    name: str
    num_qubits: int
    builder: Callable[[], QuantumCircuit]
    paper_local_2q: Optional[int] = None
    paper_remote_2q: Optional[int] = None
    paper_1q: Optional[int] = None
    paper_depth: Optional[int] = None
    description: str = ""

    def build(self) -> QuantumCircuit:
        """Construct the benchmark circuit."""
        circuit = self.builder()
        circuit.name = self.name
        return circuit


def _spec_list() -> List[BenchmarkSpec]:
    return [
        BenchmarkSpec(
            name="TLIM-32",
            num_qubits=32,
            builder=lambda: tlim_circuit(32, num_steps=10),
            paper_local_2q=300,
            paper_remote_2q=10,
            paper_1q=640,
            paper_depth=40,
            description="1D transverse-longitudinal Ising quench, 10 Trotter steps",
        ),
        BenchmarkSpec(
            name="QAOA-r4-32",
            num_qubits=32,
            builder=lambda: qaoa_regular_circuit(32, 4, layers=1, seed=7),
            paper_local_2q=52,
            paper_remote_2q=12,
            paper_1q=64,
            paper_depth=21,
            description="QAOA MaxCut on a random 4-regular graph, 32 vertices",
        ),
        BenchmarkSpec(
            name="QAOA-r8-32",
            num_qubits=32,
            builder=lambda: qaoa_regular_circuit(32, 8, layers=1, seed=11),
            paper_local_2q=91,
            paper_remote_2q=34,
            paper_1q=64,
            paper_depth=64,
            description="QAOA MaxCut on a random 8-regular graph, 32 vertices",
        ),
        BenchmarkSpec(
            name="QFT-32",
            num_qubits=32,
            builder=lambda: qft_circuit(32),
            paper_local_2q=240,
            paper_remote_2q=256,
            paper_1q=32,
            paper_depth=63,
            description="32-qubit quantum Fourier transform (all-to-all)",
        ),
        BenchmarkSpec(
            name="QAOA-r4-64",
            num_qubits=64,
            builder=lambda: qaoa_regular_circuit(64, 4, layers=1, seed=13),
            paper_local_2q=104,
            paper_remote_2q=28,
            paper_1q=128,
            paper_depth=24,
            description="QAOA MaxCut on a random 4-regular graph, 64 vertices",
        ),
        BenchmarkSpec(
            name="QAOA-r8-64",
            num_qubits=64,
            builder=lambda: qaoa_regular_circuit(64, 8, layers=1, seed=17),
            paper_local_2q=174,
            paper_remote_2q=82,
            paper_1q=128,
            paper_depth=84,
            description="QAOA MaxCut on a random 8-regular graph, 64 vertices",
        ),
    ]


BENCHMARKS: Dict[str, BenchmarkSpec] = {spec.name: spec for spec in _spec_list()}


def list_benchmarks() -> List[str]:
    """Names of all registered benchmarks, in Table I order.

    Example
    -------
    >>> from repro.benchmarks.registry import list_benchmarks
    >>> "TLIM-32" in list_benchmarks()
    True
    """
    return list(BENCHMARKS)


def register_benchmark(spec: BenchmarkSpec,
                       overwrite: bool = False) -> BenchmarkSpec:
    """Register a benchmark spec under its name.

    The entry-point for third-party workloads: once registered, the name is
    usable everywhere a Table I benchmark is — ``Study(benchmarks=...)``,
    spec files, and the CLI.  Returns the spec for call-site chaining.

    Example
    -------
    ::

        from repro import api

        api.register_benchmark(api.BenchmarkSpec(
            name="GHZ-8", num_qubits=8, builder=build_ghz_circuit,
            description="8-qubit GHZ state preparation"))
        Study(benchmarks="GHZ-8", num_runs=5).run()
    """
    if not spec.name:
        raise BenchmarkError("benchmark spec needs a non-empty name")
    existing = next((key for key in BENCHMARKS
                     if key.lower() == spec.name.lower()), None)
    if existing is not None and not overwrite:
        raise BenchmarkError(
            f"benchmark {spec.name!r} is already registered; pass "
            f"overwrite=True to replace it"
        )
    if existing is not None:
        del BENCHMARKS[existing]
    BENCHMARKS[spec.name] = spec
    return spec


#: Synthesised family specs, memoised so repeated lookups share one spec.
_FAMILY_CACHE: Dict[str, BenchmarkSpec] = {}

_TLIM_RE = re.compile(r"tlim-(\d+)$")
_QFT_RE = re.compile(r"qft-(\d+)$")
_QAOA_RE = re.compile(r"qaoa-r(\d+)-(\d+)$")


def _family_spec(name: str) -> Optional[BenchmarkSpec]:
    """Synthesise a spec for a family name (``TLIM-<n>`` etc.), or ``None``.

    Instances are deterministic per name: TLIM uses 10 Trotter steps like
    Table I, QFT is parameter-free, and QAOA draws its random-regular graph
    from seed ``degree`` (the Table I entries keep their own seeds because
    registry names take precedence over family synthesis).
    """
    key = name.lower()
    cached = _FAMILY_CACHE.get(key)
    if cached is not None:
        return cached

    match = _TLIM_RE.fullmatch(key)
    if match:
        size = int(match.group(1))
        spec = BenchmarkSpec(
            name=f"TLIM-{size}",
            num_qubits=size,
            builder=lambda: tlim_circuit(size, num_steps=10),
            description=f"TLIM family member ({size} qubits, not in Table I)",
        )
        return _FAMILY_CACHE.setdefault(key, spec)

    match = _QFT_RE.fullmatch(key)
    if match:
        size = int(match.group(1))
        spec = BenchmarkSpec(
            name=f"QFT-{size}",
            num_qubits=size,
            builder=lambda: qft_circuit(size),
            description=f"QFT family member ({size} qubits, not in Table I)",
        )
        return _FAMILY_CACHE.setdefault(key, spec)

    match = _QAOA_RE.fullmatch(key)
    if match:
        degree, size = int(match.group(1)), int(match.group(2))
        spec = BenchmarkSpec(
            name=f"QAOA-r{degree}-{size}",
            num_qubits=size,
            builder=lambda: qaoa_regular_circuit(size, degree, layers=1,
                                                 seed=degree),
            description=f"QAOA MaxCut family member ({degree}-regular, "
                        f"{size} vertices, not in Table I)",
        )
        return _FAMILY_CACHE.setdefault(key, spec)
    return None


def get_benchmark(name: str) -> BenchmarkSpec:
    """Look up a benchmark spec by (case-insensitive) name.

    Table I names resolve to their registry entries; other members of the
    TLIM / QAOA / QFT families (e.g. ``QAOA-r4-16``) are synthesised on
    demand.  Invalid sizes surface as :class:`BenchmarkError` when the
    circuit is built.

    Example
    -------
    >>> from repro.benchmarks.registry import get_benchmark
    >>> get_benchmark("qaoa-r4-16").num_qubits
    16
    """
    for key, spec in BENCHMARKS.items():
        if key.lower() == name.lower():
            return spec
    family = _family_spec(name)
    if family is not None:
        return family
    raise BenchmarkError(
        f"unknown benchmark {name!r}; available: {', '.join(BENCHMARKS)} "
        f"plus family names TLIM-<n>, QAOA-r<d>-<n>, QFT-<n>"
    )


def build_benchmark(name: str) -> QuantumCircuit:
    """Build the circuit for a named benchmark.

    Example
    -------
    >>> from repro.benchmarks.registry import build_benchmark
    >>> build_benchmark("QFT-16").num_qubits
    16
    """
    return get_benchmark(name).build()


def benchmark_properties(name: str) -> Dict[str, int]:
    """Structural properties of a benchmark circuit (Table I columns).

    The remote/local two-qubit split requires a partition and is computed by
    :mod:`repro.partitioning.assigner`; this function reports the
    partition-independent columns.
    """
    circuit = build_benchmark(name)
    return {
        "qubits": circuit.num_qubits,
        "two_qubit": circuit.num_two_qubit_gates(),
        "single_qubit": circuit.num_single_qubit_gates(),
        "depth": int(circuit.depth()),
    }
