"""QAOA-MaxCut benchmark circuits on random regular graphs.

The paper evaluates QAOA for MaxCut on random regular graphs of degree 4 and
8 (benchmarks ``QAOA-r4-32``, ``QAOA-r8-32``, ``QAOA-r4-64``, ``QAOA-r8-64``).
A depth-``p`` QAOA circuit applies a Hadamard on every qubit, then ``p``
alternating layers of the problem unitary (one RZZ per graph edge) and the
mixer unitary (one RX per qubit).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.benchmarks.graphs import is_regular, random_regular_graph
from repro.circuits.circuit import QuantumCircuit
from repro.exceptions import BenchmarkError

__all__ = ["QAOAParameters", "qaoa_maxcut_circuit", "qaoa_regular_circuit"]

Edge = Tuple[int, int]


@dataclass(frozen=True)
class QAOAParameters:
    """Variational angles of a depth-``p`` QAOA circuit.

    ``gammas`` parameterise the problem layers (RZZ angles) and ``betas`` the
    mixer layers (RX angles); both must have length ``p``.
    """

    gammas: Tuple[float, ...] = (0.8,)
    betas: Tuple[float, ...] = (0.4,)

    def __post_init__(self) -> None:
        if len(self.gammas) != len(self.betas):
            raise BenchmarkError("gammas and betas must have the same length")
        if not self.gammas:
            raise BenchmarkError("QAOA needs at least one layer")

    @property
    def depth(self) -> int:
        """The QAOA depth ``p``."""
        return len(self.gammas)


def qaoa_maxcut_circuit(
    num_qubits: int,
    edges: Sequence[Edge],
    parameters: QAOAParameters = QAOAParameters(),
    name: Optional[str] = None,
) -> QuantumCircuit:
    """Build a QAOA-MaxCut circuit for an explicit edge list.

    Parameters
    ----------
    num_qubits:
        Number of graph vertices / qubits.
    edges:
        Graph edges; each edge contributes one RZZ gate per problem layer.
    parameters:
        Variational angles (structure does not depend on their values).
    name:
        Optional circuit name.
    """
    circuit = QuantumCircuit(num_qubits, name=name or f"QAOA-{num_qubits}")
    for a, b in edges:
        if not (0 <= a < num_qubits and 0 <= b < num_qubits) or a == b:
            raise BenchmarkError(f"invalid edge ({a}, {b}) for {num_qubits} qubits")

    for qubit in range(num_qubits):
        circuit.h(qubit)
    for gamma, beta in zip(parameters.gammas, parameters.betas):
        for a, b in edges:
            circuit.rzz(2.0 * gamma, a, b)
        for qubit in range(num_qubits):
            circuit.rx(2.0 * beta, qubit)
    return circuit


def qaoa_regular_circuit(
    num_qubits: int,
    degree: int,
    layers: int = 1,
    seed: int = 7,
    name: Optional[str] = None,
) -> QuantumCircuit:
    """Build QAOA-MaxCut for a random ``degree``-regular graph.

    This is the constructor behind the ``QAOA-r<d>-<n>`` benchmarks: the
    graph instance is drawn deterministically from ``seed`` so that repeated
    runs (and the Table I property report) see the same circuit.

    Parameters
    ----------
    num_qubits:
        Graph size (32 or 64 in the paper).
    degree:
        Vertex degree (4 or 8 in the paper).
    layers:
        QAOA depth ``p``; the paper's gate counts correspond to ``p = 1``.
    seed:
        Seed for graph generation.
    name:
        Optional circuit name; defaults to ``QAOA-r<degree>-<num_qubits>``.
    """
    edges = random_regular_graph(num_qubits, degree, seed=seed)
    if not is_regular(edges, num_qubits, degree):
        raise BenchmarkError("generated graph is not regular")
    # Linearly spaced default angles — typical warm-start heuristic.
    gammas = tuple(0.8 * (k + 1) / layers for k in range(layers))
    betas = tuple(0.4 * (layers - k) / layers for k in range(layers))
    parameters = QAOAParameters(gammas=gammas, betas=betas)
    return qaoa_maxcut_circuit(
        num_qubits,
        edges,
        parameters,
        name=name or f"QAOA-r{degree}-{num_qubits}",
    )


def maxcut_value(edges: Sequence[Edge], assignment: Sequence[int]) -> int:
    """Classical MaxCut objective of a ±1 / 0-1 assignment.

    Provided for the examples (quality of QAOA-inspired rounding) and tests.
    """
    cut = 0
    for a, b in edges:
        if assignment[a] != assignment[b]:
            cut += 1
    return cut
