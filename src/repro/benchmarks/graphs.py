"""Deterministic random-regular-graph construction.

QAOA-MaxCut benchmarks in the paper are defined on random *d*-regular graphs
(degree 4 and 8).  This module provides a self-contained pairing-model
generator so the benchmark suite does not depend on any particular external
graph library version; :mod:`networkx` is used only for validation helpers.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Set, Tuple

import networkx as nx

from repro.exceptions import BenchmarkError

__all__ = [
    "random_regular_graph",
    "ring_graph",
    "complete_graph_edges",
    "is_regular",
    "edge_count_for_regular",
]

Edge = Tuple[int, int]


def edge_count_for_regular(num_nodes: int, degree: int) -> int:
    """Number of edges of a *d*-regular graph on ``num_nodes`` nodes."""
    if (num_nodes * degree) % 2 != 0:
        raise BenchmarkError(
            f"no {degree}-regular graph exists on {num_nodes} nodes (odd product)"
        )
    return num_nodes * degree // 2


def _attempt_pairing(num_nodes: int, degree: int, rng: random.Random) -> List[Edge]:
    """One attempt of the Steger–Wormald incremental pairing model.

    Stubs are paired one edge at a time, always choosing among *suitable*
    pairs (no self-loop, no multi-edge).  Raises ``ValueError`` when no
    suitable pair remains before all stubs are used, in which case the caller
    retries with fresh randomness.  This converges quickly even for the
    degree-8 graphs of the paper's benchmarks, unlike naive stub shuffling.
    """
    remaining = {node: degree for node in range(num_nodes)}
    edges: Set[Edge] = set()
    target_edges = num_nodes * degree // 2
    while len(edges) < target_edges:
        open_nodes = [node for node, count in remaining.items() if count > 0]
        # Sample stubs proportionally to the remaining stub count.
        stub_pool = [node for node in open_nodes for _ in range(remaining[node])]
        suitable_found = False
        for _ in range(10 * len(stub_pool) + 10):
            a = rng.choice(stub_pool)
            b = rng.choice(stub_pool)
            if a == b:
                continue
            edge = (min(a, b), max(a, b))
            if edge in edges:
                continue
            edges.add(edge)
            remaining[a] -= 1
            remaining[b] -= 1
            suitable_found = True
            break
        if not suitable_found:
            raise ValueError("no suitable pair remains; restart")
    return sorted(edges)


def random_regular_graph(num_nodes: int, degree: int, seed: int = 0,
                         max_attempts: int = 2000) -> List[Edge]:
    """Generate a random ``degree``-regular simple graph on ``num_nodes`` nodes.

    Uses the configuration model with rejection of self-loops and
    multi-edges, which produces (asymptotically) uniform regular graphs for
    the small degrees used by the benchmarks.  The result is a sorted edge
    list with ``num_nodes * degree / 2`` edges.

    Parameters
    ----------
    num_nodes:
        Number of vertices (qubits).
    degree:
        Desired vertex degree; must satisfy ``degree < num_nodes`` and
        ``num_nodes * degree`` even.
    seed:
        Seed for the internal PRNG, making generation deterministic.
    max_attempts:
        Maximum number of rejected pairings before giving up.
    """
    if degree >= num_nodes:
        raise BenchmarkError(
            f"degree {degree} must be smaller than the number of nodes {num_nodes}"
        )
    if degree < 1:
        raise BenchmarkError("degree must be at least 1")
    expected_edges = edge_count_for_regular(num_nodes, degree)
    rng = random.Random(seed)
    for _ in range(max_attempts):
        try:
            edges = _attempt_pairing(num_nodes, degree, rng)
        except ValueError:
            continue
        if len(edges) == expected_edges:
            return edges
    raise BenchmarkError(
        f"failed to build a {degree}-regular graph on {num_nodes} nodes after "
        f"{max_attempts} attempts"
    )


def ring_graph(num_nodes: int) -> List[Edge]:
    """Edge list of the 1D ring (cycle) graph, used by tests."""
    if num_nodes < 3:
        raise BenchmarkError("a ring needs at least 3 nodes")
    return [(i, (i + 1) % num_nodes) for i in range(num_nodes)]


def complete_graph_edges(num_nodes: int) -> List[Edge]:
    """Edge list of the complete graph K_n (all-to-all interactions)."""
    return [(i, j) for i in range(num_nodes) for j in range(i + 1, num_nodes)]


def is_regular(edges: Sequence[Edge], num_nodes: int, degree: int) -> bool:
    """Check that an edge list describes a simple ``degree``-regular graph."""
    graph = nx.Graph()
    graph.add_nodes_from(range(num_nodes))
    graph.add_edges_from(edges)
    if graph.number_of_edges() != len(set(map(tuple, map(sorted, edges)))):
        return False
    if any(a == b for a, b in edges):
        return False
    return all(graph.degree(node) == degree for node in range(num_nodes))
