"""Quantum Fourier Transform benchmark circuits.

The QFT benchmark exhibits all-to-all connectivity: qubit ``i`` interacts
with every qubit ``j > i`` through a controlled-phase gate of angle
``pi / 2^(j-i)``.  On a bisected 32-qubit register this yields 256 remote
and 240 local two-qubit gates (Table I), the highest remote-gate fraction of
the benchmark suite.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.circuits.circuit import QuantumCircuit
from repro.exceptions import BenchmarkError

__all__ = ["qft_circuit", "qft_expected_counts"]


def qft_circuit(
    num_qubits: int,
    include_swaps: bool = False,
    name: Optional[str] = None,
) -> QuantumCircuit:
    """Build the textbook QFT circuit.

    Parameters
    ----------
    num_qubits:
        Register size.
    include_swaps:
        If ``True``, append the final bit-reversal SWAP network.  The paper's
        Table I counts correspond to the swap-free variant (the reversal is
        absorbed into classical post-processing), so the default is ``False``.
    name:
        Optional circuit name; defaults to ``QFT-<n>``.
    """
    if num_qubits < 1:
        raise BenchmarkError("QFT needs at least 1 qubit")
    circuit = QuantumCircuit(num_qubits, name=name or f"QFT-{num_qubits}")
    for target in range(num_qubits):
        circuit.h(target)
        for offset, control in enumerate(range(target + 1, num_qubits), start=1):
            angle = math.pi / (2 ** offset)
            circuit.cp(angle, control, target)
    if include_swaps:
        for qubit in range(num_qubits // 2):
            circuit.swap(qubit, num_qubits - 1 - qubit)
    return circuit


def qft_expected_counts(num_qubits: int, include_swaps: bool = False) -> dict:
    """Expected gate counts of :func:`qft_circuit` (tests and Table I).

    Returns a dict with keys ``single_qubit``, ``two_qubit``, ``depth``.
    ``depth`` is the unit dependency depth ``2n - 1`` of the swap-free QFT.
    """
    two_qubit = num_qubits * (num_qubits - 1) // 2
    if include_swaps:
        two_qubit += num_qubits // 2
    return {
        "single_qubit": num_qubits,
        "two_qubit": two_qubit,
        "depth": 2 * num_qubits - 1 if num_qubits > 1 else 1,
    }
