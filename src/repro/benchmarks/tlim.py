"""1D Transverse-Longitudinal Ising Model (TLIM) Trotter circuits.

The TLIM benchmark of the paper (following Sopena et al., "Simulating quench
dynamics on a digital quantum computer") evolves the Hamiltonian

    H = -J Σ Z_i Z_{i+1} - h_x Σ X_i - h_z Σ Z_i

on a 1D open chain using first-order Trotterisation.  Each Trotter step
contains one RZZ gate per nearest-neighbour bond (scheduled as an even-bond
layer followed by an odd-bond layer) and an RZ and RX rotation on every
qubit.  The circuit has linear connectivity, so a contiguous bisection cuts
exactly one bond per step — this is the benchmark with the smallest remote-
gate fraction in Table I.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuits.circuit import QuantumCircuit
from repro.exceptions import BenchmarkError

__all__ = ["TLIMParameters", "tlim_circuit"]


@dataclass(frozen=True)
class TLIMParameters:
    """Physical and Trotterisation parameters of the TLIM benchmark.

    Attributes
    ----------
    coupling:
        Ising ZZ coupling strength ``J``.
    transverse_field:
        Transverse field ``h_x`` (drives the RX rotations).
    longitudinal_field:
        Longitudinal field ``h_z`` (drives the RZ rotations).
    time_step:
        Trotter step size ``dt``.
    """

    coupling: float = 1.0
    transverse_field: float = 1.05
    longitudinal_field: float = 0.5
    time_step: float = 0.1

    @property
    def zz_angle(self) -> float:
        """RZZ rotation angle per step: ``-2 J dt``."""
        return -2.0 * self.coupling * self.time_step

    @property
    def rx_angle(self) -> float:
        """RX rotation angle per step: ``-2 h_x dt``."""
        return -2.0 * self.transverse_field * self.time_step

    @property
    def rz_angle(self) -> float:
        """RZ rotation angle per step: ``-2 h_z dt``."""
        return -2.0 * self.longitudinal_field * self.time_step


def tlim_circuit(
    num_qubits: int,
    num_steps: int = 10,
    parameters: TLIMParameters = TLIMParameters(),
    name: str | None = None,
) -> QuantumCircuit:
    """Build a first-order Trotter circuit for the 1D TLIM quench.

    Parameters
    ----------
    num_qubits:
        Chain length.  Must be at least 2.
    num_steps:
        Number of Trotter steps.  With the paper's 32-qubit chain and 10
        steps the circuit has 310 two-qubit gates and 640 single-qubit
        gates, matching Table I.
    parameters:
        Hamiltonian parameters (angles only affect gate parameters, not the
        circuit structure).
    name:
        Optional circuit name; defaults to ``TLIM-<n>``.

    Returns
    -------
    QuantumCircuit
        The Trotterised evolution circuit (without final measurements).
    """
    if num_qubits < 2:
        raise BenchmarkError("TLIM needs at least 2 qubits")
    if num_steps < 1:
        raise BenchmarkError("TLIM needs at least 1 Trotter step")

    circuit = QuantumCircuit(num_qubits, name=name or f"TLIM-{num_qubits}")
    even_bonds = [(i, i + 1) for i in range(0, num_qubits - 1, 2)]
    odd_bonds = [(i, i + 1) for i in range(1, num_qubits - 1, 2)]

    for _ in range(num_steps):
        for a, b in even_bonds:
            circuit.rzz(parameters.zz_angle, a, b)
        for a, b in odd_bonds:
            circuit.rzz(parameters.zz_angle, a, b)
        for qubit in range(num_qubits):
            circuit.rz(parameters.rz_angle, qubit)
        for qubit in range(num_qubits):
            circuit.rx(parameters.rx_angle, qubit)
    return circuit


def tlim_bond_count(num_qubits: int) -> int:
    """Number of nearest-neighbour bonds of the open chain."""
    if num_qubits < 2:
        raise BenchmarkError("TLIM needs at least 2 qubits")
    return num_qubits - 1


def tlim_expected_counts(num_qubits: int, num_steps: int) -> dict:
    """Expected gate counts for a TLIM circuit (used by tests and Table I).

    Returns a dict with keys ``two_qubit``, ``single_qubit``, ``depth``.
    """
    return {
        "two_qubit": tlim_bond_count(num_qubits) * num_steps,
        "single_qubit": 2 * num_qubits * num_steps,
        "depth": 4 * num_steps if num_qubits > 2 else 3 * num_steps,
    }
