"""Benchmark circuit generators (Table I workloads)."""

from repro.benchmarks.graphs import (
    complete_graph_edges,
    edge_count_for_regular,
    is_regular,
    random_regular_graph,
    ring_graph,
)
from repro.benchmarks.qaoa import QAOAParameters, maxcut_value, qaoa_maxcut_circuit, qaoa_regular_circuit
from repro.benchmarks.qft import qft_circuit, qft_expected_counts
from repro.benchmarks.registry import (
    BENCHMARKS,
    BenchmarkSpec,
    benchmark_properties,
    build_benchmark,
    get_benchmark,
    list_benchmarks,
)
from repro.benchmarks.tlim import TLIMParameters, tlim_circuit, tlim_expected_counts

__all__ = [
    "random_regular_graph",
    "ring_graph",
    "complete_graph_edges",
    "is_regular",
    "edge_count_for_regular",
    "QAOAParameters",
    "qaoa_maxcut_circuit",
    "qaoa_regular_circuit",
    "maxcut_value",
    "qft_circuit",
    "qft_expected_counts",
    "TLIMParameters",
    "tlim_circuit",
    "tlim_expected_counts",
    "BenchmarkSpec",
    "BENCHMARKS",
    "get_benchmark",
    "build_benchmark",
    "list_benchmarks",
    "benchmark_properties",
]
