"""repro — reproduction of "Hardware-Software Co-design for Distributed Quantum Computing" (DAC 2025).

The package implements the paper's full pipeline from scratch:

* a gate-level quantum-circuit IR with commutation-aware rewrites,
* the Table I benchmark generators (TLIM, QAOA-MaxCut, QFT),
* a pluggable partitioner registry (METIS-style multilevel baseline plus
  Kernighan-Lin, Fiduccia-Mattheyses, spectral, contiguous, and a
  ``precomputed`` passthrough; see :mod:`repro.api`),
* a DQC hardware model with data / communication / buffer qubits and a
  registry of interconnect topologies (``all_to_all``, ``line``, ``ring``,
  ``star``, ``grid-RxC``),
* a stochastic heralded-entanglement-generation simulator with synchronous or
  asynchronous attempts, buffering, and cutoff policies,
* a density-matrix based gate-teleportation fidelity model,
* a discrete-event executor comparing the six designs of the evaluation
  (``original``, ``sync_buf``, ``async_buf``, ``adapt_buf``, ``init_buf``,
  ``ideal``), and
* a declarative :class:`Study` API (plus the ``python -m repro`` CLI) that
  expands arbitrary parameter grids — benchmarks, designs, seeds, any
  ``SystemConfig`` field — into compile-once engine cells and returns flat,
  serialisable :class:`ResultSet` records.

Quickstart
----------
>>> from repro import DQCSimulator
>>> simulator = DQCSimulator()
>>> result = simulator.simulate("QAOA-r4-32", design="adapt_buf", seed=1)
>>> round(result.depth, 1) > 0
True

>>> from repro import Study
>>> results = Study(benchmarks="TLIM-32", designs=["ideal"], num_runs=2).run()
>>> len(results)
2
"""

from repro.benchmarks import build_benchmark, list_benchmarks
from repro.circuits import QuantumCircuit
from repro.core import (
    PAPER_32Q_SYSTEM,
    PAPER_64Q_SYSTEM,
    DQCSimulator,
    ExperimentConfig,
    ExperimentRunner,
    SystemConfig,
    run_comm_qubit_sweep,
    run_design_comparison,
)
from repro.engine import (
    ArtifactCache,
    CellCompiler,
    CompiledCell,
    ExecutionBackend,
    ExperimentEngine,
    ProcessPoolBackend,
    SerialBackend,
    get_backend,
    list_backends,
    register_backend,
)
from repro.hardware import (
    DQCArchitecture,
    Topology,
    get_topology,
    list_topologies,
    register_topology,
    two_node_architecture,
)
from repro.partitioning import (
    DistributedProgram,
    Partitioner,
    distribute_circuit,
    get_partitioner,
    list_partitioners,
    register_partitioner,
)
from repro.runtime import DesignExecutor, ExecutionResult, execute_design, list_designs
from repro.study import (
    Axis,
    ExecutionPlan,
    GridSpec,
    ProgressEvent,
    ResultSet,
    RunRecord,
    RunStore,
    Study,
    aggregate_stream,
)

__version__ = "1.1.0"

__all__ = [
    "QuantumCircuit",
    "build_benchmark",
    "list_benchmarks",
    "distribute_circuit",
    "DistributedProgram",
    "Partitioner",
    "get_partitioner",
    "list_partitioners",
    "register_partitioner",
    "DQCArchitecture",
    "two_node_architecture",
    "Topology",
    "get_topology",
    "list_topologies",
    "register_topology",
    "DesignExecutor",
    "execute_design",
    "ExecutionResult",
    "list_designs",
    "DQCSimulator",
    "SystemConfig",
    "PAPER_32Q_SYSTEM",
    "PAPER_64Q_SYSTEM",
    "ExperimentConfig",
    "ExperimentRunner",
    "run_design_comparison",
    "run_comm_qubit_sweep",
    "ArtifactCache",
    "CellCompiler",
    "CompiledCell",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "get_backend",
    "register_backend",
    "list_backends",
    "ExperimentEngine",
    "Axis",
    "GridSpec",
    "ExecutionPlan",
    "RunRecord",
    "ResultSet",
    "RunStore",
    "ProgressEvent",
    "aggregate_stream",
    "Study",
    "__version__",
]
