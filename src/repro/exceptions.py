"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so that callers
can catch everything raised by this package with a single ``except`` clause
while still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class CircuitError(ReproError):
    """Raised for malformed circuits or invalid gate applications."""


class GateError(CircuitError):
    """Raised when a gate is constructed or applied incorrectly."""


class DAGError(CircuitError):
    """Raised for inconsistencies in the circuit dependency DAG."""


class PartitionError(ReproError):
    """Raised when a qubit partition is infeasible or invalid."""


class ArchitectureError(ReproError):
    """Raised for invalid hardware architecture configurations."""


class TopologyError(ArchitectureError):
    """Raised for invalid, mismatched, or disconnected interconnect topologies."""


class EntanglementError(ReproError):
    """Raised for invalid entanglement-generation configurations or states."""


class BufferError(EntanglementError):
    """Raised when buffer-pool operations are invalid (e.g. overfull)."""


class NoiseError(ReproError):
    """Raised for invalid noise channels or density matrices."""


class SchedulingError(ReproError):
    """Raised when adaptive scheduling cannot produce a valid schedule."""


class RuntimeSimulationError(ReproError):
    """Raised when the discrete-event executor reaches an invalid state."""


class ConfigurationError(ReproError):
    """Raised for inconsistent experiment or system configuration."""


class SpecValidationError(ConfigurationError):
    """A study spec failed validation, with a machine-readable payload.

    Raised by :meth:`~repro.study.study.Study.from_spec` so both the CLI
    and the service API can surface *which* part of the spec is wrong —
    ``field`` names the offending spec location (dotted for nested fields,
    e.g. ``"system.num_qubits"``; ``None`` when the error is not tied to
    one field) and ``allowed`` enumerates the acceptable values or field
    names when the set is known.
    """

    def __init__(self, message: str, *, field: "str | None" = None,
                 allowed: "tuple | list | None" = None) -> None:
        super().__init__(message)
        self.field = field
        self.allowed = list(allowed) if allowed is not None else None

    def to_dict(self) -> dict:
        """JSON-friendly payload (the service API's 400 response body)."""
        return {
            "error": "invalid-spec",
            "field": self.field,
            "message": str(self),
            "allowed": self.allowed,
        }


class StoreError(ReproError):
    """Raised for invalid, mismatched, or corrupt durable run stores."""


class StoreWriteError(StoreError):
    """A durable write (shard append, fsync, chunk-log commit) failed.

    Raised by :meth:`~repro.study.store.RunStore.append_chunk` when the
    filesystem rejects a write (``ENOSPC``, I/O error, injected fault).
    The store degrades gracefully: every chunk committed *before* the
    failing one remains durable, and the exception carries the resume
    point so callers (and operators) know exactly where a retry picks up.

    Attributes
    ----------
    errno:
        The OS error number of the underlying failure (``None`` when the
        cause carried none).
    committed_chunks:
        Chunks already committed to the chunk log — all of them survive
        reopen and are skipped on resume.
    committed_runs:
        Total runs covered by the committed chunks (the resume point).
    """

    def __init__(self, message: str, *, errno: "int | None" = None,
                 committed_chunks: int = 0,
                 committed_runs: int = 0) -> None:
        super().__init__(message)
        self.errno = errno
        self.committed_chunks = committed_chunks
        self.committed_runs = committed_runs


class FleetError(ReproError):
    """Raised for fleet protocol violations and coordinator/worker failures.

    Covers malformed or oversized wire frames, protocol version mismatches,
    handshake rejections, and sweeps whose chunks exhaust their retry
    budget across workers.
    """


class FleetProtocolError(FleetError):
    """A *fatal* fleet error: retrying the connection cannot succeed.

    Raised for protocol version mismatches and handshake rejections —
    conditions where the two endpoints disagree about the wire format or
    the coordinator has permanently refused the worker.  The worker
    reconnect loop treats these as fatal (exit) while plain
    :class:`OSError`/:class:`FleetError` disconnects stay retryable.
    """


class FaultError(ConfigurationError):
    """Raised for malformed ``REPRO_FAULTS`` fault-injection specs."""


class BenchmarkError(ReproError):
    """Raised when a benchmark circuit cannot be generated as requested."""
