"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so that callers
can catch everything raised by this package with a single ``except`` clause
while still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class CircuitError(ReproError):
    """Raised for malformed circuits or invalid gate applications."""


class GateError(CircuitError):
    """Raised when a gate is constructed or applied incorrectly."""


class DAGError(CircuitError):
    """Raised for inconsistencies in the circuit dependency DAG."""


class PartitionError(ReproError):
    """Raised when a qubit partition is infeasible or invalid."""


class ArchitectureError(ReproError):
    """Raised for invalid hardware architecture configurations."""


class TopologyError(ArchitectureError):
    """Raised for invalid, mismatched, or disconnected interconnect topologies."""


class EntanglementError(ReproError):
    """Raised for invalid entanglement-generation configurations or states."""


class BufferError(EntanglementError):
    """Raised when buffer-pool operations are invalid (e.g. overfull)."""


class NoiseError(ReproError):
    """Raised for invalid noise channels or density matrices."""


class SchedulingError(ReproError):
    """Raised when adaptive scheduling cannot produce a valid schedule."""


class RuntimeSimulationError(ReproError):
    """Raised when the discrete-event executor reaches an invalid state."""


class ConfigurationError(ReproError):
    """Raised for inconsistent experiment or system configuration."""


class StoreError(ReproError):
    """Raised for invalid, mismatched, or corrupt durable run stores."""


class BenchmarkError(ReproError):
    """Raised when a benchmark circuit cannot be generated as requested."""
