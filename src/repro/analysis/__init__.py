"""Statistics over repeated runs and text reports of the paper's tables."""

from repro.analysis.ledger import (
    BenchLedger,
    Regression,
    check_metrics,
    classify_metric,
    flatten_metrics,
)
from repro.analysis.report import (
    comparison_report,
    format_table,
    load_results,
    relative_depth_report,
    store_status_report,
    summary_report,
    sweep_report,
    table1_report,
    table2_report,
)
from repro.analysis.statistics import SampleStatistics, relative_change, summarize

__all__ = [
    "SampleStatistics",
    "summarize",
    "relative_change",
    "BenchLedger",
    "Regression",
    "check_metrics",
    "classify_metric",
    "flatten_metrics",
    "format_table",
    "table1_report",
    "table2_report",
    "comparison_report",
    "sweep_report",
    "relative_depth_report",
    "load_results",
    "summary_report",
    "store_status_report",
]
