"""Sample statistics over repeated stochastic runs.

Every figure of the paper averages 50 runs; this module provides the mean,
standard deviation, and confidence intervals used when aggregating the
repetitions, without depending on SciPy (a normal-approximation interval is
sufficient at these sample sizes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.exceptions import ConfigurationError

__all__ = ["SampleStatistics", "summarize", "relative_change"]


@dataclass(frozen=True)
class SampleStatistics:
    """Mean / spread summary of one metric over repeated runs."""

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int

    def confidence_interval(self, z: float = 1.96) -> tuple:
        """Normal-approximation confidence interval of the mean."""
        if self.count <= 1:
            return (self.mean, self.mean)
        half_width = z * self.std / math.sqrt(self.count)
        return (self.mean - half_width, self.mean + half_width)

    @property
    def standard_error(self) -> float:
        """Standard error of the mean."""
        if self.count <= 1:
            return 0.0
        return self.std / math.sqrt(self.count)


def summarize(samples: Sequence[float]) -> SampleStatistics:
    """Compute :class:`SampleStatistics` for a non-empty sample list."""
    values = [float(v) for v in samples]
    if not values:
        raise ConfigurationError("cannot summarise an empty sample list")
    count = len(values)
    minimum = min(values)
    maximum = max(values)
    # fsum for accuracy, then clamp: float division can round the mean one
    # ULP outside [min, max] (e.g. three identical samples), breaking the
    # min <= mean <= max invariant consumers rely on.
    mean = min(max(math.fsum(values) / count, minimum), maximum)
    if count > 1:
        variance = math.fsum((v - mean) ** 2 for v in values) / (count - 1)
    else:
        variance = 0.0
    return SampleStatistics(
        mean=mean,
        std=math.sqrt(variance),
        minimum=minimum,
        maximum=maximum,
        count=count,
    )


def relative_change(baseline: float, value: float) -> float:
    """Relative change ``(baseline - value) / baseline`` (positive = reduction)."""
    if baseline == 0:
        return 0.0
    return (baseline - value) / baseline
