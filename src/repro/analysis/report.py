"""Text reports reproducing the paper's tables and figures.

The benchmark harness prints the same rows and series the paper reports:
Table I (benchmark properties), Table II (operation properties), and the
depth / fidelity bars of Figs. 5-8.  Everything is plain text so the output
can be diffed and archived alongside EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.hardware.parameters import OPERATION_TABLE

if TYPE_CHECKING:  # pragma: no cover - import only for type checkers
    from repro.core.results import BenchmarkComparison

__all__ = [
    "format_table",
    "table1_report",
    "table2_report",
    "comparison_report",
    "sweep_report",
    "relative_depth_report",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a list of rows as an aligned plain-text table."""
    columns = len(headers)
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in str_rows)) if str_rows
        else len(str(headers[i]))
        for i in range(columns)
    ]
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    output = [line([str(h) for h in headers])]
    output.append(line(["-" * width for width in widths]))
    output.extend(line(row) for row in str_rows)
    return "\n".join(output)


def table1_report(properties: Mapping[str, Mapping[str, object]],
                  paper_values: Optional[Mapping[str, Mapping[str, object]]] = None
                  ) -> str:
    """Table I: benchmark properties (ours vs the paper's, when provided)."""
    headers = ["Name", "#qubits", "#local 2Q", "#remote 2Q", "#1Q", "depth"]
    rows = []
    for name, props in properties.items():
        rows.append([
            name, props["qubits"], props["local_2q"], props["remote_2q"],
            props["single_q"], props["depth"],
        ])
        if paper_values and name in paper_values:
            paper = paper_values[name]
            rows.append([
                f"  (paper)", "", paper.get("local_2q", "-"),
                paper.get("remote_2q", "-"), paper.get("single_q", "-"),
                paper.get("depth", "-"),
            ])
    return format_table(headers, rows)


def table2_report() -> str:
    """Table II: quantum operation properties used by the simulator."""
    headers = ["Name", "Latency", "Fidelity"]
    label = {
        "single_qubit": "1Q gates",
        "local_cnot": "Local CNOT gates",
        "measurement": "Measurement",
        "epr_preparation": "EPR pair preparation",
    }
    rows = [
        [label[key], properties.latency, f"{properties.fidelity * 100:.2f}%"]
        for key, properties in OPERATION_TABLE.items()
    ]
    return format_table(headers, rows)


def comparison_report(comparison: "BenchmarkComparison",
                      metric: str = "depth") -> str:
    """One panel of Fig. 5 (depth) or Fig. 6 (fidelity) as a text table."""
    headers = ["Design", "Mean", "Std", "Relative to ideal"]
    ideal_depth = comparison.ideal_depth()
    ideal_fidelity = comparison.ideal_fidelity()
    rows = []
    for name, summary in comparison.summaries.items():
        if metric == "depth":
            stats = summary.depth
            relative = (stats.mean / ideal_depth) if ideal_depth else float("nan")
        elif metric == "fidelity":
            stats = summary.fidelity
            relative = (stats.mean / ideal_fidelity) if ideal_fidelity else float("nan")
        else:
            raise ValueError(f"unknown metric {metric!r}")
        rows.append([name, f"{stats.mean:.2f}" if metric == "depth" else f"{stats.mean:.4f}",
                     f"{stats.std:.2f}" if metric == "depth" else f"{stats.std:.4f}",
                     f"{relative:.3f}"])
    title = f"{comparison.benchmark} — {metric}"
    return title + "\n" + format_table(headers, rows)


def sweep_report(sweep: Mapping[int, "BenchmarkComparison"],
                 metric: str = "depth") -> str:
    """Fig. 7 style report: one design × qubit-count table for a sweep.

    ``sweep`` maps communication/buffer qubit counts to the
    :class:`BenchmarkComparison` evaluated at that count (the shape returned
    by :func:`repro.core.experiment.run_comm_qubit_sweep`).
    """
    if metric not in ("depth", "fidelity"):
        raise ValueError(f"unknown metric {metric!r}")
    if not sweep:
        return "(no results)"
    counts = sorted(sweep)
    designs = sweep[counts[0]].designs
    benchmark = sweep[counts[0]].benchmark
    headers = ["Design"] + [f"{count}/{count}" for count in counts]
    rows = []
    for design in designs:
        cells = []
        for count in counts:
            table = (sweep[count].depth_table() if metric == "depth"
                     else sweep[count].fidelity_table())
            value = table.get(design)
            if value is None:
                cells.append("-")
            else:
                cells.append(f"{value:.2f}" if metric == "depth"
                             else f"{value:.4f}")
        rows.append([design] + cells)
    title = f"{benchmark} — {metric} vs #comm/#buffer qubits per node"
    return title + "\n" + format_table(headers, rows)


def relative_depth_report(comparisons: Iterable["BenchmarkComparison"]) -> str:
    """Fig. 5 style summary: relative depth of every design per benchmark."""
    comparisons = list(comparisons)
    if not comparisons:
        return "(no results)"
    designs = comparisons[0].designs
    headers = ["Benchmark"] + designs
    rows = []
    for comparison in comparisons:
        relative = comparison.relative_depth_table()
        rows.append([comparison.benchmark] + [
            f"{relative.get(design, float('nan')):.2f}" for design in designs
        ])
    return format_table(headers, rows)
