"""Text reports reproducing the paper's tables and figures.

The benchmark harness prints the same rows and series the paper reports:
Table I (benchmark properties), Table II (operation properties), and the
depth / fidelity bars of Figs. 5-8.  Everything is plain text so the output
can be diffed and archived alongside EXPERIMENTS.md.

Result-shaped reports accept any *source* of records via
:func:`load_results`: an in-memory :class:`~repro.study.results.ResultSet`,
a ``to_json`` results file, or a durable run-store directory — so a report
can be rendered from a finished (or resumed) ``--store`` sweep without
re-running anything.
"""

from __future__ import annotations

from pathlib import Path
from typing import (
    TYPE_CHECKING, Any, Dict, Iterable, List, Mapping, Optional, Sequence,
    Union,
)

from repro.hardware.parameters import OPERATION_TABLE

if TYPE_CHECKING:  # pragma: no cover - import only for type checkers
    from repro.core.results import BenchmarkComparison
    from repro.study.results import ResultSet
    from repro.study.store import RunStore

__all__ = [
    "format_table",
    "table1_report",
    "table2_report",
    "comparison_report",
    "sweep_report",
    "relative_depth_report",
    "load_results",
    "summary_report",
    "store_status_report",
]

#: Anything a result-shaped report can render: an in-memory set, a
#: ``ResultSet.to_json`` file, or a run-store directory.
ResultsLike = Union["ResultSet", str, Path, "RunStore"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a list of rows as an aligned plain-text table."""
    columns = len(headers)
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in str_rows)) if str_rows
        else len(str(headers[i]))
        for i in range(columns)
    ]
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    output = [line([str(h) for h in headers])]
    output.append(line(["-" * width for width in widths]))
    output.extend(line(row) for row in str_rows)
    return "\n".join(output)


def table1_report(properties: Mapping[str, Mapping[str, object]],
                  paper_values: Optional[Mapping[str, Mapping[str, object]]] = None
                  ) -> str:
    """Table I: benchmark properties (ours vs the paper's, when provided)."""
    headers = ["Name", "#qubits", "#local 2Q", "#remote 2Q", "#1Q", "depth"]
    rows = []
    for name, props in properties.items():
        rows.append([
            name, props["qubits"], props["local_2q"], props["remote_2q"],
            props["single_q"], props["depth"],
        ])
        if paper_values and name in paper_values:
            paper = paper_values[name]
            rows.append([
                f"  (paper)", "", paper.get("local_2q", "-"),
                paper.get("remote_2q", "-"), paper.get("single_q", "-"),
                paper.get("depth", "-"),
            ])
    return format_table(headers, rows)


def table2_report() -> str:
    """Table II: quantum operation properties used by the simulator."""
    headers = ["Name", "Latency", "Fidelity"]
    label = {
        "single_qubit": "1Q gates",
        "local_cnot": "Local CNOT gates",
        "measurement": "Measurement",
        "epr_preparation": "EPR pair preparation",
    }
    rows = [
        [label[key], properties.latency, f"{properties.fidelity * 100:.2f}%"]
        for key, properties in OPERATION_TABLE.items()
    ]
    return format_table(headers, rows)


def comparison_report(comparison: "BenchmarkComparison",
                      metric: str = "depth") -> str:
    """One panel of Fig. 5 (depth) or Fig. 6 (fidelity) as a text table."""
    headers = ["Design", "Mean", "Std", "Relative to ideal"]
    ideal_depth = comparison.ideal_depth()
    ideal_fidelity = comparison.ideal_fidelity()
    rows = []
    for name, summary in comparison.summaries.items():
        if metric == "depth":
            stats = summary.depth
            relative = (stats.mean / ideal_depth) if ideal_depth else float("nan")
        elif metric == "fidelity":
            stats = summary.fidelity
            relative = (stats.mean / ideal_fidelity) if ideal_fidelity else float("nan")
        else:
            raise ValueError(f"unknown metric {metric!r}")
        rows.append([name, f"{stats.mean:.2f}" if metric == "depth" else f"{stats.mean:.4f}",
                     f"{stats.std:.2f}" if metric == "depth" else f"{stats.std:.4f}",
                     f"{relative:.3f}"])
    title = f"{comparison.benchmark} — {metric}"
    return title + "\n" + format_table(headers, rows)


def sweep_report(sweep: Mapping[int, "BenchmarkComparison"],
                 metric: str = "depth") -> str:
    """Fig. 7 style report: one design × qubit-count table for a sweep.

    ``sweep`` maps communication/buffer qubit counts to the
    :class:`BenchmarkComparison` evaluated at that count (the shape returned
    by :func:`repro.core.experiment.run_comm_qubit_sweep`).
    """
    if metric not in ("depth", "fidelity"):
        raise ValueError(f"unknown metric {metric!r}")
    if not sweep:
        return "(no results)"
    counts = sorted(sweep)
    designs = sweep[counts[0]].designs
    benchmark = sweep[counts[0]].benchmark
    headers = ["Design"] + [f"{count}/{count}" for count in counts]
    rows = []
    for design in designs:
        cells = []
        for count in counts:
            table = (sweep[count].depth_table() if metric == "depth"
                     else sweep[count].fidelity_table())
            value = table.get(design)
            if value is None:
                cells.append("-")
            else:
                cells.append(f"{value:.2f}" if metric == "depth"
                             else f"{value:.4f}")
        rows.append([design] + cells)
    title = f"{benchmark} — {metric} vs #comm/#buffer qubits per node"
    return title + "\n" + format_table(headers, rows)


def load_results(source: ResultsLike,
                 allow_partial: bool = False) -> "ResultSet":
    """Resolve any results source into a :class:`ResultSet`.

    Accepts an in-memory set (returned unchanged), a path to a
    ``ResultSet.to_json`` file, or a run-store *directory* (loaded via
    :meth:`ResultSet.from_store`; pass ``allow_partial=True`` to report on
    a store that is still mid-study).
    """
    from repro.study.results import ResultSet
    from repro.study.store import RunStore

    if isinstance(source, ResultSet):
        return source
    if isinstance(source, RunStore):
        return ResultSet.from_store(source, allow_partial=allow_partial)
    path = Path(source)
    if path.is_dir():
        return ResultSet.from_store(path, allow_partial=allow_partial)
    return ResultSet.load(path)


def summary_report(source: ResultsLike, allow_partial: bool = False) -> str:
    """Depth / fidelity summary table of a study's results.

    One row per (swept parameters, benchmark, design) group — the table
    ``python -m repro run`` prints.  ``source`` may be a result set, a
    results JSON file, or a run-store directory (see :func:`load_results`).
    """
    results = load_results(source, allow_partial=allow_partial)
    params = results.param_keys()
    group_cols = [*params, "benchmark", "design"]
    if not len(results):
        return format_table([*group_cols, "runs", "mean depth", "std",
                             "mean fidelity"], [])
    depth = results.aggregate("depth", by=group_cols)
    fidelity = results.aggregate("fidelity", by=group_cols)
    headers = [*group_cols, "runs", "mean depth", "std", "mean fidelity"]
    rows = []
    for group, stats in depth.items():
        key = group if isinstance(group, tuple) else (group,)
        rows.append([
            *key, stats.count, f"{stats.mean:.2f}", f"{stats.std:.2f}",
            f"{fidelity[group].mean:.4f}",
        ])
    return format_table(headers, rows)


def store_status_report(store: Union[str, Path, "RunStore"]) -> str:
    """Manifest summary of a run store (the ``status`` subcommand body)."""
    from repro.study.store import RunStore

    if not isinstance(store, RunStore):
        store = RunStore.load(store)
    summary = store.summary()
    state = "complete" if summary["complete"] else "in progress"
    rows = [
        ["study", summary["name"] or "(unnamed)"],
        ["state", state],
        ["chunks", f"{summary['done_chunks']}/{summary['total_chunks']}"],
        ["runs", f"{summary['done_tasks']}/{summary['total_tasks']}"],
        ["cells", summary["cells"]],
        ["chunk size", summary["chunk_size"]],
        ["benchmarks", ", ".join(summary["benchmarks"])],
        ["designs", ", ".join(summary["designs"])],
        ["plan fingerprint", summary["fingerprint"][:16] + "…"],
    ]
    return (f"store: {summary['path']}\n"
            + format_table(["field", "value"], rows))


def relative_depth_report(comparisons: Iterable["BenchmarkComparison"]) -> str:
    """Fig. 5 style summary: relative depth of every design per benchmark."""
    comparisons = list(comparisons)
    if not comparisons:
        return "(no results)"
    designs = comparisons[0].designs
    headers = ["Benchmark"] + designs
    rows = []
    for comparison in comparisons:
        relative = comparison.relative_depth_table()
        rows.append([comparison.benchmark] + [
            f"{relative.get(design, float('nan')):.2f}" for design in designs
        ])
    return format_table(headers, rows)
