"""Append-only benchmark history ledger with regression detection.

Every CI perf-smoke run produces ``BENCH_*.json`` payloads (written by the
scripts under ``benchmarks/``).  The ledger turns those one-shot snapshots
into a *history*: ``repro bench record`` appends each payload's numeric
metrics as one fsynced JSON line, and ``repro bench check`` compares the
current payloads against a **rolling-median baseline** over the last few
recorded entries, failing loudly — naming the metric, its value, and the
baseline — when a gated metric regresses past a noise allowance.  The
rolling median absorbs single noisy runs on shared CI hardware; the
allowance absorbs run-to-run jitter; a genuine slowdown shifts the whole
distribution and trips the gate.

Only metrics whose *direction* is recognisable from their name are gated:

* **lower is better** — timings (``*_s``, ``*_ms``, ``*_seconds``,
  ``*latency*``),
* **higher is better** — rates and ratios (``*speedup*``, ``*_per_s``,
  ``*_per_second``, ``*throughput*``, ``*rate*``).

Everything else (counts, sizes, configuration echoes) is recorded for the
history but never gated.  The first recording of a metric has no history
and passes (bootstrap).  Ledger reads tolerate a torn final line — the
fsync-before-newline append protocol means a torn tail is an interrupted
append, never committed history — while an unparsable *committed* line
raises, mirroring the run-store chunk log.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.exceptions import ReproError

__all__ = [
    "BenchLedger",
    "LedgerError",
    "Regression",
    "check_metrics",
    "classify_metric",
    "flatten_metrics",
    "DEFAULT_WINDOW",
    "DEFAULT_ALLOWANCE",
]

#: History entries the rolling-median baseline looks back over.
DEFAULT_WINDOW = 5

#: Fractional noise allowance around the baseline (0.2 = 20%).  Chosen
#: below the 30% drift the CI self-test injects, and above the few-percent
#: jitter shared runners exhibit.
DEFAULT_ALLOWANCE = 0.2

_LOWER_SUFFIXES = ("_s", "_ms", "_seconds")
_HIGHER_SUFFIXES = ("_per_s", "_per_second")
_HIGHER_TOKENS = ("speedup", "throughput", "rate")


class LedgerError(ReproError):
    """A bench ledger could not be read or holds corrupt committed data."""


def classify_metric(name: str) -> Optional[str]:
    """Gate direction of a metric name: ``"lower"``, ``"higher"``, or
    ``None`` for metrics that are recorded but never gated."""
    leaf = name.rsplit(".", 1)[-1].lower()
    # Rates first: ``runs_per_s`` also ends with the ``_s`` timing suffix.
    if leaf.endswith(_HIGHER_SUFFIXES) or any(token in leaf
                                              for token in _HIGHER_TOKENS):
        return "higher"
    if leaf.endswith(_LOWER_SUFFIXES) or "latency" in leaf:
        return "lower"
    return None


def flatten_metrics(payload: Mapping[str, Any],
                    prefix: str = "") -> Dict[str, float]:
    """Flatten a ``BENCH_*.json`` payload to dotted numeric leaves.

    Nested mappings join their keys with ``.``; int/float leaves are kept
    (bools and everything non-numeric are dropped).
    """
    flat: Dict[str, float] = {}
    for key, value in payload.items():
        name = f"{prefix}{key}"
        if isinstance(value, Mapping):
            flat.update(flatten_metrics(value, prefix=f"{name}."))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            flat[name] = float(value)
    return flat


def _source_key(path: Union[str, Path]) -> str:
    """Stable per-payload namespace: ``BENCH_runtime.json`` → ``runtime``."""
    stem = Path(path).stem
    if stem.startswith("BENCH_"):
        stem = stem[len("BENCH_"):]
    return stem


def load_bench_file(path: Union[str, Path]) -> Dict[str, float]:
    """Load one ``BENCH_*.json`` payload as namespaced flat metrics."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise LedgerError(f"cannot read bench payload {path}: {error}"
                          ) from None
    if not isinstance(payload, dict):
        raise LedgerError(f"bench payload {path} is not a JSON object")
    return flatten_metrics(payload, prefix=f"{_source_key(path)}.")


@dataclass(frozen=True)
class Regression:
    """One gated metric that moved past its allowance."""

    metric: str
    value: float
    baseline: float
    direction: str
    allowance: float
    window: int

    @property
    def ratio(self) -> float:
        """Current value relative to the baseline (1.0 = unchanged)."""
        if self.baseline == 0.0:
            return float("inf") if self.value > 0.0 else 1.0
        return self.value / self.baseline

    def describe(self) -> str:
        worse = ("slower" if self.direction == "lower" else "lower")
        return (
            f"{self.metric}: {self.value:.6g} vs rolling-median baseline "
            f"{self.baseline:.6g} (last {self.window} runs) — "
            f"{abs(self.ratio - 1.0) * 100.0:.1f}% {worse}, allowance "
            f"{self.allowance * 100.0:.0f}%"
        )


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def check_metrics(current: Mapping[str, float],
                  history: Sequence[Mapping[str, float]],
                  window: int = DEFAULT_WINDOW,
                  allowance: float = DEFAULT_ALLOWANCE) -> List[Regression]:
    """Gated metrics of ``current`` that regressed vs the rolling median.

    ``history`` is oldest-first (the ledger's order); the baseline for a
    metric is the median of its last ``window`` recorded values.  Metrics
    with no recorded history bootstrap silently.
    """
    if window < 1:
        raise LedgerError("ledger window must be positive")
    if allowance < 0:
        raise LedgerError("ledger allowance cannot be negative")
    regressions: List[Regression] = []
    for metric in sorted(current):
        direction = classify_metric(metric)
        if direction is None:
            continue
        past = [entry[metric] for entry in history if metric in entry]
        if not past:
            continue  # first recording: nothing to compare against yet
        baseline = _median(past[-window:])
        value = current[metric]
        if direction == "lower":
            regressed = value > baseline * (1.0 + allowance)
        else:
            regressed = value < baseline * (1.0 - allowance)
        if regressed:
            regressions.append(Regression(
                metric=metric, value=value, baseline=baseline,
                direction=direction, allowance=allowance,
                window=min(window, len(past)),
            ))
    return regressions


class BenchLedger:
    """Append-only JSONL history of benchmark metrics.

    One line per recorded run: ``{"ts": ..., "run": ..., "metrics":
    {dotted-name: value, ...}}``.  Appends are fsynced with the newline as
    the commit marker, so reads drop a torn final line (interrupted
    append) but raise :class:`LedgerError` on an unparsable committed one.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def entries(self) -> List[Dict[str, Any]]:
        """All committed entries, oldest first (empty if no ledger yet)."""
        if not self.path.exists():
            return []
        try:
            data = self.path.read_bytes()
        except OSError as error:
            raise LedgerError(
                f"cannot read bench ledger {self.path}: {error}") from None
        entries: List[Dict[str, Any]] = []
        for raw in data.splitlines(keepends=True):
            if not raw.endswith(b"\n"):
                break  # torn tail: this append never committed
            line = raw.strip()
            if not line:
                continue
            try:
                entry = json.loads(line.decode("utf-8"))
                metrics = entry["metrics"]
                if not isinstance(metrics, dict):
                    raise ValueError("metrics is not an object")
            except (ValueError, KeyError, UnicodeDecodeError) as error:
                raise LedgerError(
                    f"bench ledger {self.path} holds an unreadable "
                    f"committed entry: {error}; the ledger is corrupt — "
                    f"delete it to restart the history"
                ) from None
            entries.append(entry)
        return entries

    def history(self) -> List[Dict[str, float]]:
        """Just the metric mappings of every committed entry, oldest first."""
        return [entry["metrics"] for entry in self.entries()]

    def record(self, metrics: Mapping[str, float],
               run: Optional[str] = None,
               timestamp: Optional[float] = None) -> Dict[str, Any]:
        """Durably append one run's metrics; returns the committed entry."""
        entry = {
            "ts": float(timestamp if timestamp is not None else time.time()),
            "run": run,
            "metrics": dict(metrics),
        }
        line = (json.dumps(entry, separators=(",", ":")) + "\n").encode("utf-8")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "ab") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())
        return entry

    def check(self, current: Mapping[str, float],
              window: int = DEFAULT_WINDOW,
              allowance: float = DEFAULT_ALLOWANCE) -> List[Regression]:
        """Compare ``current`` against this ledger's committed history."""
        return check_metrics(current, self.history(),
                             window=window, allowance=allowance)
