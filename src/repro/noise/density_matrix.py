"""Dense density-matrix simulator for small registers.

The paper evaluates the fidelity of a teleported remote gate by simulating
the 4-qubit gate-teleportation circuit with a noisy Bell resource state,
noisy local two-qubit gates, and noisy measurement (Sec. IV-C).  This module
provides the small density-matrix simulator that evaluation runs on.  It is
intentionally dense and simple — registers stay below ~10 qubits — and
supports unitaries, Kraus channels, and measurement with classically
controlled feed-forward corrections.

Qubit ordering convention: qubit 0 is the most significant bit of the
computational-basis index.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import NoiseError

__all__ = ["DensityMatrix", "expand_operator"]


def expand_operator(operator: np.ndarray, qubits: Sequence[int],
                    num_qubits: int) -> np.ndarray:
    """Embed an operator acting on ``qubits`` into the full register space."""
    k = len(qubits)
    if operator.shape != (2 ** k, 2 ** k):
        raise NoiseError(
            f"operator shape {operator.shape} does not match {k} qubits"
        )
    if len(set(qubits)) != k:
        raise NoiseError("operator qubits must be distinct")
    if any(q < 0 or q >= num_qubits for q in qubits):
        raise NoiseError("operator qubit index out of range")

    rest = [q for q in range(num_qubits) if q not in qubits]
    full = operator
    for _ in rest:
        full = np.kron(full, np.eye(2, dtype=complex))
    # ``full`` now acts on qubit order [qubits..., rest...]; permute to 0..n-1.
    current_order = list(qubits) + rest
    position_of = {qubit: position for position, qubit in enumerate(current_order)}
    permutation = [position_of[q] for q in range(num_qubits)]
    tensor = full.reshape((2,) * (2 * num_qubits))
    tensor = np.transpose(
        tensor,
        permutation + [num_qubits + p for p in permutation],
    )
    return tensor.reshape(2 ** num_qubits, 2 ** num_qubits)


class DensityMatrix:
    """A mixed state of ``num_qubits`` qubits.

    Parameters
    ----------
    num_qubits:
        Register size (kept small; the matrix is dense).
    matrix:
        Optional initial density matrix; defaults to ``|0...0><0...0|``.
    """

    _MAX_QUBITS = 12

    def __init__(self, num_qubits: int, matrix: Optional[np.ndarray] = None) -> None:
        if num_qubits < 1:
            raise NoiseError("density matrix needs at least one qubit")
        if num_qubits > self._MAX_QUBITS:
            raise NoiseError(
                f"dense simulation limited to {self._MAX_QUBITS} qubits"
            )
        self.num_qubits = num_qubits
        dim = 2 ** num_qubits
        if matrix is None:
            self._rho = np.zeros((dim, dim), dtype=complex)
            self._rho[0, 0] = 1.0
        else:
            matrix = np.asarray(matrix, dtype=complex)
            if matrix.shape != (dim, dim):
                raise NoiseError(
                    f"matrix shape {matrix.shape} does not match {num_qubits} qubits"
                )
            self._rho = matrix.copy()

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_statevector(cls, statevector: Sequence[complex]) -> "DensityMatrix":
        """Build a pure state from a state vector."""
        vector = np.asarray(statevector, dtype=complex)
        dim = vector.shape[0]
        num_qubits = int(round(np.log2(dim)))
        if 2 ** num_qubits != dim:
            raise NoiseError("statevector length must be a power of two")
        norm = np.linalg.norm(vector)
        if norm < 1e-12:
            raise NoiseError("statevector must be non-zero")
        vector = vector / norm
        return cls(num_qubits, np.outer(vector, vector.conj()))

    @classmethod
    def from_product(cls, factors: Sequence[np.ndarray]) -> "DensityMatrix":
        """Tensor product of per-subsystem density matrices (in qubit order)."""
        matrix = np.array([[1.0]], dtype=complex)
        num_qubits = 0
        for factor in factors:
            factor = np.asarray(factor, dtype=complex)
            size = factor.shape[0]
            qubits = int(round(np.log2(size)))
            if 2 ** qubits != size or factor.shape != (size, size):
                raise NoiseError("each factor must be a square power-of-two matrix")
            matrix = np.kron(matrix, factor)
            num_qubits += qubits
        return cls(num_qubits, matrix)

    @classmethod
    def maximally_entangled(cls, num_pairs: int = 1) -> "DensityMatrix":
        """``num_pairs`` Bell pairs; pair ``k`` spans qubits ``2k`` and ``2k+1``."""
        bell = np.zeros(4, dtype=complex)
        bell[0] = bell[3] = 1.0 / np.sqrt(2.0)
        state = cls.from_statevector(bell)
        result = state
        for _ in range(num_pairs - 1):
            result = cls.from_product([result.matrix, np.outer(bell, bell.conj())])
        return result

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def matrix(self) -> np.ndarray:
        """The underlying density matrix (copy)."""
        return self._rho.copy()

    @property
    def dim(self) -> int:
        """Hilbert-space dimension."""
        return 2 ** self.num_qubits

    def trace(self) -> float:
        """Trace of the density matrix (1 for normalised states)."""
        return float(np.real(np.trace(self._rho)))

    def purity(self) -> float:
        """Purity ``Tr(rho^2)``."""
        return float(np.real(np.trace(self._rho @ self._rho)))

    def is_physical(self, atol: float = 1e-8) -> bool:
        """Hermitian, unit trace, and positive semidefinite."""
        if not np.allclose(self._rho, self._rho.conj().T, atol=atol):
            return False
        if abs(self.trace() - 1.0) > atol:
            return False
        eigenvalues = np.linalg.eigvalsh(self._rho)
        return bool(np.all(eigenvalues > -atol))

    # ------------------------------------------------------------------
    # evolution
    # ------------------------------------------------------------------
    def apply_unitary(self, unitary: np.ndarray, qubits: Sequence[int]) -> None:
        """Apply a unitary to the given qubits (in place)."""
        full = expand_operator(np.asarray(unitary, dtype=complex), qubits,
                               self.num_qubits)
        self._rho = full @ self._rho @ full.conj().T

    def apply_kraus(self, operators: Iterable[np.ndarray],
                    qubits: Sequence[int]) -> None:
        """Apply a Kraus channel to the given qubits (in place)."""
        expanded = [
            expand_operator(np.asarray(op, dtype=complex), qubits, self.num_qubits)
            for op in operators
        ]
        result = np.zeros_like(self._rho)
        for op in expanded:
            result += op @ self._rho @ op.conj().T
        self._rho = result

    def apply_gate(self, gate) -> None:
        """Apply a circuit-IR :class:`~repro.circuits.gate.Gate`."""
        self.apply_unitary(gate.matrix(), gate.qubits)

    def measure_with_feedforward(
        self,
        qubit: int,
        corrections: Dict[int, List[Tuple[np.ndarray, Sequence[int]]]],
        error_rate: float = 0.0,
        basis: str = "z",
    ) -> None:
        """Measure ``qubit`` and apply outcome-conditioned corrections.

        The measurement plus classically controlled correction is applied as
        a single deterministic quantum channel (averaging over outcomes), so
        repeated fidelity evaluations need no sampling.  With probability
        ``error_rate`` the classical outcome is flipped and the *wrong*
        correction branch is applied — this is how a noisy single-qubit
        measurement (fidelity 99.8 % in Table II) enters the teleportation
        evaluation.

        Parameters
        ----------
        qubit:
            The measured qubit (left in its post-measurement state).
        corrections:
            Mapping from outcome (0 / 1) to a list of ``(unitary, qubits)``
            corrections applied to the rest of the register.
        error_rate:
            Classical readout error probability.
        basis:
            ``"z"`` (computational) or ``"x"`` (Hadamard before measuring).
        """
        if basis not in ("z", "x"):
            raise NoiseError(f"unsupported measurement basis {basis!r}")
        if not (0.0 <= error_rate <= 1.0):
            raise NoiseError("measurement error rate must be in [0, 1]")
        hadamard = np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2.0)
        if basis == "x":
            self.apply_unitary(hadamard, (qubit,))

        projector_0 = np.array([[1, 0], [0, 0]], dtype=complex)
        projector_1 = np.array([[0, 0], [0, 1]], dtype=complex)
        projectors = {0: projector_0, 1: projector_1}

        result = np.zeros_like(self._rho)
        for outcome in (0, 1):
            projected = expand_operator(projectors[outcome], (qubit,),
                                        self.num_qubits)
            branch = projected @ self._rho @ projected.conj().T
            for reported, weight in ((outcome, 1.0 - error_rate),
                                     (1 - outcome, error_rate)):
                if weight == 0.0:
                    continue
                corrected = branch.copy()
                for unitary, target_qubits in corrections.get(reported, []):
                    full = expand_operator(np.asarray(unitary, dtype=complex),
                                           target_qubits, self.num_qubits)
                    corrected = full @ corrected @ full.conj().T
                result += weight * corrected
        self._rho = result

    # ------------------------------------------------------------------
    # reductions and comparisons
    # ------------------------------------------------------------------
    def partial_trace(self, keep: Sequence[int]) -> "DensityMatrix":
        """Trace out all qubits not in ``keep`` (result reordered as ``keep``)."""
        keep = list(keep)
        if len(set(keep)) != len(keep):
            raise NoiseError("keep list must not contain duplicates")
        if any(q < 0 or q >= self.num_qubits for q in keep):
            raise NoiseError("keep qubit index out of range")
        traced = [q for q in range(self.num_qubits) if q not in keep]
        tensor = self._rho.reshape((2,) * (2 * self.num_qubits))
        # Move kept row axes first, kept column axes next, traced pairs last.
        row_axes = keep + traced
        col_axes = [self.num_qubits + q for q in keep + traced]
        tensor = np.transpose(tensor, row_axes + col_axes)
        dim_keep = 2 ** len(keep)
        dim_traced = 2 ** len(traced)
        tensor = tensor.reshape(dim_keep, dim_traced, dim_keep, dim_traced)
        reduced = np.trace(tensor, axis1=1, axis2=3)
        return DensityMatrix(max(1, len(keep)), reduced)

    def fidelity_with_pure(self, statevector: Sequence[complex]) -> float:
        """Fidelity ``<psi| rho |psi>`` with a pure target state."""
        vector = np.asarray(statevector, dtype=complex)
        if vector.shape[0] != self.dim:
            raise NoiseError("statevector dimension mismatch")
        vector = vector / np.linalg.norm(vector)
        return float(np.real(vector.conj() @ self._rho @ vector))

    def expectation(self, operator: np.ndarray,
                    qubits: Optional[Sequence[int]] = None) -> float:
        """Expectation value of a (possibly local) Hermitian operator."""
        if qubits is None:
            full = np.asarray(operator, dtype=complex)
            if full.shape != (self.dim, self.dim):
                raise NoiseError("operator dimension mismatch")
        else:
            full = expand_operator(np.asarray(operator, dtype=complex), qubits,
                                   self.num_qubits)
        return float(np.real(np.trace(full @ self._rho)))

    def copy(self) -> "DensityMatrix":
        """Deep copy."""
        return DensityMatrix(self.num_qubits, self._rho)
