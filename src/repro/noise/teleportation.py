"""Gate-teleportation fidelity evaluation.

Implements the remote-CNOT fidelity model of Sec. IV-C: the fidelity of a
remote gate is obtained by simulating the gate-teleportation circuit
(Fig. 1(c)) on the density-matrix simulator with

* a noisy (Werner) Bell resource state whose fidelity reflects how long the
  link idled in the buffer,
* noisy local two-qubit gates (depolarizing noise matched to the Table II
  CNOT fidelity), and
* noisy single-qubit measurements (classical readout error matched to the
  Table II measurement fidelity).

The protocol teleports a CNOT between two data qubits on different nodes
using one ebit: the control-side node entangles its data qubit with its ebit
half and measures in Z; the target-side node applies a CNOT from its ebit
half onto the target and measures in X; each side applies the heralded Pauli
correction.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

import numpy as np

from repro.entanglement.werner import werner_density_matrix
from repro.noise.channels import (
    depolarizing_kraus,
    depolarizing_parameter_for_fidelity,
)
from repro.noise.density_matrix import DensityMatrix
from repro.exceptions import NoiseError

__all__ = [
    "teleported_cnot_process_fidelity",
    "teleported_cnot_average_fidelity",
    "remote_gate_fidelity",
]

# Register layout used for the Choi-state evaluation:
#   0: reference of the control, 1: control data qubit,
#   2: ebit half on the control node, 3: ebit half on the target node,
#   4: target data qubit, 5: reference of the target.
_REF_C, _CTRL, _EBIT_C, _EBIT_T, _TARGET, _REF_T = range(6)

_CNOT = np.array(
    [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Z = np.array([[1, 0], [0, -1]], dtype=complex)
_BELL = np.zeros(4, dtype=complex)
_BELL[0] = _BELL[3] = 1.0 / np.sqrt(2.0)
_BELL_DM = np.outer(_BELL, _BELL.conj())


def _ideal_choi_target() -> np.ndarray:
    """Pure 4-qubit target state: CNOT applied to two reference Bell pairs.

    Qubit order of the returned state vector: (ref_c, control, target, ref_t).
    """
    state = DensityMatrix.from_product([_BELL_DM, _BELL_DM])
    # Qubits now: 0 ref_c, 1 control, 2 target, 3 ref_t — wait, from_product
    # of two Bell pairs yields (0,1) and (2,3); we want the CNOT between
    # qubits 1 (control) and 2 (target).
    state.apply_unitary(_CNOT, (1, 2))
    matrix = state.matrix
    eigenvalues, eigenvectors = np.linalg.eigh(matrix)
    return eigenvectors[:, int(np.argmax(eigenvalues))]


_IDEAL_TARGET = _ideal_choi_target()


@lru_cache(maxsize=2048)
def teleported_cnot_process_fidelity(
    link_fidelity: float,
    cnot_fidelity: float = 0.999,
    measurement_fidelity: float = 0.998,
    correction_fidelity: float = 0.9999,
) -> float:
    """Process (entanglement) fidelity of the teleported CNOT channel.

    Parameters
    ----------
    link_fidelity:
        Werner fidelity of the consumed entanglement link at consumption
        time (0.99 fresh, lower after buffering).
    cnot_fidelity:
        Average gate fidelity of the local CNOTs (Table II: 0.999).
    measurement_fidelity:
        Single-qubit measurement fidelity (Table II: 0.998); its complement
        is the probability of applying the wrong Pauli correction.
    correction_fidelity:
        Average gate fidelity of the single-qubit Pauli corrections.
    """
    if not (0.25 <= link_fidelity <= 1.0 + 1e-12):
        raise NoiseError(f"link fidelity {link_fidelity} outside [0.25, 1]")
    link_fidelity = min(1.0, link_fidelity)

    state = DensityMatrix.from_product(
        [
            _BELL_DM,                      # (ref_c, control)
            werner_density_matrix(link_fidelity),  # (ebit_c, ebit_t)
            _BELL_DM,                      # (target, ref_t)
        ]
    )
    # Register order after the product: 0 ref_c, 1 control, 2 ebit_c,
    # 3 ebit_t, 4 target, 5 ref_t — matching the module-level constants.

    cnot_noise = depolarizing_kraus(
        depolarizing_parameter_for_fidelity(cnot_fidelity, 2), 2
    )
    correction_noise = depolarizing_kraus(
        depolarizing_parameter_for_fidelity(correction_fidelity, 1), 1
    )
    readout_error = 1.0 - measurement_fidelity

    # Control node: CNOT from the control data qubit onto its ebit half.
    state.apply_unitary(_CNOT, (_CTRL, _EBIT_C))
    state.apply_kraus(cnot_noise, (_CTRL, _EBIT_C))
    # Measure the control-side ebit in Z; X correction on the target-side ebit.
    state.measure_with_feedforward(
        _EBIT_C, corrections={1: [(_X, (_EBIT_T,))]}, error_rate=readout_error,
        basis="z",
    )
    state.apply_kraus(correction_noise, (_EBIT_T,))

    # Target node: CNOT from its ebit half onto the target data qubit.
    state.apply_unitary(_CNOT, (_EBIT_T, _TARGET))
    state.apply_kraus(cnot_noise, (_EBIT_T, _TARGET))
    # Measure the target-side ebit in X; Z correction on the control qubit.
    state.measure_with_feedforward(
        _EBIT_T, corrections={1: [(_Z, (_CTRL,))]}, error_rate=readout_error,
        basis="x",
    )
    state.apply_kraus(correction_noise, (_CTRL,))

    reduced = state.partial_trace([_REF_C, _CTRL, _TARGET, _REF_T])
    return float(reduced.fidelity_with_pure(_IDEAL_TARGET))


def teleported_cnot_average_fidelity(
    link_fidelity: float,
    cnot_fidelity: float = 0.999,
    measurement_fidelity: float = 0.998,
    correction_fidelity: float = 0.9999,
) -> float:
    """Average gate fidelity of the teleported CNOT.

    Converted from the process fidelity via ``F_avg = (d F_pro + 1)/(d + 1)``
    with ``d = 4``.
    """
    process = teleported_cnot_process_fidelity(
        link_fidelity, cnot_fidelity, measurement_fidelity, correction_fidelity
    )
    return (4.0 * process + 1.0) / 5.0


@lru_cache(maxsize=256)
def _affine_coefficients(
    cnot_fidelity: float,
    measurement_fidelity: float,
    correction_fidelity: float,
) -> tuple:
    """``(value_at_F=0.25, slope)`` of the average fidelity in ``F``.

    The teleportation channel is a completely positive map, hence *linear*
    in the input density matrix; the Werner resource state is affine in its
    Bell fidelity ``F``; and both the process-fidelity overlap and the
    process→average conversion are affine maps.  The average remote-gate
    fidelity is therefore exactly affine in ``F``, so two density-matrix
    evaluations (at the Werner extremes 0.25 and 1.0) determine it for
    every link fidelity — numerically verified to machine epsilon in
    ``tests/test_teleportation_fidelity.py``.
    """
    at_min = teleported_cnot_average_fidelity(
        0.25, cnot_fidelity, measurement_fidelity, correction_fidelity
    )
    at_max = teleported_cnot_average_fidelity(
        1.0, cnot_fidelity, measurement_fidelity, correction_fidelity
    )
    return at_min, (at_max - at_min) / 0.75


def remote_gate_fidelity(
    link_fidelity: float,
    cnot_fidelity: float = 0.999,
    measurement_fidelity: float = 0.998,
    correction_fidelity: float = 0.9999,
    resolution: Optional[float] = None,
) -> float:
    """Remote-gate fidelity for a link fidelity, in O(1) after two sims.

    The executor consumes a link per remote gate per run, each with its own
    decayed fidelity; evaluating the 6-qubit teleportation circuit for every
    distinct value dominated execution wall-time.  The channel's exact
    affine dependence on the link fidelity (see
    :func:`_affine_coefficients`) reduces each call to a fused
    multiply-add, with the two anchor simulations cached per local-noise
    configuration.

    ``resolution`` preserves the historical quantise-then-simulate
    behaviour for callers that relied on it; ``None`` (the default)
    evaluates the affine form exactly.
    """
    clamped = min(1.0, max(0.25, link_fidelity))
    if resolution is not None:
        quantised = round(clamped / resolution) * resolution
        quantised = min(1.0, max(0.25, quantised))
        return teleported_cnot_average_fidelity(
            quantised, cnot_fidelity, measurement_fidelity,
            correction_fidelity,
        )
    at_min, slope = _affine_coefficients(
        cnot_fidelity, measurement_fidelity, correction_fidelity
    )
    return at_min + slope * (clamped - 0.25)
