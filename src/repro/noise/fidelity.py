"""Product-formula circuit-fidelity estimator.

Following Sec. IV-B of the paper, the output fidelity of a circuit execution
is estimated as the product of

* the fidelities of all local single-qubit gates,
* the fidelities of all local two-qubit gates,
* the fidelities of all remote gates implemented through gate teleportation
  (each depending on the Werner fidelity of the consumed link at consumption
  time), and
* an idling-decoherence factor ``exp(-kappa * t_idle)`` accounting for the
  latency of the execution.

Two idling conventions are supported: ``"makespan"`` (the default) penalises
the total circuit latency once, and ``"qubit-idle"`` sums the idle time of
every data qubit.  The paper does not spell out its exact convention; the
makespan form reproduces the reported magnitudes and, crucially, both forms
preserve the cross-design ordering that the evaluation cares about.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.hardware.parameters import GateFidelities
from repro.noise.teleportation import remote_gate_fidelity
from repro.exceptions import NoiseError

__all__ = ["FidelityModel", "FidelityBreakdown"]


@dataclass
class FidelityBreakdown:
    """Multiplicative components of one circuit-fidelity estimate."""

    single_qubit_factor: float = 1.0
    local_two_qubit_factor: float = 1.0
    measurement_factor: float = 1.0
    remote_factor: float = 1.0
    idling_factor: float = 1.0

    @property
    def total(self) -> float:
        """Product of all factors."""
        return (
            self.single_qubit_factor
            * self.local_two_qubit_factor
            * self.measurement_factor
            * self.remote_factor
            * self.idling_factor
        )


class FidelityModel:
    """Estimates circuit output fidelity from execution statistics.

    Parameters
    ----------
    fidelities:
        Table II gate fidelities.
    kappa:
        Decoherence rate per depth unit.
    idle_mode:
        ``"makespan"`` (default) or ``"qubit-idle"``; see the module
        docstring.
    """

    def __init__(self, fidelities: Optional[GateFidelities] = None,
                 kappa: float = 0.002, idle_mode: str = "makespan") -> None:
        if idle_mode not in ("makespan", "qubit-idle"):
            raise NoiseError(f"unknown idle mode {idle_mode!r}")
        if kappa < 0:
            raise NoiseError("decoherence rate must be non-negative")
        self.fidelities = fidelities or GateFidelities()
        self.kappa = kappa
        self.idle_mode = idle_mode

    # ------------------------------------------------------------------
    def remote_fidelity(self, link_fidelity: float) -> float:
        """Fidelity of one teleported remote gate for a given link fidelity."""
        return remote_gate_fidelity(
            link_fidelity,
            cnot_fidelity=self.fidelities.local_cnot,
            measurement_fidelity=self.fidelities.measurement,
            correction_fidelity=self.fidelities.single_qubit,
        )

    def idling_factor(self, makespan: float, qubit_idle_total: float = 0.0) -> float:
        """Idling-decoherence factor for one execution."""
        if makespan < 0 or qubit_idle_total < 0:
            raise NoiseError("latency statistics must be non-negative")
        exposure = makespan if self.idle_mode == "makespan" else qubit_idle_total
        return math.exp(-self.kappa * exposure)

    # ------------------------------------------------------------------
    def estimate(
        self,
        num_single_qubit: int,
        num_local_two_qubit: int,
        remote_link_fidelities: Sequence[float],
        makespan: float,
        num_measurements: int = 0,
        qubit_idle_total: float = 0.0,
    ) -> FidelityBreakdown:
        """Estimate the output fidelity of one execution.

        Parameters
        ----------
        num_single_qubit / num_local_two_qubit / num_measurements:
            Local operation counts of the executed circuit.
        remote_link_fidelities:
            The Werner fidelity of the link consumed by every remote gate, at
            its consumption time.
        makespan:
            Total circuit latency in depth units.
        qubit_idle_total:
            Sum of data-qubit idle times (only used in ``"qubit-idle"`` mode).
        """
        if num_single_qubit < 0 or num_local_two_qubit < 0 or num_measurements < 0:
            raise NoiseError("gate counts must be non-negative")
        breakdown = FidelityBreakdown()
        breakdown.single_qubit_factor = self.fidelities.single_qubit ** num_single_qubit
        breakdown.local_two_qubit_factor = (
            self.fidelities.local_cnot ** num_local_two_qubit
        )
        breakdown.measurement_factor = self.fidelities.measurement ** num_measurements
        remote = 1.0
        for link_fidelity in remote_link_fidelities:
            remote *= self.remote_fidelity(link_fidelity)
        breakdown.remote_factor = remote
        breakdown.idling_factor = self.idling_factor(makespan, qubit_idle_total)
        return breakdown

    def estimate_total(self, *args, **kwargs) -> float:
        """Same as :meth:`estimate` but returns only the scalar fidelity."""
        return self.estimate(*args, **kwargs).total
