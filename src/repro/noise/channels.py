"""Quantum noise channels in Kraus form.

Provides the channels used by the fidelity model of the paper: the unbiased
depolarizing channel (buffer-qubit idling and local gate noise), general
Pauli channels, and classical measurement-error models.  All channels are
represented by lists of Kraus operators acting on one or two qubits.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

import numpy as np

from repro.exceptions import NoiseError

__all__ = [
    "PAULI_MATRICES",
    "depolarizing_kraus",
    "pauli_channel_kraus",
    "dephasing_kraus",
    "amplitude_damping_kraus",
    "depolarizing_parameter_for_fidelity",
    "average_gate_fidelity_of_depolarizing",
    "validate_kraus",
]

PAULI_MATRICES: Dict[str, np.ndarray] = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


def validate_kraus(operators: Sequence[np.ndarray], atol: float = 1e-9) -> bool:
    """Check the completeness relation ``sum_k K_k^dagger K_k = I``."""
    if not operators:
        raise NoiseError("a channel needs at least one Kraus operator")
    dim = operators[0].shape[0]
    total = np.zeros((dim, dim), dtype=complex)
    for op in operators:
        if op.shape != (dim, dim):
            raise NoiseError("all Kraus operators must share the same shape")
        total += op.conj().T @ op
    return bool(np.allclose(total, np.eye(dim), atol=atol))


def pauli_channel_kraus(probabilities: Dict[str, float]) -> List[np.ndarray]:
    """Single-qubit Pauli channel.

    ``probabilities`` maps Pauli labels (``"X"``, ``"Y"``, ``"Z"``) to error
    probabilities; the identity gets the remaining weight.
    """
    error_total = sum(probabilities.values())
    if error_total > 1.0 + 1e-12:
        raise NoiseError("Pauli error probabilities sum to more than 1")
    if any(p < 0 for p in probabilities.values()):
        raise NoiseError("Pauli error probabilities must be non-negative")
    kraus = [math.sqrt(max(0.0, 1.0 - error_total)) * PAULI_MATRICES["I"]]
    for label, probability in probabilities.items():
        if label not in ("X", "Y", "Z"):
            raise NoiseError(f"unknown Pauli label {label!r}")
        if probability > 0:
            kraus.append(math.sqrt(probability) * PAULI_MATRICES[label])
    return kraus


def depolarizing_kraus(probability: float, num_qubits: int = 1) -> List[np.ndarray]:
    """Depolarizing channel ``rho -> (1-p) rho + p I / d`` on ``num_qubits``.

    The Kraus decomposition distributes the ``p`` weight uniformly over all
    non-identity Pauli strings (and part of the identity), which reproduces
    the completely depolarizing limit at ``p = 1``.
    """
    if not (0.0 <= probability <= 1.0):
        raise NoiseError("depolarizing probability must be in [0, 1]")
    if num_qubits < 1 or num_qubits > 3:
        raise NoiseError("depolarizing channel supports 1 to 3 qubits")
    dim = 2 ** num_qubits
    num_paulis = 4 ** num_qubits
    labels = list(PAULI_MATRICES)
    kraus: List[np.ndarray] = []
    identity_weight = 1.0 - probability * (num_paulis - 1) / num_paulis
    for index in range(num_paulis):
        digits = []
        value = index
        for _ in range(num_qubits):
            digits.append(value % 4)
            value //= 4
        matrix = np.array([[1.0]], dtype=complex)
        for digit in digits:
            matrix = np.kron(matrix, PAULI_MATRICES[labels[digit]])
        if index == 0:
            weight = identity_weight
        else:
            weight = probability / num_paulis
        if weight > 0:
            kraus.append(math.sqrt(weight) * matrix)
    return kraus


def dephasing_kraus(probability: float) -> List[np.ndarray]:
    """Single-qubit dephasing (phase-flip) channel."""
    return pauli_channel_kraus({"Z": probability})


def amplitude_damping_kraus(gamma: float) -> List[np.ndarray]:
    """Single-qubit amplitude-damping channel with decay probability ``gamma``."""
    if not (0.0 <= gamma <= 1.0):
        raise NoiseError("damping probability must be in [0, 1]")
    k0 = np.array([[1.0, 0.0], [0.0, math.sqrt(1.0 - gamma)]], dtype=complex)
    k1 = np.array([[0.0, math.sqrt(gamma)], [0.0, 0.0]], dtype=complex)
    return [k0, k1]


def depolarizing_parameter_for_fidelity(average_fidelity: float,
                                        num_qubits: int) -> float:
    """Depolarizing probability reproducing a target average gate fidelity.

    For a ``d``-dimensional depolarizing channel the average gate fidelity is
    ``F = 1 - p (d - 1) / d``; inverting gives ``p = d (1 - F) / (d - 1)``.
    """
    if not (0.0 < average_fidelity <= 1.0):
        raise NoiseError("average fidelity must be in (0, 1]")
    dim = 2 ** num_qubits
    probability = dim * (1.0 - average_fidelity) / (dim - 1)
    if probability > 1.0:
        raise NoiseError("no depolarizing channel achieves such a low fidelity")
    return probability


def average_gate_fidelity_of_depolarizing(probability: float,
                                          num_qubits: int) -> float:
    """Inverse of :func:`depolarizing_parameter_for_fidelity`."""
    dim = 2 ** num_qubits
    return 1.0 - probability * (dim - 1) / dim
