"""Noise channels, density-matrix simulation, and fidelity models."""

from repro.noise.channels import (
    PAULI_MATRICES,
    amplitude_damping_kraus,
    average_gate_fidelity_of_depolarizing,
    dephasing_kraus,
    depolarizing_kraus,
    depolarizing_parameter_for_fidelity,
    pauli_channel_kraus,
    validate_kraus,
)
from repro.noise.density_matrix import DensityMatrix, expand_operator
from repro.noise.fidelity import FidelityBreakdown, FidelityModel
from repro.noise.teleportation import (
    remote_gate_fidelity,
    teleported_cnot_average_fidelity,
    teleported_cnot_process_fidelity,
)

__all__ = [
    "PAULI_MATRICES",
    "depolarizing_kraus",
    "pauli_channel_kraus",
    "dephasing_kraus",
    "amplitude_damping_kraus",
    "depolarizing_parameter_for_fidelity",
    "average_gate_fidelity_of_depolarizing",
    "validate_kraus",
    "DensityMatrix",
    "expand_operator",
    "FidelityModel",
    "FidelityBreakdown",
    "remote_gate_fidelity",
    "teleported_cnot_average_fidelity",
    "teleported_cnot_process_fidelity",
]
