"""ASAP / ALAP segment variants.

Each circuit segment is pre-compiled into three equivalent orderings
(Sec. III-D, Fig. 4):

* ``original`` — the order produced by the partitioner,
* ``asap`` — remote gates commuted as early as possible, so that already
  buffered EPR pairs are consumed immediately, and
* ``alap`` — remote gates commuted as late as possible, giving the
  entanglement-generation service more time before the remote gates demand
  pairs.

The rewrites only swap commuting gates, so all three variants implement the
same unitary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.transforms import alap_variant, asap_variant, reorder_is_equivalent
from repro.scheduling.segmentation import CircuitSegment
from repro.exceptions import SchedulingError

__all__ = ["SchedulingVariant", "SegmentVariants", "compile_segment_variants"]


class SchedulingVariant:
    """Names of the pre-compiled segment orderings."""

    ORIGINAL = "original"
    ASAP = "asap"
    ALAP = "alap"

    ALL = (ORIGINAL, ASAP, ALAP)


@dataclass
class SegmentVariants:
    """The three pre-compiled orderings of one circuit segment."""

    segment: CircuitSegment
    original: QuantumCircuit
    asap: QuantumCircuit
    alap: QuantumCircuit

    def get(self, variant: str) -> QuantumCircuit:
        """Return the circuit for a variant name."""
        if variant == SchedulingVariant.ORIGINAL:
            return self.original
        if variant == SchedulingVariant.ASAP:
            return self.asap
        if variant == SchedulingVariant.ALAP:
            return self.alap
        raise SchedulingError(f"unknown scheduling variant {variant!r}")

    def verify_equivalence(self) -> bool:
        """Check that ASAP and ALAP are commutation-legal reorderings."""
        return reorder_is_equivalent(self.original, self.asap) and \
            reorder_is_equivalent(self.original, self.alap)

    def remote_positions(self, variant: str) -> List[int]:
        """Positions of remote gates within the chosen variant's gate list."""
        circuit = self.get(variant)
        return [index for index, gate in enumerate(circuit.gates) if gate.is_remote]

    def mean_remote_position(self, variant: str) -> float:
        """Average position of remote gates (ASAP should not exceed ALAP)."""
        positions = self.remote_positions(variant)
        if not positions:
            return 0.0
        return sum(positions) / len(positions)


def compile_segment_variants(segment: CircuitSegment) -> SegmentVariants:
    """Pre-compile the ASAP and ALAP orderings of one segment."""
    original = segment.circuit
    return SegmentVariants(
        segment=segment,
        original=original,
        asap=asap_variant(original),
        alap=alap_variant(original),
    )
