"""Circuit segmentation for adaptive scheduling.

The adaptive controller of the paper does not recompile the whole circuit at
run time; instead the circuit is statically partitioned into *segments*, each
containing ``m`` remote gates (Sec. III-D).  Every segment is pre-compiled
into ASAP and ALAP variants and the controller selects one of them at run
time based on the number of buffered EPR pairs.

``m`` is tunable; the paper sets it to the product of the number of
communication qubits and the per-attempt EPR generation probability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.circuits.circuit import QuantumCircuit
from repro.exceptions import SchedulingError

__all__ = ["CircuitSegment", "segment_circuit", "default_segment_length"]


@dataclass
class CircuitSegment:
    """A contiguous chunk of the circuit containing up to ``m`` remote gates.

    Attributes
    ----------
    index:
        Segment position within the circuit.
    circuit:
        The segment's gates as a standalone circuit over the full register.
    start_gate / end_gate:
        Gate-index range ``[start_gate, end_gate)`` in the original circuit.
    num_remote:
        Number of remote-labelled gates inside the segment.
    """

    index: int
    circuit: QuantumCircuit
    start_gate: int
    end_gate: int
    num_remote: int

    @property
    def num_gates(self) -> int:
        """Total gates in the segment."""
        return self.circuit.num_gates

    def qubits_used(self) -> tuple:
        """Qubits touched by at least one gate of the segment."""
        return self.circuit.qubits_used()


def default_segment_length(num_comm_pairs: int, success_probability: float) -> int:
    """Paper's default segment length ``m = #comm qubits * psucc`` (>= 1)."""
    if num_comm_pairs < 0:
        raise SchedulingError("communication pair count must be non-negative")
    if not (0.0 < success_probability <= 1.0):
        raise SchedulingError("success probability must be in (0, 1]")
    return max(1, int(round(num_comm_pairs * success_probability)))


def segment_circuit(circuit: QuantumCircuit,
                    remote_gates_per_segment: int) -> List[CircuitSegment]:
    """Split a circuit into contiguous segments of ``m`` remote gates each.

    A segment boundary is placed immediately after every ``m``-th remote
    gate; the trailing gates after the last remote gate form a final segment
    (which may contain no remote gates at all).  Circuits without remote
    gates yield a single segment.

    Parameters
    ----------
    circuit:
        Remote-labelled circuit (output of
        :func:`repro.partitioning.distribute_circuit`).
    remote_gates_per_segment:
        The tunable parameter ``m``.
    """
    if remote_gates_per_segment < 1:
        raise SchedulingError("segments need at least one remote gate each")

    segments: List[CircuitSegment] = []
    start = 0
    remote_in_current = 0
    gates = circuit.gates

    def close_segment(end: int) -> None:
        nonlocal start, remote_in_current
        if end <= start:
            return
        segment_circuit_obj = QuantumCircuit(
            circuit.num_qubits, name=f"{circuit.name}_seg{len(segments)}"
        )
        segment_circuit_obj.extend(gates[start:end])
        segments.append(
            CircuitSegment(
                index=len(segments),
                circuit=segment_circuit_obj,
                start_gate=start,
                end_gate=end,
                num_remote=remote_in_current,
            )
        )
        start = end
        remote_in_current = 0

    for position, gate in enumerate(gates):
        if gate.is_remote:
            remote_in_current += 1
            if remote_in_current == remote_gates_per_segment:
                close_segment(position + 1)
    close_segment(len(gates))

    if not segments:
        empty = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}_seg0")
        segments.append(CircuitSegment(0, empty, 0, 0, 0))
    return segments


def reassemble(segments: List[CircuitSegment],
               num_qubits: int, name: str = "reassembled") -> QuantumCircuit:
    """Concatenate segments back into a single circuit (used by tests)."""
    circuit = QuantumCircuit(num_qubits, name=name)
    for segment in segments:
        circuit.extend(segment.circuit.gates)
    return circuit
