"""Pre-compiled schedule lookup table.

At run time the DQC controller cannot afford to resynthesise the circuit, so
the paper pre-compiles the ASAP/ALAP variants of every segment and keeps a
lookup table keyed by the number of available EPR pairs ``e``:

* ``e > m``  → use the ASAP variant (consume the surplus immediately),
* ``e == 0`` → use the ALAP variant (give generation time to catch up),
* otherwise  → keep the original schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.circuits.circuit import QuantumCircuit
from repro.scheduling.policies import AdaptivePolicy
from repro.scheduling.segmentation import CircuitSegment, segment_circuit
from repro.scheduling.variants import (
    SchedulingVariant,
    SegmentVariants,
    compile_segment_variants,
)
from repro.exceptions import SchedulingError

__all__ = ["ScheduleLookupTable", "build_lookup_table"]


@dataclass
class LookupDecision:
    """Record of one run-time variant selection (kept for analysis/tests)."""

    segment_index: int
    available_epr: int
    variant: str
    decision_time: float


class ScheduleLookupTable:
    """Pre-compiled segment variants plus the run-time selection rule.

    Parameters
    ----------
    variants:
        One :class:`SegmentVariants` per circuit segment, in order.
    policy:
        The adaptive thresholds (defaults to the paper's rule with
        ``m = segment length``).
    """

    def __init__(self, variants: List[SegmentVariants],
                 policy: Optional[AdaptivePolicy] = None) -> None:
        if not variants:
            raise SchedulingError("lookup table needs at least one segment")
        self.variants = variants
        self.policy = policy or AdaptivePolicy()
        self.decisions: List[LookupDecision] = []

    # ------------------------------------------------------------------
    @property
    def num_segments(self) -> int:
        """Number of segments in the table."""
        return len(self.variants)

    def segment(self, index: int) -> CircuitSegment:
        """The underlying segment at ``index``."""
        return self.variants[index].segment

    def select_name(self, segment_index: int, available_epr: int,
                    decision_time: float = 0.0) -> str:
        """Select a segment variant *name* given the buffered EPR count.

        Records the decision like :meth:`select`; the batched executor uses
        the name to pick a pre-lowered gate stream instead of a circuit.
        """
        if not (0 <= segment_index < self.num_segments):
            raise SchedulingError(f"segment index {segment_index} out of range")
        threshold = self.policy.effective_threshold(
            self.variants[segment_index].segment.num_remote
        )
        variant = self.policy.choose(available_epr, threshold)
        self.decisions.append(
            LookupDecision(segment_index, available_epr, variant, decision_time)
        )
        return variant

    def select(self, segment_index: int, available_epr: int,
               decision_time: float = 0.0) -> QuantumCircuit:
        """Select a segment variant given the buffered EPR count.

        Returns the chosen ordering and records the decision.
        """
        variant = self.select_name(segment_index, available_epr, decision_time)
        return self.variants[segment_index].get(variant)

    def variant_histogram(self) -> Dict[str, int]:
        """How many times each variant was chosen (for reports and tests)."""
        histogram = {name: 0 for name in SchedulingVariant.ALL}
        for decision in self.decisions:
            histogram[decision.variant] += 1
        return histogram

    def reset_decisions(self) -> None:
        """Clear the recorded decisions (between simulation runs)."""
        self.decisions = []


def build_lookup_table(circuit: QuantumCircuit, remote_gates_per_segment: int,
                       policy: Optional[AdaptivePolicy] = None) -> ScheduleLookupTable:
    """Segment a remote-labelled circuit and pre-compile all variants."""
    segments = segment_circuit(circuit, remote_gates_per_segment)
    variants = [compile_segment_variants(segment) for segment in segments]
    return ScheduleLookupTable(variants, policy=policy)
