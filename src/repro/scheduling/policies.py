"""Remote-gate scheduling policies.

Encodes the run-time decision rule of the adaptive scheduler (Sec. III-D)
and a couple of static baselines used in ablation benchmarks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.scheduling.variants import SchedulingVariant
from repro.exceptions import SchedulingError

__all__ = ["StaticPolicy", "AdaptivePolicy"]


class StaticPolicy(str, enum.Enum):
    """Fixed segment orderings used by the non-adaptive designs."""

    ORIGINAL = SchedulingVariant.ORIGINAL
    ASAP = SchedulingVariant.ASAP
    ALAP = SchedulingVariant.ALAP

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class AdaptivePolicy:
    """Threshold rule selecting a segment variant from the EPR count ``e``.

    Attributes
    ----------
    asap_threshold:
        Select ASAP when ``e > asap_threshold``.  ``None`` (default) means
        "use the segment's own remote-gate count ``m``", which is the paper's
        rule.
    alap_threshold:
        Select ALAP when ``e <= alap_threshold`` (0 in the paper).
    """

    asap_threshold: Optional[int] = None
    alap_threshold: int = 0

    def __post_init__(self) -> None:
        if self.asap_threshold is not None and self.asap_threshold < 0:
            raise SchedulingError("ASAP threshold must be non-negative")
        if self.alap_threshold < 0:
            raise SchedulingError("ALAP threshold must be non-negative")
        if self.asap_threshold is not None and self.asap_threshold < self.alap_threshold:
            raise SchedulingError("ASAP threshold cannot be below the ALAP threshold")

    def effective_threshold(self, segment_remote_count: int) -> int:
        """The ASAP threshold actually used for a segment with ``m`` remote gates."""
        if self.asap_threshold is not None:
            return self.asap_threshold
        return max(self.alap_threshold, segment_remote_count)

    def choose(self, available_epr: int, threshold: int) -> str:
        """Apply the decision rule and return a variant name."""
        if available_epr < 0:
            raise SchedulingError("available EPR count must be non-negative")
        if available_epr > threshold:
            return SchedulingVariant.ASAP
        if available_epr <= self.alap_threshold:
            return SchedulingVariant.ALAP
        return SchedulingVariant.ORIGINAL
