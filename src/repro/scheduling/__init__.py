"""Adaptive remote-gate scheduling (the paper's software contribution)."""

from repro.scheduling.lookup import ScheduleLookupTable, build_lookup_table
from repro.scheduling.policies import AdaptivePolicy, StaticPolicy
from repro.scheduling.segmentation import (
    CircuitSegment,
    default_segment_length,
    segment_circuit,
)
from repro.scheduling.variants import (
    SchedulingVariant,
    SegmentVariants,
    compile_segment_variants,
)

__all__ = [
    "CircuitSegment",
    "segment_circuit",
    "default_segment_length",
    "SchedulingVariant",
    "SegmentVariants",
    "compile_segment_variants",
    "ScheduleLookupTable",
    "build_lookup_table",
    "AdaptivePolicy",
    "StaticPolicy",
]
