"""Stochastic heralded entanglement generation.

Combines an :class:`~repro.entanglement.attempts.AttemptSchedule` with a
Bernoulli success model: every attempt of every communication-qubit pair
succeeds independently with probability ``psucc`` (0.4 in the paper's
evaluation).  The generator exposes the successes of each pair as a lazy,
reproducible stream so the runtime can pull exactly as much of the future as
it needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.entanglement.attempts import AttemptPolicy, AttemptSchedule
from repro.exceptions import EntanglementError

__all__ = ["GenerationEvent", "EntanglementGenerator"]


@dataclass(frozen=True)
class GenerationEvent:
    """One successful entanglement-generation attempt."""

    time: float
    pair_index: int
    attempt_index: int


class EntanglementGenerator:
    """Per-pair Bernoulli success process over an attempt schedule.

    Parameters
    ----------
    schedule:
        The deterministic attempt timing (sync or async phasing).
    success_probability:
        Per-attempt success probability ``psucc``.
    seed:
        Seed of the underlying PRNG; every pair gets an independent,
        reproducible sub-stream.

    Notes
    -----
    Success outcomes are drawn lazily but cached, so querying the same
    attempt twice always gives the same answer — this is what makes the
    interactive runtime simulation reproducible for a fixed seed regardless
    of the order in which the executor explores the timeline.
    """

    def __init__(self, schedule: AttemptSchedule,
                 success_probability: float = 0.4,
                 seed: int = 0) -> None:
        if not (0.0 < success_probability <= 1.0):
            raise EntanglementError("success probability must be in (0, 1]")
        self.schedule = schedule
        self.success_probability = success_probability
        self.seed = seed
        self._rngs: Dict[int, np.random.Generator] = {}
        self._outcomes: Dict[int, List[bool]] = {}

    # ------------------------------------------------------------------
    def _rng_for(self, pair_index: int) -> np.random.Generator:
        if pair_index not in self._rngs:
            self._rngs[pair_index] = np.random.default_rng(
                np.random.SeedSequence(entropy=self.seed,
                                       spawn_key=(pair_index,))
            )
        return self._rngs[pair_index]

    def attempt_succeeds(self, pair_index: int, attempt_index: int) -> bool:
        """Whether the given attempt of the given pair succeeds (memoised)."""
        if attempt_index < 0:
            raise EntanglementError("attempt index must be non-negative")
        outcomes = self._outcomes.setdefault(pair_index, [])
        rng = self._rng_for(pair_index)
        while len(outcomes) <= attempt_index:
            outcomes.append(bool(rng.random() < self.success_probability))
        return outcomes[attempt_index]

    # ------------------------------------------------------------------
    def successes_between(self, pair_index: int, start: float,
                          end: float) -> List[GenerationEvent]:
        """Successful attempts of one pair completing in ``(start, end]``."""
        events = []
        attempt = self.schedule.attempt_index_completing_after(pair_index, start)
        while True:
            completion = self.schedule.attempt_completion(pair_index, attempt)
            if completion > end + 1e-12:
                break
            if completion > start + 1e-12 and self.attempt_succeeds(pair_index, attempt):
                events.append(GenerationEvent(completion, pair_index, attempt))
            attempt += 1
        return events

    def first_success_after(self, pair_index: int, time: float,
                            max_attempts: int = 100000) -> GenerationEvent:
        """First successful attempt of a pair completing strictly after ``time``."""
        attempt = self.schedule.attempt_index_completing_after(pair_index, time)
        for _ in range(max_attempts):
            completion = self.schedule.attempt_completion(pair_index, attempt)
            if completion > time + 1e-12 and self.attempt_succeeds(pair_index, attempt):
                return GenerationEvent(completion, pair_index, attempt)
            attempt += 1
        raise EntanglementError(
            f"no success within {max_attempts} attempts (psucc too small?)"
        )

    def merged_successes_between(self, start: float, end: float) -> List[GenerationEvent]:
        """Successes of *all* pairs in ``(start, end]``, sorted by time."""
        events: List[GenerationEvent] = []
        for pair_index in range(self.schedule.num_pairs):
            events.extend(self.successes_between(pair_index, start, end))
        events.sort(key=lambda event: (event.time, event.pair_index))
        return events

    # ------------------------------------------------------------------
    def expected_rate(self) -> float:
        """Expected number of successes per time unit across all pairs."""
        return (
            self.schedule.num_pairs
            * self.success_probability
            / self.schedule.cycle_time
        )

    def expected_wait_for_next_success(self) -> float:
        """Mean waiting time for the next success from a random instant.

        With ``n`` pairs attempting continuously, successes form an
        approximately periodic thinned process of rate
        ``n * psucc / T_EG``; the mean residual waiting time is roughly half
        an inter-arrival period plus half a cycle of heralding alignment.
        Used only for analytical sanity checks and examples.
        """
        rate = self.expected_rate()
        if rate == 0:
            return float("inf")
        return 0.5 / rate + 0.5 * self.schedule.cycle_time / max(
            1, self.schedule.effective_groups
        )
