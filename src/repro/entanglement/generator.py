"""Stochastic heralded entanglement generation.

Combines an :class:`~repro.entanglement.attempts.AttemptSchedule` with a
Bernoulli success model: every attempt of every communication-qubit pair
succeeds independently with probability ``psucc`` (0.4 in the paper's
evaluation).  The generator exposes the successes of each pair as a lazy,
reproducible stream so the runtime can pull exactly as much of the future as
it needs.

Outcomes are drawn from the per-pair PRNG in *vectorized blocks* (a single
``Generator.random(n)`` call covers ``n`` attempts) rather than one Python
call per attempt.  NumPy draws the identical variate sequence whether
``random()`` is called ``n`` times or once with ``size=n``, so block
sampling is bit-identical to the historical per-attempt draws — this is
what lets the batched executor and the legacy reference executor share one
stochastic process.  Success *times* are materialised alongside the
outcomes as sorted per-pair arrays, turning interval queries into binary
searches instead of per-attempt Python loops.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.entanglement.attempts import AttemptSchedule
from repro.exceptions import EntanglementError

__all__ = ["GenerationEvent", "EntanglementGenerator"]

#: First vectorized outcome block per pair; subsequent blocks double up to
#: :data:`_MAX_BLOCK` so long simulations stay O(log) in RNG calls.
_MIN_BLOCK = 128
_MAX_BLOCK = 8192


@dataclass(frozen=True)
class GenerationEvent:
    """One successful entanglement-generation attempt."""

    time: float
    pair_index: int
    attempt_index: int


class EntanglementGenerator:
    """Per-pair Bernoulli success process over an attempt schedule.

    Parameters
    ----------
    schedule:
        The deterministic attempt timing (sync or async phasing).
    success_probability:
        Per-attempt success probability ``psucc``.
    seed:
        Seed of the underlying PRNG; every pair gets an independent,
        reproducible sub-stream.

    Notes
    -----
    Success outcomes are drawn lazily but cached, so querying the same
    attempt twice always gives the same answer — this is what makes the
    interactive runtime simulation reproducible for a fixed seed regardless
    of the order in which the executor explores the timeline.
    """

    def __init__(self, schedule: AttemptSchedule,
                 success_probability: float = 0.4,
                 seed: int = 0) -> None:
        if not (0.0 < success_probability <= 1.0):
            raise EntanglementError("success probability must be in (0, 1]")
        self.schedule = schedule
        self.success_probability = success_probability
        self.seed = seed
        # Per-pair sampled state, indexed by pair: number of attempts drawn
        # so far, the raw outcome blocks, and the sorted success times /
        # attempt indices.  (A pair-less schedule still allocates one slot
        # so out-of-range errors surface through the schedule's own checks.)
        slots = max(1, schedule.num_pairs)
        self._rngs: List[Optional[np.random.Generator]] = [None] * slots
        self._drawn: List[int] = [0] * slots
        self._outcomes: List[List[np.ndarray]] = [[] for _ in range(slots)]
        self._success_times: List[List[float]] = [[] for _ in range(slots)]
        self._success_attempts: List[List[int]] = [[] for _ in range(slots)]
        self._first_completion: List[Optional[float]] = [None] * slots

    # ------------------------------------------------------------------
    def _rng_for(self, pair_index: int) -> np.random.Generator:
        rng = self._rngs[pair_index]
        if rng is None:
            rng = np.random.default_rng(
                np.random.SeedSequence(entropy=self.seed,
                                       spawn_key=(pair_index,))
            )
            self._rngs[pair_index] = rng
        return rng

    def _first_completion_of(self, pair_index: int) -> float:
        first = self._first_completion[pair_index]
        if first is None:
            first = self.schedule.first_completion(pair_index)
            self._first_completion[pair_index] = first
        return first

    def _attempt_after(self, pair_index: int, time: float) -> int:
        """Inline replica of :meth:`AttemptSchedule.attempt_index_completing_after`.

        Identical float arithmetic (including the grid-hit rounding
        tolerance) on the cached first-completion time, avoiding the
        five-deep method chain in the per-query hot path.
        """
        first = self._first_completion[pair_index]
        if first is None:
            first = self._first_completion_of(pair_index)
        if time < first - 1e-12:
            return 0
        elapsed = (time - first) / self.schedule.cycle_time
        if abs(elapsed - round(elapsed)) < 1e-9:
            return int(round(elapsed)) + 1
        return int(elapsed) + 1

    # ------------------------------------------------------------------
    # bulk sampling
    # ------------------------------------------------------------------
    def _extend(self, pair_index: int) -> None:
        """Draw the next vectorized outcome block of one pair.

        One ``Generator.random(block)`` call consumes exactly the same
        variates as ``block`` scalar draws, so outcomes per attempt index
        are bit-identical to the per-attempt sampling this replaces.
        Successful attempts are appended to the pair's sorted success-time
        arrays (``completion = first + k * cycle``, the same float
        arithmetic as :meth:`AttemptSchedule.attempt_completion`).
        """
        drawn = self._drawn[pair_index]
        block = min(_MAX_BLOCK, max(_MIN_BLOCK, drawn))
        outcomes = self._rng_for(pair_index).random(block) < self.success_probability
        self._outcomes[pair_index].append(outcomes)
        successes = np.nonzero(outcomes)[0]
        if successes.size:
            attempts = successes + drawn
            times = self.schedule.completion_times(pair_index, attempts)
            self._success_times[pair_index].extend(times.tolist())
            self._success_attempts[pair_index].extend(attempts.tolist())
        self._drawn[pair_index] = drawn + block

    def _ensure_attempts(self, pair_index: int, count: int) -> None:
        """Materialise at least ``count`` attempt outcomes for one pair."""
        while self._drawn[pair_index] < count:
            self._extend(pair_index)

    def _ensure_time(self, pair_index: int, time: float) -> None:
        """Materialise every attempt completing at or before ``time``."""
        first = self._first_completion_of(pair_index)
        cycle = self.schedule.cycle_time
        threshold = time + 1e-12
        drawn = self._drawn[pair_index]
        while drawn == 0 or first + (drawn - 1) * cycle <= threshold:
            self._extend(pair_index)
            drawn = self._drawn[pair_index]

    def _check_pair(self, pair_index: int) -> None:
        if not (0 <= pair_index < max(1, self.schedule.num_pairs)):
            raise EntanglementError(
                f"pair index {pair_index} out of range for "
                f"{self.schedule.num_pairs} pairs"
            )

    def attempt_succeeds(self, pair_index: int, attempt_index: int) -> bool:
        """Whether the given attempt of the given pair succeeds (memoised)."""
        if attempt_index < 0:
            raise EntanglementError("attempt index must be non-negative")
        self._check_pair(pair_index)
        self._ensure_attempts(pair_index, attempt_index + 1)
        offset = attempt_index
        for block in self._outcomes[pair_index]:
            if offset < block.size:
                return bool(block[offset])
            offset -= block.size
        raise EntanglementError(  # pragma: no cover - unreachable by design
            f"attempt {attempt_index} of pair {pair_index} not materialised"
        )

    # ------------------------------------------------------------------
    def successes_between(self, pair_index: int, start: float,
                          end: float) -> List[GenerationEvent]:
        """Successful attempts of one pair completing in ``(start, end]``.

        The interval boundaries replicate the historical per-attempt scan
        exactly: the scan starts at
        :meth:`AttemptSchedule.attempt_index_completing_after` (whose
        grid-hit tolerance can skip a completion within ``1e-9`` of
        ``start``) and keeps completions ``> start + 1e-12`` and
        ``<= end + 1e-12``.
        """
        self._check_pair(pair_index)
        if end < start:
            return []
        self._ensure_time(pair_index, end)
        first_attempt = self._attempt_after(pair_index, start)
        times = self._success_times[pair_index]
        attempts = self._success_attempts[pair_index]
        lo = bisect_left(attempts, first_attempt)
        start_bound = bisect_right(times, start + 1e-12)
        if start_bound > lo:
            lo = start_bound
        hi = bisect_right(times, end + 1e-12)
        if hi <= lo:
            return []
        return [
            GenerationEvent(times[i], pair_index, attempts[i])
            for i in range(lo, hi)
        ]

    def first_success_after(self, pair_index: int, time: float,
                            max_attempts: int = 100000) -> GenerationEvent:
        """First successful attempt of a pair completing strictly after ``time``.

        Only the ``max_attempts`` attempts following the scan start are
        considered (block sampling may have drawn further ahead, but a
        success beyond the window still raises, preserving the historical
        timeout contract).
        """
        self._check_pair(pair_index)
        first_attempt = self._attempt_after(pair_index, time)
        limit = first_attempt + max_attempts
        threshold = time + 1e-12
        while True:
            times = self._success_times[pair_index]
            attempts = self._success_attempts[pair_index]
            lo = bisect_left(attempts, first_attempt)
            lo = max(lo, bisect_right(times, threshold))
            if lo < len(times):
                if attempts[lo] < limit:
                    return GenerationEvent(times[lo], pair_index, attempts[lo])
            elif self._drawn[pair_index] < limit:
                self._extend(pair_index)
                continue
            raise EntanglementError(
                f"no success within {max_attempts} attempts (psucc too small?)"
            )

    def first_fresh_success(self, time: float, excluded,
                            horizon: float) -> Optional[GenerationEvent]:
        """Earliest success after ``time`` not in ``excluded``, across pairs.

        Implements the selection rule of the service's direct-consumption
        path in one fused scan: successes are ordered by ``(completion,
        pair_index)``, the boundary semantics match
        :meth:`successes_between` exactly (attempt-index lower bound plus
        the ``> time + 1e-12`` filter), ``excluded`` holds already-delivered
        ``(pair_index, attempt_index)`` keys, and attempts are drawn lazily
        no further than ``horizon`` (or the best candidate found so far).
        Returns ``None`` when nothing completes by ``horizon``.
        """
        cycle = self.schedule.cycle_time
        threshold = time + 1e-12
        best_time = float("inf")
        best_pair = -1
        best_attempt = -1
        for pair_index in range(self.schedule.num_pairs):
            first = self._first_completion_of(pair_index)
            first_attempt = self._attempt_after(pair_index, time)
            times = self._success_times[pair_index]
            attempts = self._success_attempts[pair_index]
            index = bisect_left(attempts, first_attempt)
            start_bound = bisect_right(times, threshold)
            if start_bound > index:
                index = start_bound
            # Only successes strictly before the current best can win (a
            # tie keeps the earlier pair, matching merged (time, pair)
            # order), so the draw limit shrinks as candidates are found.
            limit = horizon if best_time > horizon else best_time
            while True:
                if index < len(times):
                    candidate = times[index]
                    if candidate >= best_time:
                        break
                    if (pair_index, attempts[index]) not in excluded:
                        best_time = candidate
                        best_pair = pair_index
                        best_attempt = attempts[index]
                        break
                    index += 1
                    continue
                drawn = self._drawn[pair_index]
                if drawn > 0 and first + (drawn - 1) * cycle > limit:
                    break
                self._extend(pair_index)
        if best_pair < 0:
            return None
        return GenerationEvent(best_time, best_pair, best_attempt)

    def earliest_success_bound(self, after: float) -> float:
        """Lower bound on the completion time of any success after ``after``.

        Returns a time ``T`` such that every success with completion
        ``t > after + 1e-12`` satisfies ``t >= T``, using only attempts
        drawn so far (the method never samples).  For pairs whose drawn
        horizon holds no later success, the earliest *undrawn* attempt
        completion bounds them.  Consumers (the entanglement service) use
        this to skip interval scans that provably contain no success.
        """
        cycle = self.schedule.cycle_time
        threshold = after + 1e-12
        bound = float("inf")
        for pair_index in range(self.schedule.num_pairs):
            times = self._success_times[pair_index]
            index = bisect_right(times, threshold)
            if index < len(times):
                candidate = times[index]
            else:
                drawn = self._drawn[pair_index]
                if drawn == 0:
                    return after
                # Next undrawn attempt of this pair completes at
                # first + drawn * cycle; any success of the pair after
                # ``after`` is at or beyond whichever is later.
                candidate = self._first_completion_of(pair_index) + drawn * cycle
                if candidate <= threshold:
                    return after
            if candidate < bound:
                bound = candidate
        return bound

    def merged_successes_between(self, start: float, end: float) -> List[GenerationEvent]:
        """Successes of *all* pairs in ``(start, end]``, sorted by time.

        Inlined fusion of per-pair :meth:`successes_between` (identical
        boundary semantics) — the executor calls this once per service
        advance, so the per-pair dispatch overhead is on the hot path.
        """
        if end < start:
            return []
        cycle = self.schedule.cycle_time
        start_threshold = start + 1e-12
        end_threshold = end + 1e-12
        events: List[GenerationEvent] = []
        for pair_index in range(self.schedule.num_pairs):
            # _ensure_time, inlined on the cached frontier.
            first = self._first_completion_of(pair_index)
            drawn = self._drawn[pair_index]
            while drawn == 0 or first + (drawn - 1) * cycle <= end_threshold:
                self._extend(pair_index)
                drawn = self._drawn[pair_index]
            times = self._success_times[pair_index]
            if not times or times[-1] <= start_threshold:
                continue
            first_attempt = self._attempt_after(pair_index, start)
            attempts = self._success_attempts[pair_index]
            lo = bisect_left(attempts, first_attempt)
            start_bound = bisect_right(times, start_threshold)
            if start_bound > lo:
                lo = start_bound
            hi = bisect_right(times, end_threshold)
            for i in range(lo, hi):
                events.append(GenerationEvent(times[i], pair_index, attempts[i]))
        if len(events) > 1:
            events.sort(key=lambda event: (event.time, event.pair_index))
        return events

    # ------------------------------------------------------------------
    def expected_rate(self) -> float:
        """Expected number of successes per time unit across all pairs."""
        return (
            self.schedule.num_pairs
            * self.success_probability
            / self.schedule.cycle_time
        )

    def expected_wait_for_next_success(self) -> float:
        """Mean waiting time for the next success from a random instant.

        With ``n`` pairs attempting continuously, successes form an
        approximately periodic thinned process of rate
        ``n * psucc / T_EG``; the mean residual waiting time is roughly half
        an inter-arrival period plus half a cycle of heralding alignment.
        Used only for analytical sanity checks and examples.
        """
        rate = self.expected_rate()
        if rate == 0:
            return float("inf")
        return 0.5 / rate + 0.5 * self.schedule.cycle_time / max(
            1, self.schedule.effective_groups
        )
