"""Remote-entanglement-generation substrate.

Werner states and decay, entanglement links, attempt scheduling (synchronous
vs asynchronous), the stochastic generator, buffer pools, and the
interactive supply service used by the runtime.
"""

from repro.entanglement.attempts import AttemptPolicy, AttemptSchedule
from repro.entanglement.buffer import BufferPool, BufferStatistics
from repro.entanglement.generator import EntanglementGenerator, GenerationEvent
from repro.entanglement.link import EntanglementLink, LinkLocation
from repro.entanglement.service import EntanglementService, ServiceStatistics
from repro.entanglement.werner import WernerState, werner_density_matrix, werner_fidelity_after

__all__ = [
    "AttemptPolicy",
    "AttemptSchedule",
    "BufferPool",
    "BufferStatistics",
    "EntanglementGenerator",
    "GenerationEvent",
    "EntanglementLink",
    "LinkLocation",
    "EntanglementService",
    "ServiceStatistics",
    "WernerState",
    "werner_density_matrix",
    "werner_fidelity_after",
]
