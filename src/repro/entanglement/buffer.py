"""Buffer pool storing generated EPR-pair halves.

The buffer qubits of the paper hold the halves of successfully generated
entanglement until a remote gate consumes them.  :class:`BufferPool` tracks
the stored links between one node pair, enforces the buffer-qubit capacity,
applies an optional storage-cutoff policy (links stored for too long are
reset to avoid consuming heavily decohered entanglement), and accumulates
the statistics used in the evaluation (EPR waste, mean stored age).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.entanglement.link import EntanglementLink, LinkLocation
from repro.exceptions import BufferError

__all__ = ["BufferPool", "BufferStatistics"]


@dataclass
class BufferStatistics:
    """Counters describing buffer usage over one simulation run."""

    stored_total: int = 0
    consumed_total: int = 0
    expired_total: int = 0
    rejected_total: int = 0
    total_consumed_age: float = 0.0

    @property
    def mean_consumed_age(self) -> float:
        """Mean link age (time between creation and consumption)."""
        if self.consumed_total == 0:
            return 0.0
        return self.total_consumed_age / self.consumed_total

    @property
    def wasted_total(self) -> int:
        """Links generated but never used by a remote gate."""
        return self.expired_total + self.rejected_total


class BufferPool:
    """Capacity-limited FIFO store of entanglement links for one node pair.

    Parameters
    ----------
    capacity:
        Maximum number of simultaneously stored links (the per-pair buffer
        qubit budget).  A capacity of zero models the ``original`` design
        without buffer qubits.
    cutoff:
        Optional storage cutoff: links stored for longer than this duration
        are discarded when the pool is advanced past their expiry time.
    replace_oldest_when_full:
        If ``True`` (default) a new link arriving at a full buffer replaces
        the oldest stored link (the stale link is reset, as in the paper's
        cutoff policy discussion); if ``False`` the new link is rejected.
    consumption_order:
        ``"lifo"`` (default) consumes the freshest available link, which
        maximises the fidelity of remote gates; ``"fifo"`` consumes the
        oldest link first (ablation option).
    """

    def __init__(self, capacity: int, cutoff: Optional[float] = None,
                 replace_oldest_when_full: bool = True,
                 consumption_order: str = "lifo") -> None:
        if capacity < 0:
            raise BufferError("buffer capacity must be non-negative")
        if cutoff is not None and cutoff <= 0:
            raise BufferError("buffer cutoff must be positive when given")
        if consumption_order not in ("lifo", "fifo"):
            raise BufferError(f"unknown consumption order {consumption_order!r}")
        self.capacity = capacity
        self.cutoff = cutoff
        self.replace_oldest_when_full = replace_oldest_when_full
        self.consumption_order = consumption_order
        self._stored: List[EntanglementLink] = []
        self.statistics = BufferStatistics()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._stored)

    @property
    def stored_links(self) -> List[EntanglementLink]:
        """Currently stored links, oldest first (read-only view)."""
        return list(self._stored)

    def has_space(self) -> bool:
        """Whether at least one buffer slot is free."""
        return len(self._stored) < self.capacity

    def count_available(self, time: float) -> int:
        """Number of stored links that are available at ``time``."""
        return sum(1 for link in self._stored if link.buffered_time is not None
                   and link.buffered_time <= time + 1e-12)

    # ------------------------------------------------------------------
    def store(self, link: EntanglementLink, time: float) -> bool:
        """Store a link at ``time``; returns ``False`` if it was rejected.

        When the pool is full the behaviour depends on
        ``replace_oldest_when_full``: either the oldest stored link is reset
        and the new link takes its slot (default), or the new link is
        discarded.  With a zero-capacity pool every link is rejected, which
        models the buffer-less ``original`` design.
        """
        self.expire_until(time)
        if not self.has_space():
            if self.capacity > 0 and self.replace_oldest_when_full:
                stale = self._stored.pop(0)
                stale.discard(time)
                self.statistics.expired_total += 1
            else:
                link.discard(time)
                self.statistics.rejected_total += 1
                return False
        link.move_to_buffer(time)
        self._stored.append(link)
        self.statistics.stored_total += 1
        return True

    def _consume_at(self, position: int, time: float) -> EntanglementLink:
        link = self._stored.pop(position)
        age = link.consume(time)
        self.statistics.consumed_total += 1
        self.statistics.total_consumed_age += age
        return link

    def pop_available(self, time: float) -> EntanglementLink:
        """Consume a stored link available at ``time`` (per consumption order)."""
        self.expire_until(time)
        positions = [
            position for position, link in enumerate(self._stored)
            if link.buffered_time is not None and link.buffered_time <= time + 1e-12
        ]
        if not positions:
            raise BufferError(f"no stored link is available at time {time}")
        if self.consumption_order == "lifo":
            # Freshest link = the available link with the latest creation time.
            chosen = max(positions, key=lambda p: self._stored[p].created_time)
        else:
            chosen = min(positions, key=lambda p: self._stored[p].created_time)
        return self._consume_at(chosen, time)

    def pop_oldest(self, time: float) -> EntanglementLink:
        """Consume the oldest stored link available at ``time`` (FIFO helper)."""
        self.expire_until(time)
        positions = [
            position for position, link in enumerate(self._stored)
            if link.buffered_time is not None and link.buffered_time <= time + 1e-12
        ]
        if not positions:
            raise BufferError(f"no stored link is available at time {time}")
        chosen = min(positions, key=lambda p: self._stored[p].created_time)
        return self._consume_at(chosen, time)

    def expire_until(self, time: float) -> int:
        """Apply the cutoff policy up to ``time``; returns the number expired."""
        if self.cutoff is None:
            return 0
        expired = 0
        remaining: List[EntanglementLink] = []
        for link in self._stored:
            stored_at = link.buffered_time if link.buffered_time is not None else link.created_time
            if time - stored_at > self.cutoff + 1e-12:
                link.discard(stored_at + self.cutoff)
                expired += 1
            else:
                remaining.append(link)
        self._stored = remaining
        self.statistics.expired_total += expired
        return expired

    def flush(self, time: float) -> int:
        """Discard every stored link (end of program); returns the count."""
        count = len(self._stored)
        for link in self._stored:
            link.discard(time)
        self.statistics.expired_total += count
        self._stored = []
        return count
