"""Interactive entanglement-supply simulation for one node pair.

:class:`EntanglementService` is the component the discrete-event executor
talks to.  It simulates, forward in time, the stochastic successes of the
communication-qubit pairs (via :class:`EntanglementGenerator`), stores the
resulting links in a capacity-limited :class:`BufferPool`, and serves remote
gates through :meth:`acquire`.

Design variants map onto service configurations:

* ``original`` — ``buffer_capacity = 0``: links cannot be stored, so a
  success is only useful if a remote gate is already waiting (on-demand
  consumption straight from the communication qubits); all other successes
  are wasted.
* ``sync_buf`` / ``async_buf`` — positive buffer capacity with synchronous or
  asynchronous attempt phasing; successes are swapped into buffer qubits and
  wait for remote gates.
* ``init_buf`` — same, but the buffer starts pre-filled with EPR pairs
  generated before program start.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.entanglement.buffer import BufferPool
from repro.entanglement.generator import EntanglementGenerator, GenerationEvent
from repro.entanglement.link import EntanglementLink, LinkLocation
from repro.exceptions import EntanglementError

__all__ = ["EntanglementService", "ServiceStatistics"]


@dataclass
class ServiceStatistics:
    """Counters for one node pair over one simulation run."""

    generated_total: int = 0
    consumed_from_buffer: int = 0
    consumed_direct: int = 0
    direct_consumed_age: float = 0.0

    @property
    def consumed_total(self) -> int:
        """Total links consumed by remote gates."""
        return self.consumed_from_buffer + self.consumed_direct


class EntanglementService:
    """EPR-pair supply between two nodes, driven forward in time.

    Parameters
    ----------
    generator:
        Stochastic success process over the attempt schedule (sync/async).
    buffer_capacity:
        Number of links storable between the node pair (0 = no buffer).
    kappa:
        Decoherence rate used for link-fidelity decay queries.
    initial_fidelity:
        Werner fidelity of freshly generated links (Table II: 0.99).
    swap_latency:
        Latency of the local SWAP that moves a fresh link into the buffer.
    buffer_cutoff:
        Optional storage cutoff after which buffered links are discarded.
    prefill:
        Number of pre-generated links placed in the buffer at time 0
        (``init_buf`` design).
    node_pair:
        The two node indices this service connects.

    Notes
    -----
    The service must be driven with non-decreasing times: the executor's
    event loop guarantees that ``acquire`` and ``count_available`` are called
    in chronological order.
    """

    def __init__(
        self,
        generator: EntanglementGenerator,
        buffer_capacity: int,
        kappa: float,
        initial_fidelity: float = 0.99,
        swap_latency: float = 1.0,
        buffer_cutoff: Optional[float] = None,
        prefill: int = 0,
        node_pair: Tuple[int, int] = (0, 1),
        consumption_order: str = "lifo",
        replace_oldest_when_full: bool = True,
    ) -> None:
        if kappa < 0:
            raise EntanglementError("decoherence rate must be non-negative")
        if swap_latency < 0:
            raise EntanglementError("swap latency must be non-negative")
        if prefill < 0:
            raise EntanglementError("prefill count must be non-negative")
        if prefill > buffer_capacity:
            raise EntanglementError(
                "cannot pre-fill more links than the buffer capacity"
            )
        self.generator = generator
        self.buffer = BufferPool(
            buffer_capacity,
            cutoff=buffer_cutoff,
            replace_oldest_when_full=replace_oldest_when_full,
            consumption_order=consumption_order,
        )
        self.kappa = kappa
        self.initial_fidelity = initial_fidelity
        self.swap_latency = swap_latency
        self.node_pair = (min(node_pair), max(node_pair))
        self.statistics = ServiceStatistics()
        self._materialized_until = 0.0
        #: Lower bound on the next success past the materialised frontier
        #: (0.0 = unknown, forces a scan); lets empty advances skip the
        #: per-pair interval queries that dominate the execute hot path.
        self._next_success_bound = 0.0
        self._delivered: set = set()
        self._prefill_links(prefill)

    # ------------------------------------------------------------------
    def _prefill_links(self, count: int) -> None:
        for index in range(count):
            link = EntanglementLink(
                node_pair=self.node_pair,
                created_time=0.0,
                initial_fidelity=self.initial_fidelity,
                pair_index=index % max(1, self.generator.schedule.num_pairs),
            )
            stored = self.buffer.store(link, 0.0)
            if not stored:  # pragma: no cover - guarded by the prefill check
                raise EntanglementError("buffer rejected a pre-filled link")

    def _new_link(self, event: GenerationEvent) -> EntanglementLink:
        self.statistics.generated_total += 1
        return EntanglementLink(
            node_pair=self.node_pair,
            created_time=event.time,
            initial_fidelity=self.initial_fidelity,
            pair_index=event.pair_index,
        )

    # ------------------------------------------------------------------
    # forward simulation
    # ------------------------------------------------------------------
    def advance_to(self, time: float) -> None:
        """Materialise all generation successes up to ``time``.

        Successes are stored into the buffer (or wasted when it is full or
        absent).  Idempotent: advancing to an earlier time than already
        materialised is a no-op.
        """
        if time <= self._materialized_until + 1e-12:
            return
        if time + 1e-12 < self._next_success_bound:
            # Provably no success completes in (materialised, time]; move
            # the frontier without scanning any pair.
            self._materialized_until = time
            self.buffer.expire_until(time)
            return
        events = self.generator.merged_successes_between(
            self._materialized_until, time
        )
        for event in events:
            key = (event.pair_index, event.attempt_index)
            if key in self._delivered:
                continue
            self._delivered.add(key)
            link = self._new_link(event)
            self.buffer.store(link, event.time + self.swap_latency)
        self._materialized_until = time
        self._next_success_bound = self.generator.earliest_success_bound(time)
        self.buffer.expire_until(time)

    def count_available(self, time: float) -> int:
        """Number of buffered links available for consumption at ``time``."""
        self.advance_to(time)
        return self.buffer.count_available(time)

    # ------------------------------------------------------------------
    # consumption
    # ------------------------------------------------------------------
    def acquire(self, after: float,
                max_scan: float = 1e6) -> Tuple[float, EntanglementLink]:
        """Consume one link for a remote gate that becomes ready at ``after``.

        Returns ``(ready_time, link)`` where ``ready_time >= after`` is the
        time at which the link is in hand (already buffered, or freshly
        generated while the gate waits).  The link is marked consumed at
        ``ready_time``.
        """
        if after < 0:
            raise EntanglementError("acquisition time must be non-negative")
        self.advance_to(after)

        # 1. A buffered link is already waiting.
        if self.buffer.count_available(after) > 0:
            link = self.buffer.pop_available(after)
            self.statistics.consumed_from_buffer += 1
            return after, link

        # 2. A link has been generated but its buffering SWAP is still in
        #    flight (or it was stored while the service ran ahead in time):
        #    wait for the earliest such link.
        pending = [
            link.buffered_time for link in self.buffer.stored_links
            if link.buffered_time is not None and link.buffered_time > after
        ]
        if pending:
            ready = min(pending)
            link = self.buffer.pop_available(ready)
            self.statistics.consumed_from_buffer += 1
            return ready, link

        # 3. Wait for the next fresh success (consumed directly from the
        #    communication qubits, no buffering SWAP needed): the earliest
        #    undelivered success in (time, pair) order after the scan start.
        scan_start = max(after, self._materialized_until)
        horizon = scan_start + max_scan
        best = self.generator.first_fresh_success(
            scan_start, self._delivered, horizon
        )
        if best is None or best.time > horizon + 1e-12:
            raise EntanglementError(
                f"no entanglement success found within {max_scan} time units"
            )
        self._delivered.add((best.pair_index, best.attempt_index))
        link = self._new_link(best)
        ready = max(after, best.time)
        age = link.consume(ready)
        self.statistics.consumed_direct += 1
        self.statistics.direct_consumed_age += age
        return ready, link

    def acquire_record(self, after: float,
                       kappa: Optional[float] = None,
                       max_scan: float = 1e6) -> Tuple[float, float, float]:
        """:meth:`acquire` flattened for batched (cross-seed) replay.

        Returns ``(start_time, link_created_time, link_fidelity_at_start)``
        — exactly the scalar fields the executors record per remote gate —
        so callers that hold many services (one per seed) can consume links
        without touching :class:`~repro.entanglement.link.EntanglementLink`
        objects.  The variate stream drawn is identical to :meth:`acquire`.
        """
        start, link = self.acquire(after, max_scan=max_scan)
        decay = self.kappa if kappa is None else kappa
        return start, link.created_time, link.fidelity_at(start, decay)

    # ------------------------------------------------------------------
    # end-of-run accounting
    # ------------------------------------------------------------------
    def finalize(self, time: float) -> None:
        """Flush remaining buffered links at the end of the program."""
        self.advance_to(time)
        self.buffer.flush(time)

    @property
    def total_wasted(self) -> int:
        """Links generated (or pre-filled) but never consumed."""
        return self.buffer.statistics.wasted_total

    def mean_consumed_fidelity(self) -> float:
        """Mean Werner fidelity of consumed links at their consumption time.

        Derived from the recorded consumption ages and the decay law; used in
        reports and tests (higher is better, 0 if nothing was consumed).
        """
        from repro.entanglement.werner import werner_fidelity_after

        total = 0.0
        count = 0
        buffer_stats = self.buffer.statistics
        if buffer_stats.consumed_total:
            mean_age = buffer_stats.mean_consumed_age
            total += buffer_stats.consumed_total * werner_fidelity_after(
                self.initial_fidelity, mean_age, self.kappa
            )
            count += buffer_stats.consumed_total
        if self.statistics.consumed_direct:
            mean_age = (
                self.statistics.direct_consumed_age / self.statistics.consumed_direct
            )
            total += self.statistics.consumed_direct * werner_fidelity_after(
                self.initial_fidelity, mean_age, self.kappa
            )
            count += self.statistics.consumed_direct
        return total / count if count else 0.0
