"""Synchronous versus asynchronous entanglement-generation attempt schedules.

Each communication-qubit pair runs back-to-back generation attempts of
duration ``T_EG``.  The *synchronous* policy starts every pair at the same
phase, so successes arrive in bursts at multiples of ``T_EG``; the
*asynchronous* policy of the paper (Sec. III-C) divides the pairs into
sub-groups whose starting times are staggered by one local-gate cycle,
smoothing the arrival pattern.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from repro.exceptions import EntanglementError

__all__ = ["AttemptPolicy", "AttemptSchedule"]


class AttemptPolicy(str, enum.Enum):
    """How communication-qubit pairs phase their generation attempts."""

    SYNCHRONOUS = "synchronous"
    ASYNCHRONOUS = "asynchronous"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class AttemptSchedule:
    """Deterministic timing of generation attempts for a set of pairs.

    Parameters
    ----------
    num_pairs:
        Number of communication-qubit pairs attempting in parallel.
    cycle_time:
        Duration ``T_EG`` of one attempt (10 local-CNOT units in Table II).
    policy:
        Synchronous or asynchronous phasing.
    num_groups:
        Number of asynchronous sub-groups; the paper staggers groups by one
        local cycle, using ``T_EG / T_local`` groups (4 in Fig. 3).  Ignored
        for the synchronous policy.
    stagger:
        Offset between consecutive sub-groups (one local-gate time).
    start_time:
        Time at which the entanglement-generation service begins (0 unless a
        design delays it).
    steady_state:
        If ``True`` (default), the generation service is modelled as having
        run continuously *before* the program starts (Sec. III-B describes
        entanglement generation as a background service).  The first
        heralding of each sub-group then lands at its phase offset within
        the first cycle, which is exactly the smooth arrival pattern of
        Fig. 3; with ``False`` every pair starts its first attempt at
        ``start_time`` and nothing completes before one full cycle.
    """

    num_pairs: int
    cycle_time: float = 10.0
    policy: AttemptPolicy = AttemptPolicy.ASYNCHRONOUS
    num_groups: int = 10
    stagger: float = 1.0
    start_time: float = 0.0
    steady_state: bool = True

    def __post_init__(self) -> None:
        if self.num_pairs < 0:
            raise EntanglementError("number of pairs must be non-negative")
        if self.cycle_time <= 0:
            raise EntanglementError("attempt cycle time must be positive")
        if self.num_groups < 1:
            raise EntanglementError("need at least one attempt sub-group")
        if self.stagger < 0:
            raise EntanglementError("stagger must be non-negative")

    # ------------------------------------------------------------------
    def group_of(self, pair_index: int) -> int:
        """Sub-group of a communication-qubit pair."""
        self._check_pair(pair_index)
        if self.policy is AttemptPolicy.SYNCHRONOUS:
            return 0
        return pair_index % self.effective_groups

    @property
    def effective_groups(self) -> int:
        """Number of sub-groups actually used (bounded by the pair count)."""
        if self.policy is AttemptPolicy.SYNCHRONOUS:
            return 1
        return max(1, min(self.num_groups, self.num_pairs))

    def offset(self, pair_index: int) -> float:
        """Start offset of the first attempt of a pair."""
        self._check_pair(pair_index)
        if self.policy is AttemptPolicy.SYNCHRONOUS:
            return self.start_time
        return self.start_time + self.group_of(pair_index) * self.stagger

    def first_completion(self, pair_index: int) -> float:
        """Heralding time of the first attempt completing after ``start_time``.

        In steady-state mode the first heralding of a pair lands at its phase
        offset within the first cycle (or one full cycle for phase-0 pairs);
        otherwise the first attempt starts at the pair's offset and completes
        one full cycle later.
        """
        offset = self.offset(pair_index)
        if self.steady_state:
            phase = offset - self.start_time
            if phase > 1e-12:
                return self.start_time + phase
            return self.start_time + self.cycle_time
        return offset + self.cycle_time

    def attempt_start(self, pair_index: int, attempt: int) -> float:
        """Start time of the ``attempt``-th attempt (0-based) of a pair.

        In steady-state mode the first attempt may have started before the
        program (negative times are possible by construction).
        """
        if attempt < 0:
            raise EntanglementError("attempt index must be non-negative")
        return self.attempt_completion(pair_index, attempt) - self.cycle_time

    def attempt_completion(self, pair_index: int, attempt: int) -> float:
        """Completion (heralding) time of the ``attempt``-th attempt."""
        if attempt < 0:
            raise EntanglementError("attempt index must be non-negative")
        return self.first_completion(pair_index) + attempt * self.cycle_time

    def completion_times(self, pair_index: int, attempts) -> np.ndarray:
        """Vectorized :meth:`attempt_completion` over an array of attempts.

        ``first + k * cycle`` in one float64 array operation; IEEE-754
        guarantees each element equals the scalar result bit for bit, which
        the bulk sampling in :mod:`repro.entanglement.generator` relies on.
        """
        attempts = np.asarray(attempts)
        if attempts.size and int(attempts.min()) < 0:
            raise EntanglementError("attempt index must be non-negative")
        return self.first_completion(pair_index) + attempts * self.cycle_time

    def attempt_index_completing_after(self, pair_index: int, time: float) -> int:
        """Index of the first attempt whose completion is strictly after ``time``.

        Used when a pair resumes attempting after having been blocked: the
        pair re-joins its own phase grid rather than starting an arbitrary
        new phase, which preserves the synchronous/asynchronous pattern.
        """
        first = self.first_completion(pair_index)
        if time < first - 1e-12:
            return 0
        elapsed = (time - first) / self.cycle_time
        index = int(elapsed) + 1
        # Exact grid hits: the completion at ``time`` itself does not count
        # as "after", so the next attempt index is wanted.
        if abs(elapsed - round(elapsed)) < 1e-9:
            index = int(round(elapsed)) + 1
        return index

    def completions_between(self, pair_index: int, start: float,
                            end: float) -> List[float]:
        """All attempt completion times of a pair in the interval ``(start, end]``."""
        if end < start:
            raise EntanglementError("interval end must not precede start")
        completions = []
        attempt = self.attempt_index_completing_after(pair_index, start)
        while True:
            completion = self.attempt_completion(pair_index, attempt)
            if completion > end + 1e-12:
                break
            if completion > start + 1e-12:
                completions.append(completion)
            attempt += 1
        return completions

    def completion_stream(self, pair_index: int) -> Iterator[float]:
        """Infinite iterator over the completion times of a pair's attempts."""
        attempt = 0
        while True:
            yield self.attempt_completion(pair_index, attempt)
            attempt += 1

    # ------------------------------------------------------------------
    def _check_pair(self, pair_index: int) -> None:
        if not (0 <= pair_index < max(1, self.num_pairs)):
            raise EntanglementError(
                f"pair index {pair_index} out of range for {self.num_pairs} pairs"
            )
