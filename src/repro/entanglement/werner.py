"""Werner states and buffered-entanglement fidelity decay.

The paper assumes that freshly generated Bell pairs are Werner states (a
mixture of a pure Bell state with the two-qubit maximally mixed state) and
that buffer qubits decohere through an unbiased depolarizing channel, giving
the idling dynamics

    F(t) = F0 * exp(-2 * kappa * t) + (1 - exp(-2 * kappa * t)) / 4

for the Bell-state fidelity (Sec. IV-C).  This module implements that decay
law and the corresponding density matrices used by the teleportation
fidelity evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import EntanglementError

__all__ = ["WernerState", "werner_fidelity_after", "werner_density_matrix"]

# |Phi+> Bell state in the computational basis {00, 01, 10, 11}.
_PHI_PLUS = np.array([1.0, 0.0, 0.0, 1.0]) / np.sqrt(2.0)
_PHI_PLUS_PROJECTOR = np.outer(_PHI_PLUS, _PHI_PLUS)
_MAXIMALLY_MIXED_2Q = np.eye(4) / 4.0


def werner_fidelity_after(initial_fidelity: float, elapsed: float,
                          kappa: float) -> float:
    """Bell-state fidelity after idling for ``elapsed`` time units.

    Parameters
    ----------
    initial_fidelity:
        Fidelity ``F0`` of the freshly generated pair with respect to the
        target Bell state (0.99 in Table II).
    elapsed:
        Idling duration in the same time units as ``1/kappa``.
    kappa:
        Single-qubit decoherence rate; the factor 2 in the exponent accounts
        for both halves of the pair decohering independently.

    Returns
    -------
    float
        The decayed fidelity, which approaches 1/4 (the maximally mixed
        value) as ``elapsed`` grows.
    """
    if not (0.0 <= initial_fidelity <= 1.0):
        raise EntanglementError("initial fidelity must be in [0, 1]")
    if elapsed < 0:
        raise EntanglementError("elapsed time must be non-negative")
    if kappa < 0:
        raise EntanglementError("decoherence rate must be non-negative")
    decay = np.exp(-2.0 * kappa * elapsed)
    return float(initial_fidelity * decay + (1.0 - decay) / 4.0)


def werner_density_matrix(fidelity: float) -> np.ndarray:
    """Two-qubit Werner state with the given fidelity to ``|Phi+>``.

    ``rho = p |Phi+><Phi+| + (1 - p) I/4`` with ``p = (4F - 1) / 3``.
    """
    if not (0.25 <= fidelity <= 1.0 + 1e-12):
        raise EntanglementError(
            f"Werner fidelity must be in [0.25, 1], got {fidelity}"
        )
    weight = (4.0 * fidelity - 1.0) / 3.0
    return weight * _PHI_PLUS_PROJECTOR + (1.0 - weight) * _MAXIMALLY_MIXED_2Q


@dataclass(frozen=True)
class WernerState:
    """A two-qubit Werner state parameterised by its Bell fidelity."""

    fidelity: float

    def __post_init__(self) -> None:
        if not (0.25 <= self.fidelity <= 1.0 + 1e-12):
            raise EntanglementError(
                f"Werner fidelity must be in [0.25, 1], got {self.fidelity}"
            )

    @property
    def singlet_weight(self) -> float:
        """Weight ``p`` of the pure Bell component."""
        return (4.0 * self.fidelity - 1.0) / 3.0

    def density_matrix(self) -> np.ndarray:
        """4x4 density matrix of the state."""
        return werner_density_matrix(self.fidelity)

    def after_idling(self, elapsed: float, kappa: float) -> "WernerState":
        """Return the state after idling under depolarizing decoherence."""
        return WernerState(werner_fidelity_after(self.fidelity, elapsed, kappa))

    def is_entangled(self) -> bool:
        """Werner states are entangled iff their fidelity exceeds 1/2."""
        return self.fidelity > 0.5

    def concurrence(self) -> float:
        """Concurrence of the Werner state: ``max(0, (6F - 3) / 3) / ...``.

        For a Werner state with Bell fidelity ``F`` the concurrence is
        ``max(0, (3 * singlet_weight - 1) / 2)`` which simplifies to
        ``max(0, 2F - 1)``.
        """
        return max(0.0, 2.0 * self.fidelity - 1.0)
