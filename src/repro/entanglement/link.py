"""Entanglement-link records.

An :class:`EntanglementLink` describes one generated EPR pair shared between
two nodes: when it was created, where its halves are stored (communication
or buffer qubits), and when it was consumed or discarded.  The fidelity of
the link at consumption time feeds the remote-gate fidelity model.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.entanglement.werner import werner_fidelity_after
from repro.exceptions import EntanglementError

__all__ = ["LinkLocation", "EntanglementLink"]

_LINK_COUNTER = itertools.count()


class LinkLocation(str, enum.Enum):
    """Where the halves of a link currently reside."""

    COMMUNICATION = "communication"
    BUFFER = "buffer"
    CONSUMED = "consumed"
    DISCARDED = "discarded"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class EntanglementLink:
    """One EPR pair shared between two nodes.

    Attributes
    ----------
    node_pair:
        The two node indices sharing the pair (normalised ``a < b``).
    created_time:
        Simulation time at which generation succeeded (attempt completion).
    initial_fidelity:
        Werner fidelity right after generation (Table II: 0.99).
    location:
        Current location of the link halves.
    buffered_time:
        Time at which the link was swapped into buffer qubits, if any.
    consumed_time:
        Time at which the link was consumed by a remote gate (or discarded).
    pair_index:
        Index of the communication-qubit pair that generated the link.
    """

    node_pair: Tuple[int, int]
    created_time: float
    initial_fidelity: float = 0.99
    location: LinkLocation = LinkLocation.COMMUNICATION
    buffered_time: Optional[float] = None
    consumed_time: Optional[float] = None
    pair_index: int = 0
    link_id: int = field(default_factory=lambda: next(_LINK_COUNTER))

    def __post_init__(self) -> None:
        a, b = self.node_pair
        if a == b:
            raise EntanglementError("a link must connect two different nodes")
        self.node_pair = (min(a, b), max(a, b))
        if self.created_time < 0:
            raise EntanglementError("creation time must be non-negative")
        if not (0.0 < self.initial_fidelity <= 1.0):
            raise EntanglementError("initial fidelity must be in (0, 1]")

    # ------------------------------------------------------------------
    def age(self, time: float) -> float:
        """Time elapsed since generation."""
        if time < self.created_time - 1e-12:
            raise EntanglementError("cannot query a link before its creation")
        return max(0.0, time - self.created_time)

    def fidelity_at(self, time: float, kappa: float) -> float:
        """Werner fidelity of the link after idling until ``time``."""
        return werner_fidelity_after(self.initial_fidelity, self.age(time), kappa)

    # ------------------------------------------------------------------
    def move_to_buffer(self, time: float) -> None:
        """Record that the link was swapped into buffer qubits at ``time``."""
        if self.location is not LinkLocation.COMMUNICATION:
            raise EntanglementError(
                f"link {self.link_id} cannot move to buffer from {self.location}"
            )
        self.location = LinkLocation.BUFFER
        self.buffered_time = time

    def consume(self, time: float) -> float:
        """Mark the link consumed by a remote gate; returns its age."""
        if self.location in (LinkLocation.CONSUMED, LinkLocation.DISCARDED):
            raise EntanglementError(f"link {self.link_id} was already released")
        self.location = LinkLocation.CONSUMED
        self.consumed_time = time
        return self.age(time)

    def discard(self, time: float) -> None:
        """Mark the link discarded (cutoff policy or end of program)."""
        if self.location in (LinkLocation.CONSUMED, LinkLocation.DISCARDED):
            raise EntanglementError(f"link {self.link_id} was already released")
        self.location = LinkLocation.DISCARDED
        self.consumed_time = time

    @property
    def is_available(self) -> bool:
        """Whether the link can still be consumed by a remote gate."""
        return self.location in (LinkLocation.COMMUNICATION, LinkLocation.BUFFER)
