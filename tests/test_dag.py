"""Unit tests for the circuit dependency DAG."""

import pytest

from repro.circuits import CircuitDAG, QuantumCircuit
from repro.exceptions import DAGError


@pytest.fixture
def chain_circuit():
    circuit = QuantumCircuit(3, name="chain")
    circuit.h(0)          # 0
    circuit.cx(0, 1)      # 1 depends on 0
    circuit.cx(1, 2)      # 2 depends on 1
    circuit.h(2)          # 3 depends on 2
    return circuit


class TestStructure:
    def test_dependencies(self, chain_circuit):
        dag = CircuitDAG(chain_circuit)
        assert dag.num_nodes == 4
        assert dag.predecessors(0) == set()
        assert dag.predecessors(1) == {0}
        assert dag.predecessors(2) == {1}
        assert dag.successors(1) == {2}

    def test_roots_and_leaves(self, chain_circuit):
        dag = CircuitDAG(chain_circuit)
        assert dag.roots() == [0]
        assert dag.leaves() == [3]

    def test_parallel_gates_independent(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1)
        circuit.cx(2, 3)
        dag = CircuitDAG(circuit)
        assert dag.predecessors(1) == set()
        assert sorted(dag.roots()) == [0, 1]

    def test_remote_nodes(self, small_remote_circuit):
        dag = CircuitDAG(small_remote_circuit)
        remote = dag.remote_nodes()
        assert all(dag.gate(i).is_remote for i in remote)
        assert len(remote) == 2

    def test_edges(self, chain_circuit):
        dag = CircuitDAG(chain_circuit)
        assert (0, 1) in dag.edges()
        assert (1, 2) in dag.edges()

    def test_unknown_node_raises(self, chain_circuit):
        with pytest.raises(DAGError):
            CircuitDAG(chain_circuit).node(99)


class TestOrderings:
    def test_topological_order_is_legal(self, small_remote_circuit):
        dag = CircuitDAG(small_remote_circuit)
        order = dag.topological_order()
        assert dag.is_legal_order(order)
        assert sorted(order) == list(range(dag.num_nodes))

    def test_illegal_order_detected(self, chain_circuit):
        dag = CircuitDAG(chain_circuit)
        assert not dag.is_legal_order([3, 2, 1, 0])
        assert not dag.is_legal_order([0, 1, 2])  # missing node

    def test_layers_match_unit_depth(self, small_remote_circuit):
        dag = CircuitDAG(small_remote_circuit)
        assert len(dag.layers()) == small_remote_circuit.depth()

    def test_layers_partition_nodes(self, small_remote_circuit):
        dag = CircuitDAG(small_remote_circuit)
        flattened = [i for layer in dag.layers() for i in layer]
        assert sorted(flattened) == list(range(dag.num_nodes))

    def test_to_circuit_round_trip(self, small_remote_circuit):
        dag = CircuitDAG(small_remote_circuit)
        rebuilt = dag.to_circuit()
        assert rebuilt.num_gates == small_remote_circuit.num_gates

    def test_to_circuit_rejects_bad_order(self, chain_circuit):
        dag = CircuitDAG(chain_circuit)
        with pytest.raises(DAGError):
            dag.to_circuit([3, 2, 1, 0])


class TestLevels:
    def test_asap_levels_chain(self, chain_circuit):
        dag = CircuitDAG(chain_circuit)
        asap = dag.asap_levels()
        assert asap[0] == 0
        assert asap[1] == 1
        assert asap[2] == 2

    def test_weighted_asap(self, chain_circuit):
        dag = CircuitDAG(chain_circuit)
        durations = {"h": 0.1, "cx": 1.0}
        asap = dag.asap_levels(durations)
        assert asap[1] == pytest.approx(0.1)
        assert asap[2] == pytest.approx(1.1)

    def test_alap_not_before_asap(self, small_remote_circuit):
        dag = CircuitDAG(small_remote_circuit)
        asap = dag.asap_levels()
        alap = dag.alap_levels()
        for node in range(dag.num_nodes):
            assert alap[node] >= asap[node] - 1e-9

    def test_slack_non_negative(self, small_remote_circuit):
        dag = CircuitDAG(small_remote_circuit)
        assert all(value >= -1e-9 for value in dag.slack().values())

    def test_critical_path_matches_depth(self, small_remote_circuit):
        dag = CircuitDAG(small_remote_circuit)
        assert dag.critical_path_length() == pytest.approx(
            small_remote_circuit.depth()
        )

    def test_ancestors_descendants(self, chain_circuit):
        dag = CircuitDAG(chain_circuit)
        assert dag.ancestors(3) == {0, 1, 2}
        assert dag.descendants(0) == {1, 2, 3}
