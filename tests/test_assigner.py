"""Unit tests for circuit distribution and remote-gate labelling."""

import pytest

from repro.benchmarks import build_benchmark, qft_circuit, tlim_circuit
from repro.circuits import QuantumCircuit
from repro.partitioning import (
    DistributedProgram,
    InteractionGraph,
    Partition,
    distribute_circuit,
    label_remote_gates,
    rebalance_partition,
)
from repro.exceptions import PartitionError


class TestLabelling:
    def test_cross_partition_gates_labelled(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        circuit.cx(2, 3)
        partition = Partition.from_blocks([[0, 1], [2, 3]])
        labelled = label_remote_gates(circuit, partition)
        flags = [g.is_remote for g in labelled.gates]
        assert flags == [False, True, False]

    def test_stale_labels_cleared(self):
        circuit = QuantumCircuit(2)
        circuit.add_gate("cx", (0, 1), label="remote")
        partition = Partition.from_blocks([[0, 1]])
        labelled = label_remote_gates(circuit, partition)
        assert not labelled.gates[0].is_remote


class TestDistributeCircuit:
    def test_tlim_remote_count_matches_paper(self):
        program = distribute_circuit(tlim_circuit(32, num_steps=10), num_nodes=2)
        assert program.remote_gate_count() == 10
        assert program.local_two_qubit_count() == 300
        assert program.partition.block_sizes() == [16, 16]

    def test_qft_remote_count_matches_paper(self):
        program = distribute_circuit(qft_circuit(32), num_nodes=2)
        assert program.remote_gate_count() == 256
        assert program.local_two_qubit_count() == 240

    def test_properties_dictionary(self):
        program = distribute_circuit(tlim_circuit(8, num_steps=1), num_nodes=2)
        props = program.properties()
        assert props["qubits"] == 8
        assert props["local_2q"] + props["remote_2q"] == 7

    def test_remote_fraction_and_pairs(self):
        program = distribute_circuit(qft_circuit(8), num_nodes=2)
        assert 0.0 < program.remote_fraction() < 1.0
        assert set(program.remote_pairs()) == {(0, 1)}

    def test_explicit_partition_respected(self):
        circuit = tlim_circuit(8, num_steps=1)
        partition = Partition.contiguous(8, 2)
        program = distribute_circuit(circuit, partition=partition)
        assert program.remote_gate_count() == 1

    def test_partition_size_mismatch(self):
        circuit = tlim_circuit(8, num_steps=1)
        with pytest.raises(PartitionError):
            distribute_circuit(circuit, partition=Partition.contiguous(6, 2))

    def test_node_queries(self):
        program = distribute_circuit(tlim_circuit(8, num_steps=1), num_nodes=2)
        for node in range(2):
            qubits = program.qubits_on_node(node)
            assert len(qubits) == 4
            assert all(program.node_of(q) == node for q in qubits)

    def test_benchmark_registry_roundtrip(self):
        program = distribute_circuit(build_benchmark("QAOA-r4-32"), num_nodes=2)
        assert program.num_qubits == 32
        assert program.remote_gate_count() > 0


class TestRebalancing:
    def test_rebalance_restores_exact_sizes(self):
        graph = InteractionGraph.from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        skewed = Partition.from_blocks([[0, 1, 2, 3], [4, 5]])
        balanced = rebalance_partition(graph, skewed, [3, 3])
        assert balanced.block_sizes() == [3, 3]

    def test_rebalance_validates_targets(self):
        graph = InteractionGraph(4)
        partition = Partition.contiguous(4, 2)
        with pytest.raises(PartitionError):
            rebalance_partition(graph, partition, [3])
        with pytest.raises(PartitionError):
            rebalance_partition(graph, partition, [3, 3])

    def test_exact_balance_default(self):
        for name in ("QAOA-r8-32", "QFT-32"):
            program = distribute_circuit(build_benchmark(name), num_nodes=2)
            assert program.partition.block_sizes() == [16, 16]
