"""Property-based tests (hypothesis) for core data structures and invariants."""

import json
import math

from hypothesis import given, settings, strategies as st

from repro.circuits import CircuitDAG, QuantumCircuit
from repro.circuits.transforms import (
    alap_variant,
    asap_variant,
    canonical_gate_multiset,
    reorder_is_equivalent,
)
from repro.entanglement import AttemptPolicy, AttemptSchedule, werner_fidelity_after
from repro.noise import depolarizing_kraus, validate_kraus
from repro.partitioning import InteractionGraph, Partition, fm_refine, kl_refine
from repro.runtime import DataQubitTracker, EventQueue
from repro.analysis import summarize


# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

@st.composite
def random_circuits(draw, max_qubits=6, max_gates=25, remote_fraction=0.3):
    """Random circuits over a small gate set with some remote labels."""
    num_qubits = draw(st.integers(min_value=2, max_value=max_qubits))
    num_gates = draw(st.integers(min_value=1, max_value=max_gates))
    circuit = QuantumCircuit(num_qubits, name="hypothesis")
    for _ in range(num_gates):
        kind = draw(st.sampled_from(["h", "rz", "rx", "cx", "cz", "rzz"]))
        if kind in ("h", "rz", "rx"):
            qubit = draw(st.integers(min_value=0, max_value=num_qubits - 1))
            if kind == "h":
                circuit.h(qubit)
            else:
                circuit.add_gate(kind, (qubit,), (draw(st.floats(0.1, 3.0)),))
        else:
            a = draw(st.integers(min_value=0, max_value=num_qubits - 1))
            b = draw(st.integers(min_value=0, max_value=num_qubits - 1))
            if a == b:
                continue
            label = "remote" if draw(st.floats(0, 1)) < remote_fraction else None
            params = (draw(st.floats(0.1, 3.0)),) if kind == "rzz" else ()
            circuit.add_gate(kind, (a, b), params, label=label)
    if circuit.num_gates == 0:
        circuit.h(0)
    return circuit


@st.composite
def random_graphs(draw, max_vertices=14):
    """Random interaction graphs with at least two vertices."""
    num_vertices = draw(st.integers(min_value=4, max_value=max_vertices))
    if num_vertices % 2:
        num_vertices += 1
    num_edges = draw(st.integers(min_value=1, max_value=3 * num_vertices))
    weights = {}
    for _ in range(num_edges):
        a = draw(st.integers(min_value=0, max_value=num_vertices - 1))
        b = draw(st.integers(min_value=0, max_value=num_vertices - 1))
        if a == b:
            continue
        weights[(min(a, b), max(a, b))] = float(draw(st.integers(1, 5)))
    return InteractionGraph(num_vertices, weights)


# ---------------------------------------------------------------------------
# circuit IR invariants
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(random_circuits())
def test_dag_is_acyclic_and_complete(circuit):
    dag = CircuitDAG(circuit)
    order = dag.topological_order()
    assert sorted(order) == list(range(circuit.num_gates))
    assert dag.is_legal_order(order)


@settings(max_examples=60, deadline=None)
@given(random_circuits())
def test_layers_cover_all_gates_once(circuit):
    dag = CircuitDAG(circuit)
    flattened = sorted(i for layer in dag.layers() for i in layer)
    assert flattened == list(range(circuit.num_gates))


@settings(max_examples=60, deadline=None)
@given(random_circuits())
def test_alap_never_before_asap(circuit):
    dag = CircuitDAG(circuit)
    asap = dag.asap_levels()
    alap = dag.alap_levels()
    assert all(alap[i] >= asap[i] - 1e-9 for i in asap)


@settings(max_examples=40, deadline=None)
@given(random_circuits())
def test_asap_alap_variants_are_equivalent_reorderings(circuit):
    asap = asap_variant(circuit)
    alap = alap_variant(circuit)
    assert canonical_gate_multiset(asap) == canonical_gate_multiset(circuit)
    assert canonical_gate_multiset(alap) == canonical_gate_multiset(circuit)
    assert reorder_is_equivalent(circuit, asap)
    assert reorder_is_equivalent(circuit, alap)


@settings(max_examples=40, deadline=None)
@given(random_circuits())
def test_variant_depth_unchanged_gate_counts(circuit):
    asap = asap_variant(circuit)
    assert asap.num_two_qubit_gates() == circuit.num_two_qubit_gates()
    assert asap.num_single_qubit_gates() == circuit.num_single_qubit_gates()


# ---------------------------------------------------------------------------
# partitioning invariants
# ---------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(random_graphs())
def test_kl_refinement_never_increases_cut(graph):
    start = Partition.contiguous(graph.num_vertices, 2)
    refined = kl_refine(graph, start)
    assert refined.cut_weight(graph) <= start.cut_weight(graph) + 1e-9
    assert sorted(refined.block_sizes()) == sorted(start.block_sizes())


@settings(max_examples=40, deadline=None)
@given(random_graphs())
def test_fm_refinement_respects_balance(graph):
    start = Partition.contiguous(graph.num_vertices, 2)
    refined = fm_refine(graph, start, balance_tolerance=0.2)
    assert refined.cut_weight(graph) <= start.cut_weight(graph) + 1e-9
    max_side = (1.2 * graph.num_vertices / 2.0) + 1e-9
    assert max(refined.block_sizes()) <= max_side
    assert refined.num_vertices == graph.num_vertices


# ---------------------------------------------------------------------------
# entanglement invariants
# ---------------------------------------------------------------------------

@settings(max_examples=100, deadline=None)
@given(
    st.floats(min_value=0.25, max_value=1.0),
    st.floats(min_value=0.0, max_value=1000.0),
    st.floats(min_value=0.0, max_value=0.1),
)
def test_werner_decay_bounded(initial, elapsed, kappa):
    fidelity = werner_fidelity_after(initial, elapsed, kappa)
    assert 0.25 - 1e-9 <= fidelity <= max(initial, 0.25) + 1e-9


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=1, max_value=12),
    st.sampled_from([AttemptPolicy.SYNCHRONOUS, AttemptPolicy.ASYNCHRONOUS]),
    st.floats(min_value=0.0, max_value=120.0),
)
def test_attempt_completion_strictly_after_query(num_pairs, policy, time):
    schedule = AttemptSchedule(num_pairs=num_pairs, policy=policy)
    for pair in range(num_pairs):
        index = schedule.attempt_index_completing_after(pair, time)
        assert schedule.attempt_completion(pair, index) > time
        if index > 0:
            assert schedule.attempt_completion(pair, index - 1) <= time + 1e-9


@settings(max_examples=30, deadline=None)
@given(st.floats(min_value=0.0, max_value=1.0), st.integers(1, 2))
def test_depolarizing_channels_trace_preserving(probability, qubits):
    assert validate_kraus(depolarizing_kraus(probability, qubits))


# ---------------------------------------------------------------------------
# runtime invariants
# ---------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30))
def test_event_queue_pops_in_order(times):
    queue = EventQueue()
    for t in times:
        queue.schedule(t, "tick")
    popped = [queue.pop().time for _ in range(len(times))]
    assert popped == sorted(popped)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1, max_size=25))
def test_tracker_makespan_at_least_total_of_longest_qubit(durations):
    tracker = DataQubitTracker(3)
    start = 0.0
    for duration in durations:
        start = tracker.occupy((0,), tracker.available_time(0), duration)
    assert tracker.makespan == tracker.available_time(0)
    assert tracker.busy_time(0) == sum(durations) or math.isclose(
        tracker.busy_time(0), sum(durations), rel_tol=1e-9
    )


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=50))
def test_summarize_bounds(samples):
    stats = summarize(samples)
    assert stats.minimum <= stats.mean <= stats.maximum
    assert stats.std >= 0


# ---------------------------------------------------------------------------
# columnar results / npz shard round-trips
# ---------------------------------------------------------------------------

# Any JSON-encodable text (no surrogates — they cannot reach UTF-8
# shards); NULs and other control characters are deliberately *allowed*
# to exercise the npz string-column fallback.
_axis_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=12)

_metric_floats = st.one_of(
    st.floats(allow_nan=True, allow_infinity=True),
    st.integers(min_value=-10**6, max_value=10**6).map(float),
)

_param_values = st.one_of(
    _axis_text,
    st.integers(min_value=-10**9, max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False,
              min_value=-1e6, max_value=1e6),
    st.booleans(),
    st.none(),
)


@st.composite
def run_records(draw):
    from repro.study.results import RunRecord

    return RunRecord(
        benchmark=draw(_axis_text),
        design=draw(_axis_text),
        seed=draw(st.integers(min_value=-2**40, max_value=2**40)),
        depth=draw(_metric_floats),
        fidelity=draw(_metric_floats),
        num_remote=draw(st.integers(min_value=0, max_value=2**31)),
        mean_remote_wait=draw(_metric_floats),
        mean_link_fidelity=draw(st.one_of(_metric_floats, st.none())),
        epr_generated=draw(st.one_of(_metric_floats,
                                     st.integers(0, 10**6))),
        epr_wasted=draw(_metric_floats),
        params=draw(st.dictionaries(
            st.text(alphabet=st.characters(blacklist_categories=("Cs",)),
                    min_size=1, max_size=8),
            _param_values, max_size=3)),
    )


#: Batches cover the empty set, single-run cells, and mixed-type columns.
_record_batches = st.lists(run_records(), min_size=0, max_size=12)


def _canonical_json(records):
    """Reference serialisation: per-record dicts, NaN-safe comparison."""
    return json.dumps([r.to_dict() for r in records])


@settings(max_examples=60, deadline=None)
@given(_record_batches)
def test_npz_chunk_round_trip_is_lossless(records):
    from repro.study.store import decode_chunk, encode_chunk

    rebuilt = decode_chunk(encode_chunk(records, "npz"), "npz")
    assert _canonical_json(rebuilt) == _canonical_json(records)


@settings(max_examples=60, deadline=None)
@given(_record_batches)
def test_jsonl_and_npz_chunks_decode_identically(records):
    from repro.study.store import decode_chunk, encode_chunk

    via_jsonl = decode_chunk(encode_chunk(records, "jsonl"), "jsonl")
    via_npz = decode_chunk(encode_chunk(records, "npz"), "npz")
    assert _canonical_json(via_jsonl) == _canonical_json(via_npz)


@settings(max_examples=60, deadline=None)
@given(_record_batches)
def test_result_set_json_round_trip_is_lossless(records):
    from repro.study import ResultSet

    original = ResultSet(records, metadata={"name": "prop"})
    text = original.to_json()
    assert ResultSet.from_json(text).to_json() == text


@settings(max_examples=40, deadline=None)
@given(_record_batches)
def test_columnar_construction_matches_record_construction(records):
    from repro.study import ResultSet
    from repro.study.results import KEY_FIELDS, METRIC_FIELDS

    direct = ResultSet(records)
    columnar = ResultSet._from_columns(
        {name: [getattr(r, name) for r in records]
         for name in KEY_FIELDS + METRIC_FIELDS},
        [r.params for r in records])
    assert columnar.to_json() == direct.to_json()
    assert _canonical_json(columnar.records) == _canonical_json(records)
