"""Property-based tests (hypothesis) for core data structures and invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.circuits import CircuitDAG, QuantumCircuit
from repro.circuits.transforms import (
    alap_variant,
    asap_variant,
    canonical_gate_multiset,
    reorder_is_equivalent,
)
from repro.entanglement import AttemptPolicy, AttemptSchedule, werner_fidelity_after
from repro.noise import depolarizing_kraus, validate_kraus
from repro.partitioning import InteractionGraph, Partition, fm_refine, kl_refine
from repro.runtime import DataQubitTracker, EventQueue
from repro.analysis import summarize


# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

@st.composite
def random_circuits(draw, max_qubits=6, max_gates=25, remote_fraction=0.3):
    """Random circuits over a small gate set with some remote labels."""
    num_qubits = draw(st.integers(min_value=2, max_value=max_qubits))
    num_gates = draw(st.integers(min_value=1, max_value=max_gates))
    circuit = QuantumCircuit(num_qubits, name="hypothesis")
    for _ in range(num_gates):
        kind = draw(st.sampled_from(["h", "rz", "rx", "cx", "cz", "rzz"]))
        if kind in ("h", "rz", "rx"):
            qubit = draw(st.integers(min_value=0, max_value=num_qubits - 1))
            if kind == "h":
                circuit.h(qubit)
            else:
                circuit.add_gate(kind, (qubit,), (draw(st.floats(0.1, 3.0)),))
        else:
            a = draw(st.integers(min_value=0, max_value=num_qubits - 1))
            b = draw(st.integers(min_value=0, max_value=num_qubits - 1))
            if a == b:
                continue
            label = "remote" if draw(st.floats(0, 1)) < remote_fraction else None
            params = (draw(st.floats(0.1, 3.0)),) if kind == "rzz" else ()
            circuit.add_gate(kind, (a, b), params, label=label)
    if circuit.num_gates == 0:
        circuit.h(0)
    return circuit


@st.composite
def random_graphs(draw, max_vertices=14):
    """Random interaction graphs with at least two vertices."""
    num_vertices = draw(st.integers(min_value=4, max_value=max_vertices))
    if num_vertices % 2:
        num_vertices += 1
    num_edges = draw(st.integers(min_value=1, max_value=3 * num_vertices))
    weights = {}
    for _ in range(num_edges):
        a = draw(st.integers(min_value=0, max_value=num_vertices - 1))
        b = draw(st.integers(min_value=0, max_value=num_vertices - 1))
        if a == b:
            continue
        weights[(min(a, b), max(a, b))] = float(draw(st.integers(1, 5)))
    return InteractionGraph(num_vertices, weights)


# ---------------------------------------------------------------------------
# circuit IR invariants
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(random_circuits())
def test_dag_is_acyclic_and_complete(circuit):
    dag = CircuitDAG(circuit)
    order = dag.topological_order()
    assert sorted(order) == list(range(circuit.num_gates))
    assert dag.is_legal_order(order)


@settings(max_examples=60, deadline=None)
@given(random_circuits())
def test_layers_cover_all_gates_once(circuit):
    dag = CircuitDAG(circuit)
    flattened = sorted(i for layer in dag.layers() for i in layer)
    assert flattened == list(range(circuit.num_gates))


@settings(max_examples=60, deadline=None)
@given(random_circuits())
def test_alap_never_before_asap(circuit):
    dag = CircuitDAG(circuit)
    asap = dag.asap_levels()
    alap = dag.alap_levels()
    assert all(alap[i] >= asap[i] - 1e-9 for i in asap)


@settings(max_examples=40, deadline=None)
@given(random_circuits())
def test_asap_alap_variants_are_equivalent_reorderings(circuit):
    asap = asap_variant(circuit)
    alap = alap_variant(circuit)
    assert canonical_gate_multiset(asap) == canonical_gate_multiset(circuit)
    assert canonical_gate_multiset(alap) == canonical_gate_multiset(circuit)
    assert reorder_is_equivalent(circuit, asap)
    assert reorder_is_equivalent(circuit, alap)


@settings(max_examples=40, deadline=None)
@given(random_circuits())
def test_variant_depth_unchanged_gate_counts(circuit):
    asap = asap_variant(circuit)
    assert asap.num_two_qubit_gates() == circuit.num_two_qubit_gates()
    assert asap.num_single_qubit_gates() == circuit.num_single_qubit_gates()


# ---------------------------------------------------------------------------
# partitioning invariants
# ---------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(random_graphs())
def test_kl_refinement_never_increases_cut(graph):
    start = Partition.contiguous(graph.num_vertices, 2)
    refined = kl_refine(graph, start)
    assert refined.cut_weight(graph) <= start.cut_weight(graph) + 1e-9
    assert sorted(refined.block_sizes()) == sorted(start.block_sizes())


@settings(max_examples=40, deadline=None)
@given(random_graphs())
def test_fm_refinement_respects_balance(graph):
    start = Partition.contiguous(graph.num_vertices, 2)
    refined = fm_refine(graph, start, balance_tolerance=0.2)
    assert refined.cut_weight(graph) <= start.cut_weight(graph) + 1e-9
    max_side = (1.2 * graph.num_vertices / 2.0) + 1e-9
    assert max(refined.block_sizes()) <= max_side
    assert refined.num_vertices == graph.num_vertices


# ---------------------------------------------------------------------------
# entanglement invariants
# ---------------------------------------------------------------------------

@settings(max_examples=100, deadline=None)
@given(
    st.floats(min_value=0.25, max_value=1.0),
    st.floats(min_value=0.0, max_value=1000.0),
    st.floats(min_value=0.0, max_value=0.1),
)
def test_werner_decay_bounded(initial, elapsed, kappa):
    fidelity = werner_fidelity_after(initial, elapsed, kappa)
    assert 0.25 - 1e-9 <= fidelity <= max(initial, 0.25) + 1e-9


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=1, max_value=12),
    st.sampled_from([AttemptPolicy.SYNCHRONOUS, AttemptPolicy.ASYNCHRONOUS]),
    st.floats(min_value=0.0, max_value=120.0),
)
def test_attempt_completion_strictly_after_query(num_pairs, policy, time):
    schedule = AttemptSchedule(num_pairs=num_pairs, policy=policy)
    for pair in range(num_pairs):
        index = schedule.attempt_index_completing_after(pair, time)
        assert schedule.attempt_completion(pair, index) > time
        if index > 0:
            assert schedule.attempt_completion(pair, index - 1) <= time + 1e-9


@settings(max_examples=30, deadline=None)
@given(st.floats(min_value=0.0, max_value=1.0), st.integers(1, 2))
def test_depolarizing_channels_trace_preserving(probability, qubits):
    assert validate_kraus(depolarizing_kraus(probability, qubits))


# ---------------------------------------------------------------------------
# runtime invariants
# ---------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30))
def test_event_queue_pops_in_order(times):
    queue = EventQueue()
    for t in times:
        queue.schedule(t, "tick")
    popped = [queue.pop().time for _ in range(len(times))]
    assert popped == sorted(popped)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1, max_size=25))
def test_tracker_makespan_at_least_total_of_longest_qubit(durations):
    tracker = DataQubitTracker(3)
    start = 0.0
    for duration in durations:
        start = tracker.occupy((0,), tracker.available_time(0), duration)
    assert tracker.makespan == tracker.available_time(0)
    assert tracker.busy_time(0) == sum(durations) or math.isclose(
        tracker.busy_time(0), sum(durations), rel_tol=1e-9
    )


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=50))
def test_summarize_bounds(samples):
    stats = summarize(samples)
    assert stats.minimum <= stats.mean <= stats.maximum
    assert stats.std >= 0
