"""Unit tests for circuit transforms (ASAP/ALAP motion, reordering checks)."""

import pytest

from repro.circuits import QuantumCircuit
from repro.circuits.transforms import (
    alap_variant,
    asap_variant,
    canonical_gate_multiset,
    move_gates_earlier,
    move_gates_later,
    reorder_is_equivalent,
    schedule_order_from_dag,
    split_by_gate_indices,
)
from repro.exceptions import SchedulingError


def remote_positions(circuit):
    return [i for i, g in enumerate(circuit.gates) if g.is_remote]


class TestAsapAlap:
    def test_asap_moves_remote_earlier(self, small_remote_circuit):
        asap = asap_variant(small_remote_circuit)
        assert sum(remote_positions(asap)) <= sum(remote_positions(small_remote_circuit))
        assert reorder_is_equivalent(small_remote_circuit, asap)

    def test_alap_moves_remote_later(self, small_remote_circuit):
        alap = alap_variant(small_remote_circuit)
        assert sum(remote_positions(alap)) >= sum(remote_positions(small_remote_circuit))
        assert reorder_is_equivalent(small_remote_circuit, alap)

    def test_gate_multiset_preserved(self, small_remote_circuit):
        asap = asap_variant(small_remote_circuit)
        alap = alap_variant(small_remote_circuit)
        original = canonical_gate_multiset(small_remote_circuit)
        assert canonical_gate_multiset(asap) == original
        assert canonical_gate_multiset(alap) == original

    def test_diagonal_remote_gate_bubbles_past_diagonals(self):
        circuit = QuantumCircuit(3)
        circuit.rz(0.1, 0)
        circuit.cz(0, 1)
        circuit.add_gate("rzz", (1, 2), (0.5,), label="remote")
        asap = asap_variant(circuit)
        # Everything commutes, so the remote gate reaches position 0.
        assert remote_positions(asap) == [0]

    def test_blocking_gate_prevents_motion(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.add_gate("cx", (0, 1), label="remote")
        asap = asap_variant(circuit)
        # H on the control blocks commutation: the remote CX stays after it.
        assert remote_positions(asap) == [1]

    def test_max_passes_limits_motion(self):
        circuit = QuantumCircuit(4)
        for qubit in range(3):
            circuit.rz(0.1, qubit)
        circuit.add_gate("rzz", (2, 3), (0.2,), label="remote")
        limited = move_gates_earlier(circuit, max_passes=1)
        unlimited = move_gates_earlier(circuit)
        assert sum(remote_positions(unlimited)) <= sum(remote_positions(limited))

    def test_custom_selector(self, bell_circuit):
        moved = move_gates_later(bell_circuit, selector=lambda g: g.name == "h")
        # H and CX share qubit 0 and do not commute, so nothing moves.
        assert [g.name for g in moved.gates] == ["h", "cx"]


class TestEquivalenceCheck:
    def test_detects_illegal_reorder(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        swapped = QuantumCircuit(2)
        swapped.cx(0, 1)
        swapped.h(0)
        assert not reorder_is_equivalent(circuit, swapped)

    def test_accepts_legal_reorder(self):
        circuit = QuantumCircuit(3)
        circuit.rz(0.1, 0)
        circuit.rz(0.2, 2)
        reordered = QuantumCircuit(3)
        reordered.rz(0.2, 2)
        reordered.rz(0.1, 0)
        assert reorder_is_equivalent(circuit, reordered)

    def test_rejects_different_multisets(self, bell_circuit):
        other = QuantumCircuit(2)
        other.h(0)
        assert not reorder_is_equivalent(bell_circuit, other)


class TestSplitAndListSchedule:
    def test_split_by_gate_indices(self, small_remote_circuit):
        chunks = split_by_gate_indices(small_remote_circuit, [2, 5])
        assert [c.num_gates for c in chunks] == [2, 3, 2]

    def test_split_invalid_boundary(self, small_remote_circuit):
        with pytest.raises(SchedulingError):
            split_by_gate_indices(small_remote_circuit, [100])

    def test_list_schedule_is_legal_permutation(self, small_remote_circuit):
        scheduled = schedule_order_from_dag(
            small_remote_circuit, priority=lambda g: 0.0 if g.is_remote else 1.0
        )
        assert reorder_is_equivalent(small_remote_circuit, scheduled)
