"""Unit tests for random-regular-graph generation."""

import pytest

from repro.benchmarks.graphs import (
    complete_graph_edges,
    edge_count_for_regular,
    is_regular,
    random_regular_graph,
    ring_graph,
)
from repro.exceptions import BenchmarkError


class TestRegularGraphs:
    @pytest.mark.parametrize("n,d", [(8, 3), (16, 4), (32, 4), (32, 8), (64, 8)])
    def test_generated_graph_is_regular(self, n, d):
        edges = random_regular_graph(n, d, seed=5)
        assert len(edges) == edge_count_for_regular(n, d)
        assert is_regular(edges, n, d)

    def test_deterministic_for_seed(self):
        assert random_regular_graph(20, 4, seed=9) == random_regular_graph(20, 4, seed=9)

    def test_different_seeds_differ(self):
        assert random_regular_graph(20, 4, seed=1) != random_regular_graph(20, 4, seed=2)

    def test_edges_are_normalised_and_unique(self):
        edges = random_regular_graph(16, 4, seed=3)
        assert all(a < b for a, b in edges)
        assert len(set(edges)) == len(edges)

    def test_odd_product_rejected(self):
        with pytest.raises(BenchmarkError):
            random_regular_graph(5, 3)

    def test_degree_too_large_rejected(self):
        with pytest.raises(BenchmarkError):
            random_regular_graph(4, 4)

    def test_degree_too_small_rejected(self):
        with pytest.raises(BenchmarkError):
            random_regular_graph(4, 0)


class TestOtherGraphs:
    def test_ring(self):
        edges = ring_graph(6)
        assert len(edges) == 6
        assert is_regular(edges, 6, 2)
        with pytest.raises(BenchmarkError):
            ring_graph(2)

    def test_complete_graph(self):
        edges = complete_graph_edges(5)
        assert len(edges) == 10
        assert is_regular(edges, 5, 4)

    def test_is_regular_rejects_wrong_degree(self):
        assert not is_regular(ring_graph(6), 6, 3)
