"""Equivalence suite pinning the columnar ResultSet and npz shard format.

The columnar backing and the binary store exist purely for speed: every
observable — ``to_json`` bytes, filter/group_by/aggregate results, resume
behaviour — must be *identical* to the record-by-record implementation
they replaced.  The reference implementations live in this file, written
the naive way (python loops over ``RunRecord`` objects), and every test
is an equality between the fast path and the naive path.
"""

import json
import math
import shutil
from pathlib import Path

import pytest

from repro import Study, SystemConfig
from repro.analysis.statistics import summarize
from repro.exceptions import StoreError
from repro.study import ResultSet, RunStore, aggregate_stream
from repro.study.results import KEY_FIELDS, METRIC_FIELDS, RunRecord
from repro.study.store import decode_chunk, encode_chunk

SMALL = SystemConfig(data_qubits_per_node=16, comm_qubits_per_node=4,
                     buffer_qubits_per_node=4)

ALL_DESIGNS = ("original", "sync_buf", "async_buf", "adapt_buf",
               "init_buf", "ideal")


def mixed_grid():
    """A hand-built grid exercising every columnar edge at once.

    All six designs, two benchmarks, a string axis and a numeric axis,
    and metric values including NaN, infinities, None, bools, and
    mixed int/float columns — everything that forces object-dtype
    fallbacks next to the typed fast paths.
    """
    records = []
    seed = 0
    for benchmark in ("TLIM-16", "QFT-8"):
        for design in ALL_DESIGNS:
            for policy in ("sync", "async"):
                for chi in (0.01, 0.05):
                    seed += 1
                    records.append(RunRecord(
                        benchmark=benchmark,
                        design=design,
                        seed=seed,
                        depth=float(seed) * 1.5,
                        fidelity=(float("nan") if seed % 7 == 0
                                  else 1.0 - chi),
                        num_remote=seed % 5,
                        mean_remote_wait=(float("inf") if seed % 11 == 0
                                          else 0.25 * seed),
                        mean_link_fidelity=(None if seed % 13 == 0
                                            else 0.9),
                        epr_generated=(seed if seed % 2 else float(seed)),
                        epr_wasted=(True if seed % 17 == 0 else 0.0),
                        params={"policy": policy,
                                "depolarizing_rate": chi},
                    ))
    return records


def reference_to_json(records, metadata=None):
    """``to_json`` the way the pre-columnar implementation produced it."""
    payload = {
        "schema": ResultSet.SCHEMA_VERSION,
        "metadata": dict(metadata or {}),
        "records": [r.to_dict() for r in records],
    }
    return json.dumps(payload, indent=2) + "\n"


def reference_aggregate(records, metric, by=()):
    """Naive record-loop aggregation (the replaced implementation)."""
    if isinstance(by, str):
        by = [by]
    by = list(by)
    if not by:
        return {(): summarize([r.get(metric) for r in records])}
    groups = {}
    for r in records:
        values = tuple(r.get(key) for key in by)
        group = values[0] if len(by) == 1 else values
        groups.setdefault(group, []).append(r.get(metric))
    return {g: summarize(vals) for g, vals in groups.items()}


def small_study(**overrides):
    kwargs = dict(benchmarks=["TLIM-32"], designs=["ideal", "original"],
                  num_runs=4, system=SMALL)
    kwargs.update(overrides)
    return Study(**kwargs)


# ----------------------------------------------------------------------
class TestMixedGridEquivalence:
    def test_to_json_byte_identity(self):
        records = mixed_grid()
        rs = ResultSet(records, metadata={"name": "mixed"})
        assert rs.to_json() == reference_to_json(records,
                                                 {"name": "mixed"})

    def test_to_json_byte_identity_without_record_cache(self):
        # A set whose records were never materialised (the from_store
        # shape) serialises from columns alone; bytes must not differ.
        records = mixed_grid()
        rs = ResultSet(records)
        cold = ResultSet._from_columns(
            {name: [getattr(r, name) for r in records]
             for name in KEY_FIELDS + METRIC_FIELDS},
            [r.params for r in records])
        assert cold._records is None
        assert cold.to_json() == rs.to_json()

    def test_lazy_records_round_trip_values(self):
        records = mixed_grid()
        cold = ResultSet._from_columns(
            {name: [getattr(r, name) for r in records]
             for name in KEY_FIELDS + METRIC_FIELDS},
            [r.params for r in records])
        for rebuilt, original in zip(cold.records, records):
            # NaN != NaN breaks dataclass equality; compare serialised.
            assert json.dumps(rebuilt.to_dict()) == \
                json.dumps(original.to_dict())

    def test_filter_equalities_match_record_loop(self):
        records = mixed_grid()
        rs = ResultSet(records)
        cases = [
            {"design": "adapt_buf"},
            {"benchmark": "QFT-8", "design": "ideal"},
            {"policy": "async"},                       # string param axis
            {"depolarizing_rate": 0.05},               # numeric param axis
            {"design": "sync_buf", "policy": "sync",
             "depolarizing_rate": 0.01},
            {"design": "no_such_design"},              # empty result
            {"num_remote": 3},                         # int column
        ]
        for equalities in cases:
            expected = [r for r in records
                        if all(r.get(k) == v
                               for k, v in equalities.items())]
            got = rs.filter(**equalities)
            assert got.to_json() == reference_to_json(expected)

    def test_filter_with_predicate_matches_record_loop(self):
        records = mixed_grid()
        rs = ResultSet(records)
        predicate = lambda r: r.seed % 3 == 0  # noqa: E731
        expected = [r for r in records
                    if predicate(r) and r.get("policy") == "sync"]
        got = rs.filter(predicate, policy="sync")
        assert got.to_json() == reference_to_json(expected)

    def test_filter_unknown_param_still_raises_keyerror(self):
        rs = ResultSet(mixed_grid())
        with pytest.raises(KeyError, match="no column 'nope'"):
            rs.filter(nope=1)
        # ...but not when an earlier equality already emptied the match,
        # mirroring the record loop's short-circuit evaluation.
        assert len(rs.filter(design="no_such_design", nope=1)) == 0

    def test_group_by_matches_record_loop(self):
        records = mixed_grid()
        rs = ResultSet(records)
        for keys in (("design",), ("benchmark", "design"),
                     ("policy",), ("design", "depolarizing_rate")):
            groups = rs.group_by(*keys)
            expected = {}
            for r in records:
                values = tuple(r.get(k) for k in keys)
                key = values[0] if len(keys) == 1 else values
                expected.setdefault(key, []).append(r)
            assert list(groups) == list(expected)
            for key, subset in groups.items():
                assert subset.to_json() == reference_to_json(
                    expected[key])

    def test_aggregate_matches_record_loop(self):
        records = mixed_grid()
        rs = ResultSet(records)
        for metric in ("depth", "num_remote", "depolarizing_rate"):
            for by in ((), "design", ("benchmark", "design"), "policy"):
                assert rs.aggregate(metric, by=by) == \
                    reference_aggregate(records, metric, by=by)

    def test_aggregate_nan_statistics_match(self):
        # NaN-poisoned groups must flow the same NaNs through summarize.
        records = mixed_grid()
        rs = ResultSet(records)
        got = rs.aggregate("fidelity", by="design")
        expected = reference_aggregate(records, "fidelity", by="design")
        assert list(got) == list(expected)
        for key in got:
            for attr in ("mean", "std", "minimum", "maximum"):
                a = getattr(got[key], attr)
                b = getattr(expected[key], attr)
                assert a == b or (math.isnan(a) and math.isnan(b))

    def test_values_and_introspection_match_records(self):
        records = mixed_grid()
        rs = ResultSet(records)
        assert rs.benchmarks() == list(dict.fromkeys(
            r.benchmark for r in records))
        assert rs.designs() == list(ALL_DESIGNS)
        assert rs.param_keys() == ["depolarizing_rate", "policy"]
        assert rs.values("seed") == [r.seed for r in records]
        assert rs.values("policy") == [r.params["policy"] for r in records]

    def test_csv_and_flat_records_match(self):
        records = mixed_grid()
        rs = ResultSet(records)
        flat = rs.to_records()
        assert len(flat) == len(records)
        assert list(flat[0]) == [*KEY_FIELDS, "depolarizing_rate",
                                 "policy", *METRIC_FIELDS]
        assert rs.to_csv().splitlines()[0] == \
            "benchmark,design,seed,depolarizing_rate,policy," + \
            ",".join(METRIC_FIELDS)


# ----------------------------------------------------------------------
class TestChunkCodecEquivalence:
    def test_npz_round_trip_preserves_json_bytes(self):
        records = mixed_grid()
        rebuilt = decode_chunk(encode_chunk(records, "npz"), "npz")
        assert reference_to_json(rebuilt) == reference_to_json(records)

    def test_jsonl_and_npz_decode_identically(self):
        records = mixed_grid()
        via_jsonl = decode_chunk(encode_chunk(records, "jsonl"), "jsonl")
        via_npz = decode_chunk(encode_chunk(records, "npz"), "npz")
        assert reference_to_json(via_jsonl) == reference_to_json(via_npz)

    def test_npz_records_get_independent_params(self):
        records = [RunRecord(benchmark="b", design="d", seed=s,
                             depth=1.0, fidelity=1.0, num_remote=0,
                             mean_remote_wait=0.0, mean_link_fidelity=1.0,
                             epr_generated=0.0, epr_wasted=0.0,
                             params={"x": 1})
                   for s in (1, 2)]
        first, second = decode_chunk(encode_chunk(records, "npz"), "npz")
        first.params["x"] = 99
        assert second.params["x"] == 1

    def test_garbage_npz_chunk_raises_store_error(self):
        with pytest.raises(StoreError, match="not an npz chunk"):
            decode_chunk(b"\x00\x01 not a zip", "npz")


# ----------------------------------------------------------------------
class TestStoreFormatEquivalence:
    @pytest.fixture(scope="class")
    def baseline_json(self):
        with small_study() as study:
            return study.run().to_json()

    def test_jsonl_and_npz_stores_serialise_identically(
            self, tmp_path, baseline_json):
        outputs = {}
        for shard_format in ("jsonl", "npz"):
            store = tmp_path / shard_format
            with small_study() as study:
                ran = study.run(store=store, store_chunk_size=2,
                                store_format=shard_format)
            loaded = ResultSet.from_store(store)
            assert ran.to_json() == baseline_json
            outputs[shard_format] = loaded.to_json()
        assert outputs["jsonl"] == outputs["npz"] == baseline_json

    def test_npz_interrupt_and_resume_matches_uninterrupted(
            self, tmp_path, baseline_json):
        store = tmp_path / "st"
        with small_study() as study:
            partial = study.run(store=store, max_chunks=1,
                                store_chunk_size=2, store_format="npz")
        assert len(partial) == 2
        # Resume does not need the format repeated: the manifest owns it.
        with small_study() as study:
            resumed = study.run(store=store)
        assert resumed.to_json() == baseline_json
        assert ResultSet.from_store(store).to_json() == baseline_json
        assert RunStore.load(store).shard_format == "npz"

    def test_npz_crash_mid_run_leaves_resumable_store(
            self, tmp_path, baseline_json):
        store = tmp_path / "st"

        class Interrupted(RuntimeError):
            pass

        def bomb(event):
            if event.done_chunks >= 2:
                raise Interrupted()

        with small_study() as study:
            with pytest.raises(Interrupted):
                study.run(store=store, store_chunk_size=2,
                          store_format="npz", progress=bomb)
        assert len(RunStore.load(store).completed_ids()) >= 2
        with small_study() as study:
            assert study.run(store=store).to_json() == baseline_json

    def test_npz_flipped_byte_fails_checksum(self, tmp_path):
        store = tmp_path / "st"
        with small_study() as study:
            study.run(store=store, store_chunk_size=2, store_format="npz")
        shard = sorted((store / "shards").glob("*.npz"))[0]
        data = bytearray(shard.read_bytes())
        data[40] ^= 0xFF
        shard.write_bytes(bytes(data))
        with pytest.raises(StoreError, match="checksum"):
            ResultSet.from_store(store)

    def test_npz_manifest_records_format_and_schema(self, tmp_path):
        store = tmp_path / "st"
        with small_study() as study:
            study.run(store=store, store_chunk_size=2, store_format="npz")
        manifest = json.loads((store / "manifest.json").read_text())
        assert manifest["format"] == "npz"
        assert manifest["schema"] == RunStore.NPZ_SCHEMA_VERSION
        loaded = RunStore.load(store)
        assert loaded.summary()["format"] == "npz"
        assert all(c.id for c in loaded.chunks())

    def test_committed_format_wins_on_resume(self, tmp_path,
                                             baseline_json):
        # Like chunk_size, the committed format is part of the store's
        # durable identity: a different request on resume must not
        # switch encodings mid-store.
        store = tmp_path / "st"
        with small_study() as study:
            study.run(store=store, max_chunks=1, store_chunk_size=2,
                      store_format="npz")
        with small_study() as study:
            resumed = study.run(store=store, store_format="jsonl")
        assert resumed.to_json() == baseline_json
        assert RunStore.load(store).shard_format == "npz"
        assert not list((store / "shards").glob("*.jsonl"))

    def test_unknown_format_rejected(self, tmp_path):
        from repro.exceptions import ConfigurationError
        with pytest.raises(ConfigurationError, match="shard format"):
            RunStore(tmp_path / "st", shard_format="parquet")

    def test_swept_params_round_trip_npz(self, tmp_path):
        def sweep():
            return small_study(
                designs=["ideal"],
                axes={"epr_success_probability": [0.2, 0.8]})

        with sweep() as study:
            expected = study.run().to_json()
        store = tmp_path / "st"
        with sweep() as study:
            study.run(store=store, store_chunk_size=2, store_format="npz")
        reloaded = ResultSet.from_store(store)
        assert reloaded.to_json() == expected
        assert reloaded.values("epr_success_probability") == [
            0.2, 0.2, 0.2, 0.2, 0.8, 0.8, 0.8, 0.8]


# ----------------------------------------------------------------------
class TestGoldenNpzFixture:
    """A committed npz store must keep loading byte-identically forever.

    The fixture under ``tests/data/golden_npz_store`` was written once by
    a known-good build; any codec or layout change that alters a single
    serialised byte of its load is a format break and must show up here,
    not in a user's archived results.
    """

    FIXTURE = Path(__file__).parent / "data" / "golden_npz_store"
    EXPECTED = Path(__file__).parent / "data" / \
        "golden_npz_store.expected.json"

    def test_load_is_byte_identical(self):
        loaded = ResultSet.from_store(self.FIXTURE)
        assert loaded.to_json() == self.EXPECTED.read_text()

    def test_aggregate_stream_reads_fixture(self):
        stats = aggregate_stream(self.FIXTURE, "depth", by="design")
        loaded = ResultSet.from_store(self.FIXTURE)
        assert stats == loaded.aggregate("depth", by="design")

    def test_newer_schema_fails_with_migration_guidance(self, tmp_path):
        # A store written by a future build must be refused with the
        # documented migration message, never half-read.
        copy = tmp_path / "future"
        shutil.copytree(self.FIXTURE, copy)
        manifest = json.loads((copy / "manifest.json").read_text())
        manifest["schema"] = 99
        (copy / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(StoreError) as excinfo:
            ResultSet.from_store(copy)
        message = str(excinfo.value)
        assert "unsupported store schema 99" in message
        assert "this build reads schemas 1, 2" in message
        assert "upgrade this checkout" in message
        assert "re-run the study into a fresh --store directory" in message

    def test_unknown_format_tag_fails_loudly(self, tmp_path):
        copy = tmp_path / "weird"
        shutil.copytree(self.FIXTURE, copy)
        manifest = json.loads((copy / "manifest.json").read_text())
        manifest["format"] = "parquet"
        (copy / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(StoreError, match="unknown shard format"):
            ResultSet.from_store(copy)


# ----------------------------------------------------------------------
class TestAggregateStreamEquivalence:
    @pytest.fixture(scope="class", params=["jsonl", "npz"])
    def stored(self, request, tmp_path_factory):
        store = tmp_path_factory.mktemp("agg") / request.param
        with small_study() as study:
            results = study.run(store=store, store_chunk_size=3,
                                store_format=request.param)
        return store, results

    def test_matches_in_memory_aggregate(self, stored):
        store, results = stored
        for by in ("design", ["benchmark", "design"], ()):
            assert aggregate_stream(store, "depth", by=by) == \
                results.aggregate("depth", by=by)
        assert aggregate_stream(RunStore.load(store), "fidelity",
                                by="design") == \
            results.aggregate("fidelity", by="design")

    def test_missing_metric_raises_typed_error(self, stored):
        store, _ = stored
        with pytest.raises(StoreError) as excinfo:
            aggregate_stream(store, "latency_ms", by="design")
        message = str(excinfo.value)
        assert "latency_ms" in message
        assert "depth" in message and "fidelity" in message

    def test_missing_group_column_raises_typed_error(self, stored):
        store, _ = stored
        with pytest.raises(StoreError, match="no_such_axis"):
            aggregate_stream(store, "depth", by="no_such_axis")

    def test_record_iterator_source_raises_same_type(self, stored):
        store, _ = stored
        records = RunStore.load(store).iter_records()
        with pytest.raises(StoreError, match="latency_ms"):
            aggregate_stream(records, "latency_ms")
